"""Simulated user models.

A :class:`SimulatedUser` is a bundle of behavioural parameters: how
accurately the user recognises relevant material from a result surrogate,
how their judgement improves after actually playing a shot, how patient they
are, and how inclined they are to perform each kind of optional action
(expanding metadata, building playlists, giving explicit feedback).  The
values are deliberately interpretable — they are the levers the
simulation-based evaluation methodology of Section 2.2 exists to sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class SimulatedUser:
    """Behavioural parameters of one simulated searcher.

    Attributes
    ----------
    user_id:
        Identifier; also used to derive the user's private random stream.
    surrogate_error_rate:
        Probability of misjudging a shot's relevance from its result-list
        surrogate (keyframe + headline) alone.
    post_play_error_rate:
        Probability of still misjudging after playing the shot (watching is
        more informative than looking at a keyframe, so this is lower).
    patience_pages:
        How many result pages the user is willing to examine per query.
    max_queries:
        How many query (re)formulations the user will issue per session.
    play_propensity:
        Probability of playing a shot whose surrogate looks relevant.
    metadata_propensity / playlist_propensity / explicit_propensity /
    hover_propensity / seek_propensity:
        Probabilities of the corresponding optional actions, conditioned on
        the situations described in the session simulator.
    explicit_negative_propensity:
        Probability of explicitly marking an obviously irrelevant shot.
    skip_propensity:
        Probability of emitting an explicit skip action for a surrogate the
        user judges irrelevant (rather than silently moving on).
    query_terms_initial / query_terms_per_reformulation:
        How many topic terms the user types initially and adds on each
        reformulation.
    """

    user_id: str
    surrogate_error_rate: float = 0.2
    post_play_error_rate: float = 0.08
    patience_pages: int = 3
    max_queries: int = 4
    play_propensity: float = 0.85
    metadata_propensity: float = 0.35
    playlist_propensity: float = 0.3
    explicit_propensity: float = 0.25
    explicit_negative_propensity: float = 0.1
    hover_propensity: float = 0.4
    seek_propensity: float = 0.25
    skip_propensity: float = 0.3
    query_terms_initial: int = 2
    query_terms_per_reformulation: int = 1

    def __post_init__(self) -> None:
        ensure_in_range(self.surrogate_error_rate, 0.0, 1.0, "surrogate_error_rate")
        ensure_in_range(self.post_play_error_rate, 0.0, 1.0, "post_play_error_rate")
        ensure_positive(self.patience_pages, "patience_pages")
        ensure_positive(self.max_queries, "max_queries")
        for name in (
            "play_propensity",
            "metadata_propensity",
            "playlist_propensity",
            "explicit_propensity",
            "explicit_negative_propensity",
            "hover_propensity",
            "seek_propensity",
            "skip_propensity",
        ):
            ensure_in_range(getattr(self, name), 0.0, 1.0, name)
        ensure_positive(self.query_terms_initial, "query_terms_initial")
        if self.query_terms_per_reformulation < 0:
            raise ValueError("query_terms_per_reformulation must be non-negative")

    def with_overrides(self, **overrides: object) -> "SimulatedUser":
        """A copy of this user with some parameters replaced."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Dictionary view for logs and reports."""
        return {
            "user_id": self.user_id,
            "surrogate_error_rate": self.surrogate_error_rate,
            "post_play_error_rate": self.post_play_error_rate,
            "patience_pages": self.patience_pages,
            "max_queries": self.max_queries,
            "play_propensity": self.play_propensity,
            "explicit_propensity": self.explicit_propensity,
        }


def diligent_user(user_id: str = "diligent") -> SimulatedUser:
    """A careful user: low error rates, inspects a lot, gives explicit feedback."""
    return SimulatedUser(
        user_id=user_id,
        surrogate_error_rate=0.12,
        post_play_error_rate=0.04,
        patience_pages=4,
        max_queries=5,
        play_propensity=0.9,
        metadata_propensity=0.5,
        playlist_propensity=0.4,
        explicit_propensity=0.5,
        explicit_negative_propensity=0.2,
    )


def casual_user(user_id: str = "casual") -> SimulatedUser:
    """A casual user: noisier judgements, little patience, almost no explicit feedback."""
    return SimulatedUser(
        user_id=user_id,
        surrogate_error_rate=0.28,
        post_play_error_rate=0.12,
        patience_pages=2,
        max_queries=3,
        play_propensity=0.7,
        metadata_propensity=0.15,
        playlist_propensity=0.1,
        explicit_propensity=0.05,
        explicit_negative_propensity=0.02,
    )


def lazy_user(user_id: str = "lazy") -> SimulatedUser:
    """A minimal-effort user: looks at one page and rarely does anything optional."""
    return SimulatedUser(
        user_id=user_id,
        surrogate_error_rate=0.32,
        post_play_error_rate=0.15,
        patience_pages=1,
        max_queries=2,
        play_propensity=0.5,
        metadata_propensity=0.05,
        playlist_propensity=0.05,
        explicit_propensity=0.01,
        explicit_negative_propensity=0.0,
        hover_propensity=0.2,
        seek_propensity=0.1,
        skip_propensity=0.15,
    )


def standard_personas() -> Tuple[SimulatedUser, ...]:
    """The persona mix used by the population generator."""
    return (diligent_user(), casual_user(), lazy_user())
