"""Tests for tokenisation, the inverted index and text scoring functions."""

from __future__ import annotations

import pytest

from repro.index import (
    Bm25Scorer,
    DirichletLanguageModelScorer,
    InvertedIndex,
    JelinekMercerLanguageModelScorer,
    TfIdfScorer,
    Tokenizer,
    normalise_query,
)


@pytest.fixture()
def tiny_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_documents(
        {
            "d1": "football match stadium goal goal",
            "d2": "football politics debate parliament",
            "d3": "weather rain cloud forecast",
            "d4": "stadium crowd goal celebration football",
        }
    )
    return index


class TestTokenizer:
    def test_lowercase_and_split(self):
        assert Tokenizer(stem=False).tokenize("Hello World") == ["hello", "world"]

    def test_removes_stopwords(self):
        tokens = Tokenizer().tokenize("the match and the goal")
        assert "the" not in tokens
        assert "and" not in tokens

    def test_stopwords_can_be_kept(self):
        tokens = Tokenizer(remove_stopwords=False, stem=False).tokenize("the match")
        assert tokens == ["the", "match"]

    def test_min_length_filter(self):
        assert Tokenizer(min_token_length=3).tokenize("go ab abc") == ["abc"]

    def test_light_stemming(self):
        tokenizer = Tokenizer()
        assert tokenizer.stem_token("matches") == "match"
        assert tokenizer.stem_token("running") == "runn"
        assert tokenizer.stem_token("goals") == "goal"
        # Short words are not stemmed into nothing.
        assert tokenizer.stem_token("as") == "as"

    def test_term_frequencies(self):
        frequencies = Tokenizer(stem=False).term_frequencies("goal goal match")
        assert frequencies == {"goal": 2, "match": 1}

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []
        assert Tokenizer().term_frequencies("") == {}

    def test_punctuation_and_digits(self):
        tokens = Tokenizer(stem=False).tokenize("match-day: 2008, goal!")
        assert "2008" in tokens
        assert "match" in tokens


class TestInvertedIndex:
    def test_statistics(self, tiny_index):
        assert tiny_index.document_count == 4
        assert tiny_index.vocabulary_size > 5
        assert tiny_index.total_terms == sum(
            tiny_index.document_length(d) for d in tiny_index.document_ids()
        )
        assert tiny_index.average_document_length == pytest.approx(
            tiny_index.total_terms / 4
        )

    def test_document_frequency_and_postings(self, tiny_index):
        assert tiny_index.document_frequency("football") == 3
        postings = tiny_index.postings("goal")
        assert {p.document_id for p in postings} == {"d1", "d4"}

    def test_collection_frequency(self, tiny_index):
        assert tiny_index.collection_frequency("goal") == 3

    def test_term_frequency_lookup(self, tiny_index):
        assert tiny_index.term_frequency("goal", "d1") == 2
        assert tiny_index.term_frequency("goal", "d3") == 0

    def test_duplicate_document_rejected(self, tiny_index):
        with pytest.raises(ValueError):
            tiny_index.add_document("d1", "again")

    def test_contains_and_has_document(self, tiny_index):
        assert "football" in tiny_index
        assert "zebra" not in tiny_index
        assert tiny_index.has_document("d2")
        assert not tiny_index.has_document("d99")

    def test_from_collection(self, small_corpus):
        index = InvertedIndex.from_collection(small_corpus.collection)
        assert index.document_count == small_corpus.collection.shot_count

    def test_document_vector_is_copy(self, tiny_index):
        vector = tiny_index.document_vector("d1")
        vector["goal"] = 999
        assert tiny_index.term_frequency("goal", "d1") == 2


class TestNormaliseQuery:
    def test_sequence_counts_repeats(self):
        assert normalise_query(["a", "b", "a"]) == {"a": 2.0, "b": 1.0}

    def test_mapping_passthrough_drops_zeros(self):
        assert normalise_query({"a": 0.5, "b": 0.0}) == {"a": 0.5}


class TestScorers:
    def test_bm25_ranks_matching_documents(self, tiny_index):
        scores = Bm25Scorer(tiny_index).score(["goal", "stadium"])
        assert set(scores) == {"d1", "d4"}
        assert scores["d4"] > 0 and scores["d1"] > 0

    def test_bm25_prefers_more_matching_terms(self, tiny_index):
        scores = Bm25Scorer(tiny_index).score(["stadium", "crowd", "celebration"])
        assert scores["d4"] > scores["d1"]

    def test_bm25_unknown_term_ignored(self, tiny_index):
        assert Bm25Scorer(tiny_index).score(["qqqqq"]) == {}

    def test_bm25_parameter_validation(self, tiny_index):
        with pytest.raises(ValueError):
            Bm25Scorer(tiny_index, k1=-1)
        with pytest.raises(ValueError):
            Bm25Scorer(tiny_index, b=2.0)

    def test_bm25_weighted_query_terms(self, tiny_index):
        plain = Bm25Scorer(tiny_index).score({"goal": 1.0, "weather": 1.0})
        boosted = Bm25Scorer(tiny_index).score({"goal": 0.1, "weather": 5.0})
        assert plain["d1"] > plain["d3"] or plain["d1"] > 0
        assert boosted["d3"] > boosted["d1"]

    def test_tfidf_scores_positive_and_rank_sensible(self, tiny_index):
        scores = TfIdfScorer(tiny_index).score(["goal"])
        assert scores["d1"] > scores["d4"]  # d1 has goal twice and is shorter

    def test_dirichlet_lm_ranks_relevant_higher(self, tiny_index):
        scores = DirichletLanguageModelScorer(tiny_index, mu=100).score(["goal", "football"])
        assert scores["d1"] > scores["d3"] if "d3" in scores else True
        assert max(scores, key=scores.get) in {"d1", "d4"}

    def test_dirichlet_mu_validation(self, tiny_index):
        with pytest.raises(ValueError):
            DirichletLanguageModelScorer(tiny_index, mu=0)

    def test_jelinek_mercer_validation(self, tiny_index):
        with pytest.raises(ValueError):
            JelinekMercerLanguageModelScorer(tiny_index, lambda_=0.0)

    def test_jelinek_mercer_scores(self, tiny_index):
        scores = JelinekMercerLanguageModelScorer(tiny_index).score(["goal"])
        assert set(scores) == {"d1", "d4"}

    def test_score_document_helper(self, tiny_index):
        scorer = Bm25Scorer(tiny_index)
        assert scorer.score_document(["goal"], "d1") > 0
        assert scorer.score_document(["goal"], "d3") == 0.0

    def test_scorers_agree_on_obvious_case(self, small_corpus):
        """All three scorers should put relevant shots above average for a
        query built from a topic's own discriminative terms."""
        index = InvertedIndex.from_collection(small_corpus.collection)
        topic = small_corpus.topics.topics()[0]
        relevant = small_corpus.qrels.relevant_shots(topic.topic_id)
        for scorer in (Bm25Scorer(index), TfIdfScorer(index),
                       DirichletLanguageModelScorer(index)):
            scores = scorer.score(topic.query_terms)
            if not scores:
                continue
            ranked = sorted(scores.items(), key=lambda item: -item[1])
            top_ids = [doc_id for doc_id, _ in ranked[:10]]
            hits = sum(1 for doc_id in top_ids if doc_id in relevant)
            assert hits >= 3
