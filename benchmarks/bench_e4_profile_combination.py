"""E4 — Combining static profiles with implicit feedback (RQ3).

The paper's third research question: "how both static user profiles and
implicit relevance feedback should be combined to adapt to the user's need",
and its Section 4 argument that each alone is insufficient.  We compare four
systems over the same simulated users and topics — no adaptation, profile
only, implicit only, and the combined model — and additionally sweep the
combination strategies for the combined model.
"""

from __future__ import annotations

from _common import print_table

from repro.core import (
    CombinationConfig,
    baseline_policy,
    combined_policy,
    implicit_only_policy,
    profile_only_policy,
)
from repro.evaluation import ExperimentCondition, relative_improvement

USERS = 10
TOPICS_PER_USER = 2


def run_experiment(bench_runner):
    conditions = [
        ExperimentCondition(name="none", policy=baseline_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=404),
        ExperimentCondition(name="profile_only", policy=profile_only_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=404),
        ExperimentCondition(name="implicit_only", policy=implicit_only_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=404),
        ExperimentCondition(name="combined", policy=combined_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=404),
    ]
    results = bench_runner.run_conditions(conditions)
    baseline_map = results["none"].mean_average_precision
    rows = []
    for condition in conditions:
        summary = results[condition.name].summary()
        rows.append(
            {
                "system": condition.name,
                "map": summary["map"],
                "precision@10": summary["precision@10"],
                "relevant_found": summary["relevant_found"],
                "rel_map_gain_%": 100.0 * relative_improvement(baseline_map, summary["map"]),
            }
        )
    return rows


def run_strategy_sweep(bench_runner):
    """Secondary sweep: how should the two evidence sources be combined?"""
    from repro.core import AdaptiveVideoRetrievalSystem

    rows = []
    for strategy in ("linear", "cold_start", "profile_gate"):
        system = AdaptiveVideoRetrievalSystem(
            bench_runner.system.engine,
            combination=CombinationConfig(strategy=strategy),
        )
        # Temporarily swap the runner's system to reuse its plumbing.
        original = bench_runner._system
        bench_runner._system = system
        try:
            condition = ExperimentCondition(
                name=f"combined_{strategy}", policy=combined_policy(),
                user_count=6, topics_per_user=2, seed=405,
            )
            result = bench_runner.run_condition(condition)
            rows.append({"strategy": strategy, "map": result.mean_average_precision})
        finally:
            bench_runner._system = original
    return rows


def test_e4_profile_combination(benchmark, bench_runner):
    rows = benchmark.pedantic(run_experiment, args=(bench_runner,), rounds=1, iterations=1)
    print_table("E4: profile / implicit feedback combination", rows)
    strategy_rows = run_strategy_sweep(bench_runner)
    print_table("E4b: combination strategy sweep (combined policy)", strategy_rows)
    by_name = {row["system"]: row["map"] for row in rows}
    # Expected shape: combined is the best system and beats the baseline;
    # each single-evidence system is at least as good as no adaptation
    # (within a small tolerance for simulation noise).
    assert by_name["combined"] > by_name["none"]
    assert by_name["combined"] >= max(by_name["profile_only"], by_name["implicit_only"]) - 0.02
    assert by_name["implicit_only"] > by_name["none"] - 0.02
    assert by_name["profile_only"] > by_name["none"] - 0.02
