"""Shared fixtures: a small synthetic corpus and the engines built on it.

The corpus fixtures are session-scoped because generation and indexing are
the slowest steps; tests must treat them as read-only (mutating tests build
their own corpus).
"""

from __future__ import annotations

import pytest

from repro.analysis import analyse_collection
from repro.collection import CollectionConfig, SyntheticCorpus, generate_corpus
from repro.core import AdaptiveVideoRetrievalSystem
from repro.retrieval import VideoRetrievalEngine


@pytest.fixture(scope="session")
def small_corpus() -> SyntheticCorpus:
    """A small, fully generated corpus shared by read-only tests."""
    return generate_corpus(seed=41, config=CollectionConfig.small())


@pytest.fixture(scope="session")
def medium_corpus() -> SyntheticCorpus:
    """A medium corpus for simulation and experiment tests."""
    return generate_corpus(
        seed=17,
        config=CollectionConfig(days=8, stories_per_day=7, topic_count=8),
    )


@pytest.fixture(scope="session")
def analysed_corpus() -> SyntheticCorpus:
    """A small corpus with features and concept scores filled in."""
    corpus = generate_corpus(seed=43, config=CollectionConfig.small())
    analyse_collection(corpus.collection)
    return corpus


@pytest.fixture(scope="session")
def engine(small_corpus: SyntheticCorpus) -> VideoRetrievalEngine:
    """A retrieval engine over the small corpus."""
    return VideoRetrievalEngine(small_corpus.collection)


@pytest.fixture(scope="session")
def medium_engine(medium_corpus: SyntheticCorpus) -> VideoRetrievalEngine:
    """A retrieval engine over the medium corpus."""
    return VideoRetrievalEngine(medium_corpus.collection)


@pytest.fixture(scope="session")
def adaptive_system(medium_engine: VideoRetrievalEngine) -> AdaptiveVideoRetrievalSystem:
    """An adaptive system over the medium corpus."""
    return AdaptiveVideoRetrievalSystem(medium_engine)
