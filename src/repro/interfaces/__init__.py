"""Interface capability models (desktop, iTV) and interaction logging."""

from repro.interfaces.base import ActionCost, InterfaceModel
from repro.interfaces.desktop import DesktopInterface
from repro.interfaces.itv import ItvInterface
from repro.interfaces.logging import InteractionLogger, SessionLog

__all__ = [
    "ActionCost",
    "InterfaceModel",
    "DesktopInterface",
    "ItvInterface",
    "InteractionLogger",
    "SessionLog",
]
