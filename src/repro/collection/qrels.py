"""Graded relevance judgements (qrels) in the TREC style.

Qrels map ``(topic_id, shot_id)`` pairs to integer relevance grades:
``0`` not relevant, ``1`` relevant, ``2`` highly relevant.  They are produced
by the collection generator (ground truth by construction) and consumed by
the evaluation metrics and by simulated users, whose judgements of what they
see on screen are noisy observations of the qrels.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple, Union

PathLike = Union[str, Path]


class Qrels:
    """Graded relevance judgements for a set of topics."""

    def __init__(self, judgements: Mapping[str, Mapping[str, int]] = ()) -> None:
        self._judgements: Dict[str, Dict[str, int]] = {}
        if judgements:
            for topic_id, by_shot in dict(judgements).items():
                for shot_id, grade in dict(by_shot).items():
                    self.add(topic_id, shot_id, grade)

    # -- mutation --------------------------------------------------------------

    def add(self, topic_id: str, shot_id: str, grade: int) -> None:
        """Record a judgement; higher grades overwrite lower ones."""
        if grade < 0:
            raise ValueError(f"relevance grade must be non-negative, got {grade}")
        topic_judgements = self._judgements.setdefault(topic_id, {})
        existing = topic_judgements.get(shot_id, 0)
        topic_judgements[shot_id] = max(existing, int(grade))

    # -- queries ----------------------------------------------------------------

    def topics(self) -> List[str]:
        """Topic ids with at least one judgement."""
        return sorted(self._judgements)

    def grade(self, topic_id: str, shot_id: str) -> int:
        """The grade for a pair, defaulting to 0 (not relevant / unjudged)."""
        return self._judgements.get(topic_id, {}).get(shot_id, 0)

    def is_relevant(self, topic_id: str, shot_id: str) -> bool:
        """True if the pair is judged relevant (grade > 0)."""
        return self.grade(topic_id, shot_id) > 0

    def relevant_shots(self, topic_id: str) -> Set[str]:
        """Shot ids judged relevant for a topic."""
        return {
            shot_id
            for shot_id, grade in self._judgements.get(topic_id, {}).items()
            if grade > 0
        }

    def relevant_count(self, topic_id: str) -> int:
        """Number of relevant shots for a topic."""
        return len(self.relevant_shots(topic_id))

    def judgements_for(self, topic_id: str) -> Dict[str, int]:
        """A copy of all judgements (including explicit zeros) for a topic."""
        return dict(self._judgements.get(topic_id, {}))

    def items(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate ``(topic_id, shot_id, grade)`` triples in sorted order."""
        for topic_id in sorted(self._judgements):
            for shot_id in sorted(self._judgements[topic_id]):
                yield topic_id, shot_id, self._judgements[topic_id][shot_id]

    def __len__(self) -> int:
        return sum(len(by_shot) for by_shot in self._judgements.values())

    def __contains__(self, topic_id: str) -> bool:
        return topic_id in self._judgements

    # -- persistence (TREC qrels format) -----------------------------------------

    def to_trec_lines(self) -> List[str]:
        """Render as standard TREC qrels lines: ``topic 0 doc grade``."""
        return [
            f"{topic_id} 0 {shot_id} {grade}"
            for topic_id, shot_id, grade in self.items()
        ]

    def save(self, path: PathLike) -> None:
        """Write TREC-format qrels to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.to_trec_lines()) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "Qrels":
        """Read TREC-format qrels from ``path``."""
        qrels = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"malformed qrels line: {line!r}")
            topic_id, _iteration, shot_id, grade = parts
            qrels.add(topic_id, shot_id, int(grade))
        return qrels

    @classmethod
    def from_triples(cls, triples: Iterable[Tuple[str, str, int]]) -> "Qrels":
        """Build qrels from an iterable of ``(topic, shot, grade)`` triples."""
        qrels = cls()
        for topic_id, shot_id, grade in triples:
            qrels.add(topic_id, shot_id, grade)
        return qrels
