"""E7 — Ostensive (recency-weighted) evidence under within-session drift.

Campbell & van Rijsbergen's ostensive model motivates the paper's treatment
of changing information needs: "the users' information need can change
within different retrieval sessions and sometimes even within the same
session".  We simulate sessions whose target topic shifts midway (the user
starts searching for topic A and switches to topic B) and compare discount
profiles — uniform (static accumulation), exponential, reciprocal and linear
— on post-shift retrieval quality.
"""

from __future__ import annotations

from _common import print_table

from repro.core import AdaptiveVideoRetrievalSystem, implicit_only_policy
from repro.evaluation import average_precision, default_query_strategy, make_interface, mean_metric
from repro.simulation import DriftingQueryStrategy, SessionSimulator, diligent_user

PROFILES = (
    ("uniform (static)", "uniform", 1.0),
    ("exponential 0.7", "exponential", 0.7),
    ("exponential 0.4", "exponential", 0.4),
)
USER_PAIRS = 8


def run_experiment(bench_corpus, bench_runner):
    collection = bench_corpus.collection
    topics = bench_corpus.topics.topics()
    system = bench_runner.system
    simulator = SessionSimulator(
        collection=collection,
        qrels=bench_corpus.qrels,
        interface=make_interface("desktop"),
        seed=707,
    )
    base_strategy = default_query_strategy(bench_corpus, vagueness=0.25)
    rows = []
    for label, profile_name, base in PROFILES:
        post_shift_aps = []
        pre_shift_aps = []
        for pair_index in range(USER_PAIRS):
            first = topics[(2 * pair_index) % len(topics)]
            second = topics[(2 * pair_index + 1) % len(topics)]
            if first.topic_id == second.topic_id:
                continue
            policy = implicit_only_policy().with_overrides(
                ostensive_profile=profile_name, ostensive_base=base
            )
            session = system.create_session(
                policy=policy, topic_id=second.topic_id, result_limit=50
            )
            user = diligent_user(f"drift{pair_index}").with_overrides(
                max_queries=4, patience_pages=2
            )
            strategy = DriftingQueryStrategy(
                first_topic=first, second_topic=second, shift_after=2, base=base_strategy
            )
            outcome = simulator.run(
                session, second, user, strategy=strategy,
                session_id=f"{label}-{pair_index}",
            )
            for iteration in outcome.iterations:
                ap_second = average_precision(
                    iteration.result_shot_ids,
                    bench_corpus.qrels.judgements_for(second.topic_id),
                )
                if iteration.iteration > 2:
                    post_shift_aps.append(ap_second)
                else:
                    pre_shift_aps.append(
                        average_precision(
                            iteration.result_shot_ids,
                            bench_corpus.qrels.judgements_for(first.topic_id),
                        )
                    )
        rows.append(
            {
                "evidence_weighting": label,
                "pre_shift_map_topicA": mean_metric(pre_shift_aps),
                "post_shift_map_topicB": mean_metric(post_shift_aps),
            }
        )
    return rows


def test_e7_ostensive_drift(benchmark, bench_corpus, bench_runner):
    rows = benchmark.pedantic(
        run_experiment, args=(bench_corpus, bench_runner), rounds=1, iterations=1
    )
    print_table("E7: evidence weighting under a mid-session interest shift", rows)
    by_label = {row["evidence_weighting"]: row["post_shift_map_topicB"] for row in rows}
    # Expected shape: discounting old evidence recovers better after the
    # interest shift than static accumulation.
    best_ostensive = max(by_label["exponential 0.7"], by_label["exponential 0.4"])
    assert best_ostensive >= by_label["uniform (static)"]
