"""Accumulating implicit evidence over a session.

The accumulator is the bridge between raw interaction events and the
adaptive retrieval model: it applies an :class:`IndicatorExtractor` and a
:class:`WeightingScheme` to every incoming event and maintains a per-shot
evidence mass.  Accumulation is delegated to an
:class:`~repro.core.ostensive.OstensiveAccumulator`, so every discount
profile of the ostensive model (Campbell & van Rijsbergen) is supported:

* *uniform* — evidence simply adds up over the session (static
  accumulation, the historical ``decay=1.0`` behaviour);
* *exponential* — older evidence is discounted by ``decay`` per batch via
  an in-place running fold (the historical ``decay < 1.0`` behaviour);
* *reciprocal* / *linear* — per-age discount factors that cannot fold into
  a running total; the per-batch partial sums are retained and combined
  lazily (cached between batches).

Evidence maintenance is O(batch) per observation and O(1) per read between
observations; the accumulator also maintains a content *digest* (the memo
key for the :class:`~repro.core.feedback_model.ImplicitFeedbackModel`
caches) and the total positive evidence mass, both invalidated per batch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.feedback.events import InteractionEvent
from repro.feedback.indicators import IndicatorExtractor
from repro.feedback.weighting import WeightingScheme, heuristic_scheme
from repro.utils.validation import ensure_in_range


class EvidenceAccumulator:
    """Maintains per-shot relevance evidence as events arrive.

    Parameters
    ----------
    scheme:
        The indicator weighting scheme converting indicator strengths into
        evidence increments.
    extractor:
        Turns events into indicator observations.
    decay:
        Ostensive discount factor in ``(0, 1]`` applied to *all existing*
        evidence whenever a new batch of events arrives: 1.0 reproduces
        static accumulation, smaller values privilege recent evidence.
        When ``discount_profile`` is ``"exponential"`` this is the decay
        base; the other profiles ignore it.
    shot_durations:
        Optional shot durations used to normalise play-progress events.
        Held **by reference** (not copied) so a corpus-wide mapping can be
        shared across sessions; treat it as read-only.
    discount_profile:
        Optional ostensive discount profile name (one of
        :data:`~repro.core.ostensive.DISCOUNT_PROFILES`).  ``None`` derives
        the profile from ``decay`` (1.0 → uniform, otherwise exponential),
        which reproduces the historical behaviour exactly.
    horizon:
        Horizon of the ``linear`` profile (iterations until the factor
        reaches zero).
    reference:
        When true, every evidence read performs a full recompute from the
        retained history (:meth:`OstensiveAccumulator.
        weighted_evidence_reference`) and no digest/mass caches are kept.
        This is the naive path the equivalence tests and the E14 bench
        compare the fast path against.
    """

    def __init__(
        self,
        scheme: Optional[WeightingScheme] = None,
        extractor: Optional[IndicatorExtractor] = None,
        decay: float = 1.0,
        shot_durations: Optional[Mapping[str, float]] = None,
        discount_profile: Optional[str] = None,
        horizon: int = 6,
        reference: bool = False,
    ) -> None:
        self._scheme = scheme or heuristic_scheme()
        self._extractor = extractor or IndicatorExtractor()
        self._decay = ensure_in_range(decay, 0.0, 1.0, "decay")
        if self._decay == 0.0:
            raise ValueError("decay must be greater than 0")
        self._shot_durations: Mapping[str, float] = (
            shot_durations if shot_durations is not None else {}
        )
        if discount_profile is None:
            discount_profile = "uniform" if self._decay == 1.0 else "exponential"
        self._profile = discount_profile
        self._reference = reference
        # Imported here, not at module level: repro.core.adaptive imports
        # this module, and importing repro.core.ostensive initialises the
        # repro.core package, which would close the cycle mid-import.
        from repro.core.ostensive import OstensiveAccumulator

        # The fast path drops dead history (running totals are the whole
        # state for uniform/exponential, linear only needs `horizon` ages),
        # keeping long-lived serving sessions O(evidence) instead of
        # O(batches); reference mode retains it for the full recompute.
        self._ostensive = OstensiveAccumulator.for_profile(
            discount_profile,
            base=self._decay,
            horizon=horizon,
            retain_history=reference,
        )
        self._event_count = 0
        self._batch_index = 0
        # Per-batch caches (never consulted in reference mode).
        self._digest_cache: Optional[Tuple[Tuple[str, float], ...]] = None
        self._positive_mass_cache: Optional[float] = None

    # -- configuration -----------------------------------------------------------

    @property
    def scheme(self) -> WeightingScheme:
        """The weighting scheme in use."""
        return self._scheme

    @property
    def decay(self) -> float:
        """The ostensive discount factor (1.0 = static accumulation)."""
        return self._decay

    @property
    def discount_profile(self) -> str:
        """The ostensive discount profile in force."""
        return self._profile

    @property
    def is_reference(self) -> bool:
        """True when the accumulator runs the naive full-recompute path."""
        return self._reference

    @property
    def event_count(self) -> int:
        """Number of events observed so far."""
        return self._event_count

    @property
    def version(self) -> int:
        """Monotonic counter ticking on every observed batch.

        The evidence (and therefore its digest and positive mass) can only
        change when the version does, which is what makes the per-batch
        caches below safe to serve between observations.
        """
        return self._batch_index

    # -- accumulation ---------------------------------------------------------------

    def observe(self, event: InteractionEvent) -> None:
        """Observe a single event (its own decay step)."""
        self.observe_batch([event])

    def observe_batch(self, events: Iterable[InteractionEvent]) -> None:
        """Observe a batch of events, applying one ostensive decay step first.

        A "batch" is typically everything that happened since the previous
        query iteration; decaying per batch rather than per event makes the
        discount correspond to *iterations back in time*, which is how the
        ostensive model is usually formulated.
        """
        events = list(events)
        if not events:
            return
        per_shot = self._extractor.per_shot_indicator_strengths(
            events, self._shot_durations
        )
        increments = self._scheme.evidence_map(per_shot)
        self._ostensive.observe_iteration(increments)
        self._event_count += len(events)
        self._batch_index += 1
        self._digest_cache = None
        self._positive_mass_cache = None

    # -- reading the evidence ----------------------------------------------------------

    def _view(self) -> Mapping[str, float]:
        """The current per-shot evidence without copying (read-only)."""
        if self._reference:
            return self._ostensive.weighted_evidence_reference()
        return self._ostensive.weighted_evidence_view()

    def evidence(self) -> Dict[str, float]:
        """A copy of the current per-shot evidence."""
        return dict(self._view())

    def evidence_view(self) -> Mapping[str, float]:
        """The current per-shot evidence **without copying**.

        The returned mapping is internal state: treat it as read-only and
        do not hold it across an :meth:`observe_batch`.  Used on the
        per-query hot path, where the defensive copy of :meth:`evidence`
        is pure overhead.
        """
        return self._view()

    def evidence_digest(self) -> Tuple[Tuple[str, float], ...]:
        """A content digest of the current evidence (cached per batch).

        The digest is the evidence items *in insertion order* — order is
        part of the identity because downstream consumers fold the mapping
        in iteration order, so equal content in a different order is not
        guaranteed to produce bit-identical floats.  Two sessions that
        observed the same history produce the same digest, which is what
        lets them share :class:`~repro.core.feedback_model.
        ImplicitFeedbackModel` memo entries.
        """
        if self._reference:
            return tuple(self._view().items())
        if self._digest_cache is None:
            self._digest_cache = tuple(self._view().items())
        return self._digest_cache

    def positive_evidence(self) -> Dict[str, float]:
        """Only the shots with strictly positive evidence."""
        return {shot_id: mass for shot_id, mass in self._view().items() if mass > 0}

    def negative_evidence(self) -> Dict[str, float]:
        """Only the shots with strictly negative evidence."""
        return {shot_id: mass for shot_id, mass in self._view().items() if mass < 0}

    def positive_mass(self) -> float:
        """Total strictly-positive evidence mass (cached per batch)."""
        if self._reference:
            return sum(self.positive_evidence().values())
        if self._positive_mass_cache is None:
            self._positive_mass_cache = sum(self.positive_evidence().values())
        return self._positive_mass_cache

    def top_shots(self, count: int = 10) -> List[Tuple[str, float]]:
        """The ``count`` shots with the most positive evidence."""
        ranked = sorted(
            self.positive_evidence().items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def evidence_for(self, shot_id: str) -> float:
        """Evidence mass for one shot (0 if never observed)."""
        return self._view().get(shot_id, 0.0)

    def reset(self) -> None:
        """Forget everything (start of a new session)."""
        self._ostensive.reset()
        self._event_count = 0
        self._batch_index = 0
        self._digest_cache = None
        self._positive_mass_cache = None

    def __len__(self) -> int:
        return len(self._view())
