"""Per-tenant admission quotas: token buckets and fair-share slot caps.

A tenant's sustained admission rate is governed by a classic token bucket
(``rate`` tokens/second refill, ``burst`` capacity), and its share of the
frontend's concurrency slots by an in-flight counter capped at
``max_in_flight``.  Both are resolved from the
:class:`~repro.serving.config.ServingConfig` (explicit per-tenant entries,
else the default quota, else unthrottled).

The clock is injectable (monotonic seconds) so the quota tests are
deterministic — they advance a fake clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.serving.config import ServingConfig, TenantQuota

Clock = Callable[[], float]


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s refill, ``burst`` cap."""

    def __init__(self, rate: float, burst: int, clock: Clock = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Spend ``tokens`` if available.

        Returns ``(acquired, retry_after)`` — on refusal ``retry_after``
        is how long until the bucket will have refilled enough.
        """
        with self._lock:
            now = self._clock()
            self._refill_locked(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True, 0.0
            deficit = tokens - self._tokens
            return False, deficit / self._rate

    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens


class TenantQuotaManager:
    """Resolve, enforce and account per-tenant admission quotas.

    One instance per frontend.  ``admit(tenant)`` answers with
    ``(None, 0.0)`` on success — the tenant's in-flight count is already
    incremented and must be paid back with ``release(tenant)`` exactly
    once — or ``(reason, retry_after)`` on refusal, in which case nothing
    was consumed.
    """

    def __init__(self, config: ServingConfig, clock: Clock = time.monotonic) -> None:
        self._config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight: Dict[str, int] = {}

    def _bucket_for(self, tenant: str, quota: TenantQuota) -> Optional[TokenBucket]:
        if quota.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    quota.rate, quota.effective_burst(), clock=self._clock
                )
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str) -> Tuple[Optional[str], float]:
        """Try to admit one request for ``tenant``.

        Fair-share (in-flight cap) is checked before the token bucket so a
        refusal for slot pressure does not burn a rate token.
        """
        quota = self._config.quota_for(tenant)
        if quota is None:
            with self._lock:
                self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
            return None, 0.0
        with self._lock:
            holding = self._in_flight.get(tenant, 0)
            if quota.max_in_flight is not None and holding >= quota.max_in_flight:
                return (
                    f"fair-share limit reached ({holding}/{quota.max_in_flight} "
                    f"requests in flight)",
                    0.0,
                )
            # Reserve the slot optimistically; rolled back below if the
            # token bucket refuses, so a racing request cannot oversubscribe
            # the cap while this one is still consulting the bucket.
            self._in_flight[tenant] = holding + 1
        bucket = self._bucket_for(tenant, quota)
        if bucket is not None:
            acquired, retry_after = bucket.try_acquire()
            if not acquired:
                self.release(tenant)
                return "rate limit exceeded", retry_after
        return None, 0.0

    def release(self, tenant: str) -> None:
        """Pay back one admitted request's in-flight slot."""
        with self._lock:
            holding = self._in_flight.get(tenant, 0)
            if holding <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = holding - 1

    def in_flight(self, tenant: str) -> int:
        """How many admitted requests the tenant currently holds."""
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def total_in_flight(self) -> int:
        """Admitted requests across all tenants."""
        with self._lock:
            return sum(self._in_flight.values())
