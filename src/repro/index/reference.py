"""Retained reference implementations of the scoring functions.

These are the original, straightforward per-:class:`Posting` scoring loops
that predate the array-backed kernel in :mod:`repro.index.scoring`,
:mod:`repro.index.language_model` and :mod:`repro.index.visual`.  They are
deliberately kept verbatim — object postings, string-keyed dictionaries,
full sorts — because they define the *semantics* the fast kernel must
reproduce: the ranking-equivalence test suite asserts that kernel and
reference produce identical ``(document_id, score)`` rankings for every
scorer, for weighted fusion and for query-by-example.

Do not "optimise" this module; its only job is to stay obviously correct.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.features import cosine_similarity
from repro.index.inverted_index import InvertedIndex
from repro.index.scoring import QueryTerms, normalise_query
from repro.index.visual import VisualIndex


class ReferenceTfIdfScorer:
    """Original cosine-normalised TF-IDF loop."""

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index

    def _idf(self, term: str) -> float:
        document_frequency = self._index.document_frequency(term)
        if document_frequency == 0:
            return 0.0
        return math.log((self._index.document_count + 1) / (document_frequency + 0.5))

    def score(self, query_terms: QueryTerms) -> Dict[str, float]:
        weights = normalise_query(query_terms)
        scores: Dict[str, float] = {}
        for term, query_weight in weights.items():
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for posting in self._index.postings(term):
                term_score = (
                    query_weight
                    * (1.0 + math.log(posting.term_frequency))
                    * idf
                )
                scores[posting.document_id] = scores.get(posting.document_id, 0.0) + term_score
        for document_id in list(scores):
            length = self._index.document_length(document_id)
            scores[document_id] /= math.sqrt(max(1.0, float(length)))
        return scores


class ReferenceBm25Scorer:
    """Original Okapi BM25 loop."""

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75) -> None:
        self._index = index
        self._k1 = k1
        self._b = b

    def _idf(self, term: str) -> float:
        document_frequency = self._index.document_frequency(term)
        if document_frequency == 0:
            return 0.0
        numerator = self._index.document_count - document_frequency + 0.5
        denominator = document_frequency + 0.5
        return math.log(1.0 + numerator / denominator)

    def score(self, query_terms: QueryTerms) -> Dict[str, float]:
        weights = normalise_query(query_terms)
        scores: Dict[str, float] = {}
        average_length = max(1.0, self._index.average_document_length)
        for term, query_weight in weights.items():
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for posting in self._index.postings(term):
                length = self._index.document_length(posting.document_id)
                frequency = posting.term_frequency
                denominator = frequency + self._k1 * (
                    1.0 - self._b + self._b * length / average_length
                )
                term_score = query_weight * idf * (frequency * (self._k1 + 1.0)) / denominator
                scores[posting.document_id] = scores.get(posting.document_id, 0.0) + term_score
        return scores


class ReferenceDirichletScorer:
    """Original Dirichlet-smoothed query-likelihood loop."""

    def __init__(self, index: InvertedIndex, mu: float = 300.0) -> None:
        self._index = index
        self._mu = mu

    def _collection_probability(self, term: str) -> float:
        total = self._index.total_terms
        if total == 0:
            return 0.0
        return (
            sum(posting.term_frequency for posting in self._index.postings(term))
            / total
        )

    def score(self, query_terms: QueryTerms) -> Dict[str, float]:
        weights = normalise_query(query_terms)
        candidate_documents: Dict[str, Dict[str, int]] = {}
        for term in weights:
            for posting in self._index.postings(term):
                document_terms = candidate_documents.setdefault(posting.document_id, {})
                document_terms[term] = posting.term_frequency

        scores: Dict[str, float] = {}
        for document_id, term_frequencies in candidate_documents.items():
            length = self._index.document_length(document_id)
            log_likelihood = 0.0
            for term, query_weight in weights.items():
                collection_probability = self._collection_probability(term)
                if collection_probability == 0.0:
                    continue
                frequency = term_frequencies.get(term, 0)
                smoothed = (frequency + self._mu * collection_probability) / (
                    length + self._mu
                )
                log_likelihood += query_weight * math.log(smoothed)
            scores[document_id] = log_likelihood
        return scores


class ReferenceJelinekMercerScorer:
    """Original Jelinek-Mercer smoothed query-likelihood loop."""

    def __init__(self, index: InvertedIndex, lambda_: float = 0.7) -> None:
        self._index = index
        self._lambda = lambda_

    def score(self, query_terms: QueryTerms) -> Dict[str, float]:
        weights = normalise_query(query_terms)
        total_terms = max(1, self._index.total_terms)
        candidate_documents: Dict[str, Dict[str, int]] = {}
        for term in weights:
            for posting in self._index.postings(term):
                document_terms = candidate_documents.setdefault(posting.document_id, {})
                document_terms[term] = posting.term_frequency

        scores: Dict[str, float] = {}
        for document_id, term_frequencies in candidate_documents.items():
            length = max(1, self._index.document_length(document_id))
            log_likelihood = 0.0
            for term, query_weight in weights.items():
                collection_frequency = sum(
                    posting.term_frequency for posting in self._index.postings(term)
                )
                collection_probability = collection_frequency / total_terms
                document_probability = term_frequencies.get(term, 0) / length
                mixed = (
                    self._lambda * document_probability
                    + (1.0 - self._lambda) * collection_probability
                )
                if mixed <= 0.0:
                    continue
                log_likelihood += query_weight * math.log(mixed)
            scores[document_id] = log_likelihood
        return scores


def reference_similar_to_vector(
    index: VisualIndex,
    vector: Sequence[float],
    limit: int = 20,
    exclude: Sequence[str] = (),
) -> List[Tuple[str, float]]:
    """Original brute-force cosine scan with a full sort."""
    excluded = set(exclude)
    scored = [
        (shot_id, cosine_similarity(vector, index.features_of(shot_id)))
        for shot_id in index.shot_ids()
        if shot_id not in excluded
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored[:limit]


def reference_score_by_concepts(
    index: VisualIndex, concept_weights: Mapping[str, float]
) -> Dict[str, float]:
    """Original per-shot weighted concept sum."""
    scores: Dict[str, float] = {}
    for shot_id in index.shot_ids():
        shot_scores = index.concept_scores_of(shot_id)
        total = 0.0
        for concept, weight in concept_weights.items():
            total += weight * shot_scores.get(concept, 0.0)
        if total != 0.0:
            scores[shot_id] = total
    return scores


def reference_top_documents(scores: Mapping[str, float], limit: int) -> List[str]:
    """Original full-sort top-k selection."""
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [document_id for document_id, _score in ranked[:limit]]
