"""Declarative description of a multi-user service workload.

A :class:`WorkloadSpec` is the single value that pins down an entire
concurrent load test: how many simulated users, how many query iterations
each runs, how much of the result list they give feedback on, which
adaptation policy their sessions use, and the seed every random decision is
derived from.  Two runs from the same spec — regardless of thread count or
scheduling — must produce byte-identical canonical event logs; that
property is what makes concurrency bugs in the serving path *observable*
(any divergence is a bug, not noise).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one deterministic multi-user workload.

    Attributes
    ----------
    users:
        How many simulated users (one service session each) the workload
        drives.  Users are drawn from :func:`repro.simulation.population.
        generate_population`, so personas and behavioural jitter follow
        the same distributions as the paper's simulated studies.
    queries_per_user:
        Query iterations per user.  Each iteration is a search step
        followed by ``feedback_per_query`` feedback steps, so a user
        contributes ``(1 + feedback_per_query) * queries_per_user + 2``
        canonical log records (open/close included).
    feedback_per_query:
        Feedback steps after every search step.  The default of 1 is the
        classic search/judge loop; higher values model a user who keeps
        interacting with the same result page (an adaptation-heavy mix
        that hammers the session's evidence fold far more often than its
        query path).  Each feedback step draws from its own labelled RNG
        stream, so the mix stays deterministic at any worker count.
    feedback_top_k:
        How deep into each result list the user's feedback pass looks.
    policy:
        Registered adaptation policy name for every session.
    seed:
        Root seed; every query formulation and judgement decision is
        derived from it through labelled RNG streams, never from shared
        stream consumption order.
    close_sessions:
        Whether each user closes their session at the end of their script
        (exercises the close path under concurrency).
    """

    users: int = 8
    queries_per_user: int = 3
    feedback_per_query: int = 1
    feedback_top_k: int = 5
    policy: str = "combined"
    seed: int = 97
    close_sessions: bool = True

    def __post_init__(self) -> None:
        ensure_positive(self.users, "users")
        ensure_positive(self.queries_per_user, "queries_per_user")
        ensure_positive(self.feedback_per_query, "feedback_per_query")
        ensure_positive(self.feedback_top_k, "feedback_top_k")
        if not self.policy:
            raise ValueError("policy must be non-empty")

    def with_overrides(self, **overrides: object) -> "WorkloadSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **overrides)
