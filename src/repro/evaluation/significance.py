"""Statistical significance tests for paired per-topic metrics.

Interactive-retrieval papers report whether a system's improvement over a
baseline is significant across topics.  Two paired tests are provided:
the paired t-test (parametric) and the sign-flip randomisation test
(distribution-free, the safer choice for small topic sets).  Implementations
are dependency-light; ``scipy`` is deliberately not required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class TestResult:
    """Result of a paired significance test."""

    statistic: float
    p_value: float
    mean_difference: float
    sample_size: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True if the p-value is below ``alpha``."""
        return self.p_value < alpha


def _validate_pairs(baseline: Sequence[float], treatment: Sequence[float]) -> None:
    if len(baseline) != len(treatment):
        raise ValueError(
            f"paired samples must have equal length, got {len(baseline)} and {len(treatment)}"
        )
    if len(baseline) < 2:
        raise ValueError("need at least two paired observations")


def _normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _student_t_sf(t: float, df: int) -> float:
    """Survival function of Student's t via numerical integration.

    Accurate to a few decimal places for the degrees of freedom seen in
    topic-level evaluations (10-100), which is all significance reporting
    needs here.
    """
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if df > 200:
        return 1.0 - _normal_cdf(t)

    # Integrate the t density from |t| to a large bound with Simpson's rule.
    def density(x: float) -> float:
        coefficient = math.gamma((df + 1) / 2.0) / (
            math.sqrt(df * math.pi) * math.gamma(df / 2.0)
        )
        return coefficient * (1.0 + x * x / df) ** (-(df + 1) / 2.0)

    upper = abs(t) + 60.0
    steps = 4000
    width = (upper - abs(t)) / steps
    total = density(abs(t)) + density(upper)
    for index in range(1, steps):
        x = abs(t) + index * width
        total += density(x) * (4 if index % 2 else 2)
    return total * width / 3.0


def paired_t_test(baseline: Sequence[float], treatment: Sequence[float]) -> TestResult:
    """Two-sided paired t-test on per-topic metric values."""
    _validate_pairs(baseline, treatment)
    differences = [t - b for b, t in zip(baseline, treatment)]
    n = len(differences)
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1)
    if variance == 0:
        p_value = 0.0 if mean != 0 else 1.0
        return TestResult(
            statistic=float("inf") if mean != 0 else 0.0,
            p_value=p_value,
            mean_difference=mean,
            sample_size=n,
        )
    statistic = mean / math.sqrt(variance / n)
    p_value = 2.0 * _student_t_sf(abs(statistic), n - 1)
    return TestResult(
        statistic=statistic,
        p_value=min(1.0, p_value),
        mean_difference=mean,
        sample_size=n,
    )


def randomisation_test(
    baseline: Sequence[float],
    treatment: Sequence[float],
    iterations: int = 5000,
    seed: int = 1234,
) -> TestResult:
    """Two-sided sign-flip randomisation test on paired per-topic values."""
    _validate_pairs(baseline, treatment)
    differences = [t - b for b, t in zip(baseline, treatment)]
    observed = abs(sum(differences) / len(differences))
    rng = RandomSource(seed).spawn("randomisation")
    at_least_as_extreme = 0
    for _ in range(iterations):
        total = 0.0
        for difference in differences:
            total += difference if rng.boolean(0.5) else -difference
        if abs(total / len(differences)) >= observed - 1e-12:
            at_least_as_extreme += 1
    p_value = (at_least_as_extreme + 1) / (iterations + 1)
    return TestResult(
        statistic=observed,
        p_value=p_value,
        mean_difference=sum(differences) / len(differences),
        sample_size=len(differences),
    )


def compare_per_topic(
    baseline: Dict[str, float], treatment: Dict[str, float], method: str = "randomisation"
) -> TestResult:
    """Compare two per-topic metric dictionaries on their shared topics."""
    shared = sorted(set(baseline) & set(treatment))
    if len(shared) < 2:
        raise ValueError("need at least two shared topics to compare")
    baseline_values = [baseline[topic_id] for topic_id in shared]
    treatment_values = [treatment[topic_id] for topic_id in shared]
    if method == "t-test":
        return paired_t_test(baseline_values, treatment_values)
    if method == "randomisation":
        return randomisation_test(baseline_values, treatment_values)
    raise ValueError(f"unknown method {method!r}; expected 't-test' or 'randomisation'")
