"""News story segmentation.

Bulletins arrive as a stream of shots; the retrieval and recommendation
layers work on *stories*.  The generator knows the true story boundaries, so
— as with shot-boundary detection — we implement the detection step a real
system would run and evaluate it against that ground truth: a story boundary
is declared between consecutive shots whose transcripts are sufficiently
dissimilar (classic lexical-cohesion / TextTiling-style segmentation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.collection.documents import Collection, Shot
from repro.index.tokenizer import Tokenizer
from repro.utils.validation import ensure_in_range, ensure_positive


def _cosine(left: Dict[str, int], right: Dict[str, int]) -> float:
    if not left or not right:
        return 0.0
    dot = sum(count * right.get(term, 0) for term, count in left.items())
    norm_left = math.sqrt(sum(count * count for count in left.values()))
    norm_right = math.sqrt(sum(count * count for count in right.values()))
    if norm_left == 0 or norm_right == 0:
        return 0.0
    return dot / (norm_left * norm_right)


@dataclass(frozen=True)
class SegmentationResult:
    """Detected story boundaries for one bulletin plus evaluation."""

    video_id: str
    detected_boundaries: Tuple[int, ...]
    true_boundaries: Tuple[int, ...]
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of boundary precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


class StorySegmenter:
    """Lexical-cohesion story segmentation over a bulletin's shot sequence.

    A boundary is hypothesised before shot *i* when the cosine similarity of
    the transcript windows on either side falls below ``threshold``.
    ``window`` controls how many shots on each side form the comparison
    windows.
    """

    def __init__(self, threshold: float = 0.12, window: int = 2,
                 tokenizer: Tokenizer = None) -> None:
        ensure_in_range(threshold, 0.0, 1.0, "threshold")
        ensure_positive(window, "window")
        self._threshold = threshold
        self._window = window
        self._tokenizer = tokenizer or Tokenizer()

    def _window_vector(self, shots: Sequence[Shot], start: int, end: int) -> Dict[str, int]:
        vector: Dict[str, int] = {}
        for shot in shots[max(0, start) : max(0, end)]:
            for term in self._tokenizer.tokenize(shot.transcript):
                vector[term] = vector.get(term, 0) + 1
        return vector

    def detect_boundaries(self, shots: Sequence[Shot]) -> List[int]:
        """Indices ``i`` such that a new story starts at ``shots[i]``."""
        boundaries: List[int] = []
        for index in range(1, len(shots)):
            before = self._window_vector(shots, index - self._window, index)
            after = self._window_vector(shots, index, index + self._window)
            similarity = _cosine(before, after)
            if similarity < self._threshold:
                boundaries.append(index)
        return boundaries

    def evaluate_video(
        self, collection: Collection, video_id: str, tolerance: int = 1
    ) -> SegmentationResult:
        """Detect and score story boundaries for one bulletin."""
        shots = collection.shots_of_video(video_id)
        true_boundaries: List[int] = []
        previous_story = None
        for index, shot in enumerate(shots):
            if previous_story is not None and shot.story_id != previous_story:
                true_boundaries.append(index)
            previous_story = shot.story_id
        detected = self.detect_boundaries(shots)
        unmatched = list(true_boundaries)
        true_positive = 0
        for boundary in detected:
            match = None
            for truth in unmatched:
                if abs(truth - boundary) <= tolerance:
                    match = truth
                    break
            if match is not None:
                unmatched.remove(match)
                true_positive += 1
        precision = true_positive / len(detected) if detected else 0.0
        recall = true_positive / len(true_boundaries) if true_boundaries else 1.0
        return SegmentationResult(
            video_id=video_id,
            detected_boundaries=tuple(detected),
            true_boundaries=tuple(true_boundaries),
            precision=precision,
            recall=recall,
        )

    def evaluate_collection(
        self, collection: Collection, tolerance: int = 1
    ) -> List[SegmentationResult]:
        """Evaluate segmentation over every bulletin in a collection."""
        return [
            self.evaluate_video(collection, video.video_id, tolerance=tolerance)
            for video in collection.videos()
        ]
