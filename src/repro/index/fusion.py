"""Score fusion across evidence sources (text, visual, concepts, feedback).

Multimodal video retrieval combines several rankings for the same query.
The fusion operators here are the standard ones from the metasearch
literature — CombSUM, CombMNZ, weighted linear combination and reciprocal
rank fusion — operating on ``{document_id: score}`` mappings.  All operators
min-max normalise their inputs first so that sources with different score
scales (BM25 vs. cosine similarity vs. feedback mass) can be mixed.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Sequence

from repro.utils.validation import ensure_non_empty

ScoreMap = Mapping[str, float]


def normalisation_bounds_of_values(values) -> tuple:
    """``(low, span)`` of an iterable of scores for min-max normalisation.

    ``span`` is 0.0 for constant inputs, which normalise to 1.0 by
    convention.  Shared by every operator, the engine's single-source fast
    path and the adaptation kernel, so the convention lives in exactly one
    place.  ``values`` may be any re-iterable container (list, dict view).
    """
    low = min(values)
    return low, max(values) - low


def normalisation_bounds(scores: ScoreMap) -> tuple:
    """``(low, span)`` of a score map for min-max normalisation."""
    return normalisation_bounds_of_values(scores.values())


def min_max_normalise(scores: ScoreMap) -> Dict[str, float]:
    """Normalise scores to ``[0, 1]``; constant inputs map to 1.0."""
    if not scores:
        return {}
    low, span = normalisation_bounds(scores)
    if span == 0.0:
        return {document_id: 1.0 for document_id in scores}
    return {
        document_id: (value - low) / span
        for document_id, value in scores.items()
    }


def comb_sum(score_maps: Sequence[ScoreMap]) -> Dict[str, float]:
    """CombSUM: sum of normalised scores across sources."""
    ensure_non_empty(score_maps, "score_maps")
    fused: Dict[str, float] = {}
    for scores in score_maps:
        for document_id, value in min_max_normalise(scores).items():
            fused[document_id] = fused.get(document_id, 0.0) + value
    return fused


def comb_mnz(score_maps: Sequence[ScoreMap]) -> Dict[str, float]:
    """CombMNZ: CombSUM multiplied by the number of sources that matched."""
    ensure_non_empty(score_maps, "score_maps")
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for scores in score_maps:
        for document_id, value in min_max_normalise(scores).items():
            sums[document_id] = sums.get(document_id, 0.0) + value
            counts[document_id] = counts.get(document_id, 0) + 1
    return {
        document_id: sums[document_id] * counts[document_id] for document_id in sums
    }


def weighted_fusion(
    score_maps: Sequence[ScoreMap], weights: Sequence[float]
) -> Dict[str, float]:
    """Weighted linear combination of normalised score maps."""
    ensure_non_empty(score_maps, "score_maps")
    if len(score_maps) != len(weights):
        raise ValueError(
            f"need one weight per score map, got {len(weights)} weights "
            f"for {len(score_maps)} maps"
        )
    if any(weight < 0 for weight in weights):
        raise ValueError("fusion weights must be non-negative")
    active = [
        (scores, weight) for scores, weight in zip(score_maps, weights) if weight != 0
    ]
    if len(active) == 1:
        # Single contributing source: fuse normalisation and weighting in one
        # pass (0.0 + w * v == w * v for the non-negative normalised values,
        # so results match the general path exactly).
        scores, weight = active[0]
        if not scores:
            return {}
        low, span = normalisation_bounds(scores)
        if span == 0.0:
            return {document_id: weight * 1.0 for document_id in scores}
        return {
            document_id: weight * ((value - low) / span)
            for document_id, value in scores.items()
        }
    fused: Dict[str, float] = {}
    for scores, weight in active:
        for document_id, value in min_max_normalise(scores).items():
            fused[document_id] = fused.get(document_id, 0.0) + weight * value
    return fused


def reciprocal_rank_fusion(
    score_maps: Sequence[ScoreMap], k: float = 60.0
) -> Dict[str, float]:
    """Reciprocal rank fusion: robust to incomparable score scales."""
    ensure_non_empty(score_maps, "score_maps")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    fused: Dict[str, float] = {}
    for scores in score_maps:
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        for rank, (document_id, _score) in enumerate(ranked, start=1):
            fused[document_id] = fused.get(document_id, 0.0) + 1.0 / (k + rank)
    return fused


def interpolate(
    primary: ScoreMap, secondary: ScoreMap, secondary_weight: float
) -> Dict[str, float]:
    """Interpolate a secondary score map into a primary one.

    This is the operation the adaptive retrieval model applies when folding
    profile or feedback evidence into the current ranking:
    ``(1 - w) * primary + w * secondary`` over normalised scores, keeping
    every document that appears in either map.
    """
    if not 0.0 <= secondary_weight <= 1.0:
        raise ValueError(f"secondary_weight must be in [0, 1], got {secondary_weight}")
    primary_normalised = min_max_normalise(primary)
    secondary_normalised = min_max_normalise(secondary)
    documents = set(primary_normalised) | set(secondary_normalised)
    return {
        document_id: (1.0 - secondary_weight) * primary_normalised.get(document_id, 0.0)
        + secondary_weight * secondary_normalised.get(document_id, 0.0)
        for document_id in documents
    }


def top_documents(scores: ScoreMap, limit: int) -> List[str]:
    """The ``limit`` best document ids, ties broken by id for determinism.

    Selection uses a bounded heap (``heapq.nsmallest`` over the
    ``(-score, id)`` key), which is O(n log limit) instead of sorting every
    scored document and returns exactly what the full sort would.
    """
    ranked = heapq.nsmallest(limit, scores.items(), key=lambda item: (-item[1], item[0]))
    return [document_id for document_id, _score in ranked]
