"""The adaptive video retrieval model.

This is the paper's target artefact: a retrieval system that "automatically
adapts retrieval results based on the user's preferences", where preferences
come from two sources — a static user profile and the implicit relevance
feedback observed during the session — combined under an ostensive
(recency-weighted) evidence model.

Architecture
------------

:class:`AdaptiveVideoRetrievalSystem` owns the shared, user-independent
pieces (the retrieval engine, ontology, implicit feedback model, evidence
combiner) and hands out per-user :class:`AdaptiveSession` objects.  A
session is a small state machine:

1. ``submit_query(text)`` — personalises the query with the profile (if the
   policy allows), expands it with terms from implicit/explicit feedback,
   runs the engine, folds profile + feedback evidence into the ranking and
   returns the adapted result list.
2. ``observe(events)`` — ingests interaction events (from a real interface
   or the simulator), updating the implicit accumulator and explicit store.
3. repeat.

The baseline, profile-only, implicit-only and combined systems of the
experiments are all this same class under different
:class:`~repro.core.policies.AdaptationPolicy` values, which guarantees the
comparisons isolate the adaptation behaviour rather than implementation
differences.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.collection.documents import Collection
from repro.core.adaptation_kernel import (
    DenseScratch,
    SharedAdaptationState,
    profile_affinity_shared,
    rerank_and_demote,
)
from repro.core.combination import CombinationConfig, EvidenceCombiner
from repro.core.feedback_model import ImplicitFeedbackModel
from repro.core.policies import AdaptationPolicy, baseline_policy
from repro.feedback.accumulator import EvidenceAccumulator
from repro.feedback.events import InteractionEvent
from repro.feedback.explicit import ExplicitFeedbackStore
from repro.feedback.weighting import WeightingScheme, heuristic_scheme
from repro.profiles.ontology import InterestOntology
from repro.profiles.profile import UserProfile
from repro.profiles.reranker import ProfileReranker
from repro.retrieval.engine import VideoRetrievalEngine
from repro.retrieval.query import Query
from repro.retrieval.reranking import demote_seen_shots, rerank_with_scores
from repro.retrieval.results import ResultList


@dataclass
class QueryIteration:
    """One query iteration within a session (for log analysis and replay)."""

    query_text: str
    adapted_query: Query
    results: ResultList
    iteration: int
    evidence_snapshot: Dict[str, float] = field(default_factory=dict)


class AdaptiveSession:
    """Per-user, per-task adaptive search session.

    Construction is O(1): every corpus-derived lookup (shot durations,
    categories, concepts) comes from the system's shared
    :class:`~repro.core.adaptation_kernel.SharedAdaptationState`, built
    once and handed to sessions by reference.  With ``fast_path=False``
    the session runs the retained naive implementations instead — a
    per-session O(corpus) duration build, full-recompute ostensive
    evidence, un-memoised feedback derivations and the two-stage reference
    re-ranking fold — which is what the equivalence tests and the E14
    bench compare against (rankings are bit-identical by construction).
    """

    def __init__(
        self,
        system: "AdaptiveVideoRetrievalSystem",
        profile: UserProfile,
        policy: AdaptationPolicy,
        scheme: Optional[WeightingScheme] = None,
        topic_id: Optional[str] = None,
        result_limit: int = 50,
        fast_path: bool = True,
    ) -> None:
        self._system = system
        self._profile = profile
        self._policy = policy
        self._topic_id = topic_id
        self._result_limit = result_limit
        self._fast_path = fast_path
        decay = 1.0
        if policy.use_implicit and policy.ostensive_profile == "exponential":
            decay = policy.ostensive_base
        if fast_path:
            shot_durations: "Dict[str, float]" = system.shared_state.shot_durations
        else:
            shot_durations = {
                shot.shot_id: shot.duration for shot in system.collection.iter_shots()
            }
        self._accumulator = EvidenceAccumulator(
            scheme=scheme or heuristic_scheme(),
            decay=decay,
            shot_durations=shot_durations,
            discount_profile=policy.ostensive_profile if policy.use_implicit else None,
            horizon=policy.ostensive_horizon,
            reference=not fast_path,
        )
        self._explicit = ExplicitFeedbackStore()
        # Order-preserving seen set: dict keys keep first-touch order while
        # membership tests stay O(1).
        self._seen_shots: Dict[str, None] = {}
        self._scratch = DenseScratch()
        self._iterations: List[QueryIteration] = []
        self._last_query_text: str = ""

    # -- accessors -----------------------------------------------------------------

    @property
    def profile(self) -> UserProfile:
        """The user's static profile."""
        return self._profile

    @property
    def policy(self) -> AdaptationPolicy:
        """The adaptation policy in force."""
        return self._policy

    @property
    def topic_id(self) -> Optional[str]:
        """The search topic this session pursues (when known)."""
        return self._topic_id

    @property
    def iterations(self) -> List[QueryIteration]:
        """All query iterations so far."""
        return list(self._iterations)

    @property
    def iteration_count(self) -> int:
        """Number of query iterations so far."""
        return len(self._iterations)

    @property
    def is_fast_path(self) -> bool:
        """True when the session runs the incremental/dense fast path."""
        return self._fast_path

    def seen_shots(self) -> List[str]:
        """Shots the user has interacted with, in first-touch order."""
        return list(self._seen_shots)

    def implicit_evidence(self) -> Dict[str, float]:
        """Current per-shot implicit evidence."""
        return self._accumulator.evidence()

    def explicit_store(self) -> ExplicitFeedbackStore:
        """The session's explicit feedback store."""
        return self._explicit

    # -- observation ------------------------------------------------------------------

    def observe(self, events: Iterable[InteractionEvent]) -> None:
        """Ingest interaction events produced since the last query iteration."""
        events = list(events)
        if not events:
            return
        seen = self._seen_shots
        for event in events:
            if event.shot_id is not None and event.shot_id not in seen:
                seen[event.shot_id] = None
        if self._policy.use_implicit:
            self._accumulator.observe_batch(events)
        if self._policy.use_explicit:
            self._explicit.record_events(events)

    # -- querying -----------------------------------------------------------------------

    def _evidence_confidence(self) -> float:
        """How much to trust the implicit evidence gathered so far.

        Implicit evidence is noisy and, early in a session, scarce; the
        confidence factor ``m / (m + 2)`` (where ``m`` is the total positive
        evidence mass) keeps a nearly-empty evidence store from hijacking
        the ranking while letting well-supported evidence act at full
        strength.
        """
        mass = self._accumulator.positive_mass()
        mass += float(len(self._explicit.relevant_shots())) if self._policy.use_explicit else 0.0
        return mass / (mass + 2.0)

    def _adapted_query(self, query_text: str) -> Query:
        query = Query.from_text(
            query_text, topic_id=self._topic_id, user_id=self._profile.user_id
        )
        if self._policy.use_profile:
            query = self._system.profile_reranker.personalise_query(query, self._profile)
        if self._policy.use_implicit:
            model = self._system.feedback_model(self._policy)
            if self._fast_path:
                expansion = model.expansion_term_weights(
                    self._accumulator.evidence_view(),
                    digest=self._accumulator.evidence_digest(),
                )
            else:
                expansion = model.expansion_term_weights_uncached(
                    self._accumulator.evidence()
                )
            if expansion:
                confidence = self._evidence_confidence()
                merged = dict(query.term_weights)
                for term, weight in expansion.items():
                    merged[term] = merged.get(term, 0.0) + 0.6 * confidence * weight
                query = query.with_term_weights(merged)
        if self._policy.use_explicit and self._explicit.relevant_shots():
            query = self._system.engine.expand_query(
                query,
                self._explicit.relevant_shots(),
                self._explicit.non_relevant_shots(),
            )
        return query

    def _evidence_scores(self, results: ResultList) -> Dict[str, float]:
        collection = self._system.collection
        fast = self._fast_path
        shared = self._system.shared_state if fast else None
        profile_scores: Dict[str, float] = {}
        implicit_scores: Dict[str, float] = {}
        if self._policy.use_profile and not self._profile.is_empty():
            if fast:
                profile_scores = profile_affinity_shared(
                    self._profile, shared, results.shot_ids()
                )
            else:
                profile_scores = EvidenceCombiner.profile_affinity(
                    self._profile, collection, results.shot_ids()
                )
        if self._policy.use_implicit:
            model = self._system.feedback_model(self._policy)
            if fast:
                # The memoised map is handed out as an owned copy, so the
                # explicit-evidence fold below cannot corrupt the cache.
                implicit_scores = model.rerank_scores(
                    self._accumulator.evidence_view(),
                    digest=self._accumulator.evidence_digest(),
                )
            else:
                implicit_scores = model.rerank_scores_uncached(
                    self._accumulator.evidence()
                )
        if self._policy.use_explicit:
            for shot_id, value in self._explicit.evidence_map().items():
                implicit_scores[shot_id] = implicit_scores.get(shot_id, 0.0) + value
        if not profile_scores and not implicit_scores:
            return {}
        if fast:
            return self._system.combiner.combine(
                profile_scores,
                implicit_scores,
                profile=self._profile,
                category_lookup=shared.shot_categories,
            )
        return self._system.combiner.combine(
            profile_scores,
            implicit_scores,
            collection=collection,
            profile=self._profile,
        )

    def _adaptation_weight(self) -> float:
        weight = 0.0
        if self._policy.use_profile:
            weight += self._policy.profile_weight
        if self._policy.use_implicit or self._policy.use_explicit:
            weight += self._policy.implicit_weight * self._evidence_confidence()
        return min(0.9, weight)

    def submit_query(self, query_text: str, limit: Optional[int] = None) -> ResultList:
        """Run one (adapted) query iteration and return the ranked results.

        Session state (iteration log, last-query text) is committed only
        after the engine search and re-ranking complete, so a query
        abandoned mid-flight — a deadline cancellation, a shard fault —
        leaves the session exactly as it was: ``refresh_results`` re-runs
        the last *successful* query, never the aborted one.
        """
        adapted_query = self._adapted_query(query_text)
        results = self._system.engine.search(
            adapted_query, limit=limit or self._result_limit
        )
        evidence = self._evidence_scores(results)
        demote = self._policy.demote_seen if self._seen_shots else 0.0
        if self._fast_path:
            if evidence or demote > 0:
                results = rerank_and_demote(
                    results,
                    evidence,
                    self._adaptation_weight() if evidence else 0.0,
                    self._seen_shots,
                    demote,
                    collection=self._system.collection,
                    index=self._system.engine.inverted_index,
                    scratch=self._scratch,
                )
        else:
            if evidence:
                results = rerank_with_scores(
                    results,
                    evidence,
                    self._adaptation_weight(),
                    collection=self._system.collection,
                )
            if demote > 0:
                results = demote_seen_shots(
                    results,
                    self._seen_shots,
                    penalty=demote,
                    collection=self._system.collection,
                )
        iteration = QueryIteration(
            query_text=query_text,
            adapted_query=adapted_query,
            results=results,
            iteration=len(self._iterations) + 1,
            evidence_snapshot=self._accumulator.evidence(),
        )
        self._iterations.append(iteration)
        self._last_query_text = query_text
        return results

    def refresh_results(self, limit: Optional[int] = None) -> ResultList:
        """Re-run the last query with the evidence accumulated since then."""
        if not self._last_query_text and not self._iterations:
            raise RuntimeError("no query has been submitted yet")
        return self.submit_query(self._last_query_text, limit=limit)

    # -- recommendations --------------------------------------------------------------------

    def recommendations(self, limit: int = 10) -> ResultList:
        """Shots recommended from the session's positive evidence alone.

        Useful on interfaces where querying is expensive (iTV): the system
        proposes material similar to what the user has engaged with, without
        requiring a new query.
        """
        evidence = self._accumulator.positive_evidence()
        if self._policy.use_explicit:
            for shot_id in self._explicit.relevant_shots():
                evidence[shot_id] = evidence.get(shot_id, 0.0) + 1.0
        if not evidence:
            return ResultList(query_text="recommendations", items=[])
        # Uncached on purpose: the evidence mapping here is rebuilt per call
        # (positive slice plus explicit bonuses), so memoising it would only
        # churn one-shot keys through the model's shared LRU and evict the
        # digest-keyed entries the search path reuses.
        model = self._system.feedback_model(self._policy)
        scores = model.rerank_scores_uncached(evidence)
        for shot_id in self._seen_shots:
            scores.pop(shot_id, None)
        return ResultList.from_scores(
            query_text="recommendations",
            scores=scores,
            collection=self._system.collection,
            limit=limit,
            topic_id=self._topic_id,
        )


class AdaptiveVideoRetrievalSystem:
    """Factory and shared state for adaptive search sessions.

    .. deprecated::
        Construct a :class:`repro.service.RetrievalService` instead, which
        builds and owns this system and adds typed requests, component
        registries and a bounded multi-user session pool.  Direct
        construction remains supported for the internals (``repro.service``
        itself, the experiment runner) and for backward compatibility.
    """

    def __init__(
        self,
        engine: VideoRetrievalEngine,
        ontology: Optional[InterestOntology] = None,
        combination: CombinationConfig = CombinationConfig(),
        profile_reranker: Optional[ProfileReranker] = None,
    ) -> None:
        self._engine = engine
        self._ontology = ontology or InterestOntology.default()
        self._combiner = EvidenceCombiner(combination)
        self._profile_reranker = profile_reranker or ProfileReranker(
            self._ontology, collection=engine.collection
        )
        self._feedback_models: Dict[str, ImplicitFeedbackModel] = {}
        self._feedback_models_lock = threading.Lock()
        self._shared_state: Optional[SharedAdaptationState] = None
        self._shared_state_lock = threading.Lock()

    # -- shared components -------------------------------------------------------------

    @property
    def engine(self) -> VideoRetrievalEngine:
        """The underlying (non-adaptive) retrieval engine."""
        return self._engine

    @property
    def collection(self) -> Collection:
        """The collection being searched."""
        return self._engine.collection

    @property
    def ontology(self) -> InterestOntology:
        """The interest ontology used for profile personalisation."""
        return self._ontology

    @property
    def combiner(self) -> EvidenceCombiner:
        """The profile/implicit evidence combiner."""
        return self._combiner

    @property
    def profile_reranker(self) -> ProfileReranker:
        """The profile personalisation component."""
        return self._profile_reranker

    @property
    def shared_state(self) -> SharedAdaptationState:
        """Corpus-derived immutables shared by every session (built once).

        One O(corpus) pass on first access; after that, handing the state
        to a new session is a reference copy, which is what keeps
        :meth:`create_session` O(1) under the service's LRU session churn.
        Thread-safe (double-checked under its own lock).
        """
        state = self._shared_state
        if state is None:
            with self._shared_state_lock:
                state = self._shared_state
                if state is None:
                    state = SharedAdaptationState.build(self._engine.collection)
                    self._shared_state = state
        return state

    def feedback_model(self, policy: AdaptationPolicy) -> ImplicitFeedbackModel:
        """The implicit feedback model configured for a policy (cached).

        Thread-safe: concurrent sessions running under the same policy
        share one model instance (the model itself is stateless per call).
        """
        key = f"{policy.expansion_terms}:{policy.visual_propagation}"
        model = self._feedback_models.get(key)
        if model is None:
            with self._feedback_models_lock:
                model = self._feedback_models.get(key)
                if model is None:
                    model = ImplicitFeedbackModel(
                        self._engine.inverted_index,
                        visual_index=self._engine.visual_index,
                        expansion_terms=policy.expansion_terms,
                        visual_propagation=policy.visual_propagation,
                    )
                    self._feedback_models[key] = model
        return model

    # -- sessions ---------------------------------------------------------------------------

    def create_session(
        self,
        profile: Optional[UserProfile] = None,
        policy: Optional[AdaptationPolicy] = None,
        scheme: Optional[WeightingScheme] = None,
        topic_id: Optional[str] = None,
        result_limit: int = 50,
        fast_path: bool = True,
    ) -> AdaptiveSession:
        """Start a new adaptive session for a user.

        With no profile and the default (baseline) policy the session
        behaves exactly like the plain retrieval engine, which is how the
        non-adaptive baselines of the experiments are run.
        ``fast_path=False`` selects the retained naive implementations
        (for equivalence testing and benchmarking); rankings are identical
        either way.
        """
        return AdaptiveSession(
            system=self,
            profile=profile or UserProfile(user_id="anonymous"),
            policy=policy or baseline_policy(),
            scheme=scheme,
            topic_id=topic_id,
            result_limit=result_limit,
            fast_path=fast_path,
        )
