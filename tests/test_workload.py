"""Tests for the deterministic multi-user workload harness (repro.workload).

Covers script generation (pure function of spec + topics), the load
driver's canonical event log (digest independent of thread count, byte-
identical across replays), and the ``repro loadtest`` CLI command.
"""

from __future__ import annotations

import io

import pytest

from repro.cli import main as cli_main
from repro.collection import save_corpus
from repro.service import RetrievalService
from repro.utils.rng import RandomSource
from repro.workload import (
    FEEDBACK,
    SEARCH,
    ServiceLoadDriver,
    WorkloadSpec,
    generate_workload,
)
from repro.workload.driver import _synthesise_feedback


@pytest.fixture()
def spec() -> WorkloadSpec:
    return WorkloadSpec(users=5, queries_per_user=2, seed=4242)


@pytest.fixture()
def factory(small_corpus):
    return lambda: RetrievalService.from_corpus(small_corpus)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(users=0)
        with pytest.raises(ValueError):
            WorkloadSpec(queries_per_user=0)
        with pytest.raises(ValueError):
            WorkloadSpec(feedback_top_k=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(policy="")

    def test_with_overrides(self, spec):
        assert spec.with_overrides(users=9).users == 9
        assert spec.with_overrides(users=9).seed == spec.seed


class TestGenerator:
    def test_scripts_are_pure_function_of_inputs(self, small_corpus, spec):
        first = generate_workload(spec, small_corpus.topics)
        second = generate_workload(spec, small_corpus.topics)
        assert [w.user_id for w in first] == [w.user_id for w in second]
        for a, b in zip(first, second):
            assert a.topic.topic_id == b.topic.topic_id
            assert [(s.kind, s.step, s.query) for s in a.steps] == [
                (s.kind, s.step, s.query) for s in b.steps
            ]

    def test_interleaving_and_counts(self, small_corpus, spec):
        workloads = generate_workload(spec, small_corpus.topics)
        assert len(workloads) == spec.users
        for workload in workloads:
            kinds = [step.kind for step in workload.steps]
            assert kinds == [SEARCH, FEEDBACK] * spec.queries_per_user
            assert workload.search_count == spec.queries_per_user
            for step in workload.steps:
                if step.kind == SEARCH:
                    assert step.query  # always a concrete query string

    def test_different_seeds_differ(self, small_corpus, spec):
        a = generate_workload(spec, small_corpus.topics)
        b = generate_workload(spec.with_overrides(seed=spec.seed + 1),
                              small_corpus.topics)
        # Populations are jittered per seed; at least the scripted queries
        # or topics must differ somewhere.
        assert [(w.topic.topic_id, [s.query for s in w.steps]) for w in a] != [
            (w.topic.topic_id, [s.query for s in w.steps]) for w in b
        ]


class TestFeedbackSynthesis:
    def test_deterministic_for_fixed_stream(self, factory, small_corpus, spec):
        service = factory()
        workloads = generate_workload(spec, small_corpus.topics)
        workload = workloads[0]
        info = service.open_session(workload.user_id, policy=workload.policy,
                                    topic_id=workload.topic.topic_id)
        from repro.service import SearchRequest

        response = service.search(
            SearchRequest(user_id=workload.user_id,
                          query=workload.steps[0].query,
                          session_id=info.session_id)
        )
        first = _synthesise_feedback(
            workload.user, response, RandomSource(1).spawn("f"),
            service.qrels, workload.topic.topic_id, 5,
        )
        second = _synthesise_feedback(
            workload.user, response, RandomSource(1).spawn("f"),
            service.qrels, workload.topic.topic_id, 5,
        )
        assert [(e.kind, e.shot_id, e.timestamp, e.duration) for e in first] == [
            (e.kind, e.shot_id, e.timestamp, e.duration) for e in second
        ]


@pytest.mark.concurrency
class TestDriver:
    def test_digest_independent_of_worker_count(self, factory, spec):
        sequential = ServiceLoadDriver(factory, max_workers=1).run(spec)
        parallel = ServiceLoadDriver(factory, max_workers=8).run(spec)
        assert sequential.canonical_log() == parallel.canonical_log()
        assert sequential.digest() == parallel.digest()

    def test_replay_verifies_determinism(self, factory, spec):
        driver = ServiceLoadDriver(factory, max_workers=6)
        digests = driver.verify_determinism(spec, runs=2)
        assert len(set(digests)) == 1

    def test_canonical_order_and_structure(self, factory, spec):
        result = ServiceLoadDriver(factory, max_workers=4).run(spec)
        keys = [(record["user"], record["seq"]) for record in result.records]
        assert keys == sorted(keys)
        # open + (search + feedback) * queries + close, per user.
        per_user = 2 * spec.queries_per_user + 2
        assert len(result.records) == spec.users * per_user
        assert result.request_count == spec.users * (2 * spec.queries_per_user + 1)
        actions = {record["action"] for record in result.records}
        assert actions == {"open", "search", "feedback", "close"}
        searches = [r for r in result.records if r["action"] == "search"]
        assert all(record["results"] > 0 for record in searches)
        assert result.throughput_rps > 0

    def test_write_log_round_trip(self, factory, spec, tmp_path):
        driver = ServiceLoadDriver(factory, max_workers=3)
        first = driver.run(spec).write_log(tmp_path / "a" / "run.jsonl")
        second = driver.run(spec).write_log(tmp_path / "b" / "run.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_sessions_closed_after_run(self, factory, spec):
        service_holder = []

        def counting_factory():
            service = factory()
            service_holder.append(service)
            return service

        ServiceLoadDriver(counting_factory, max_workers=4).run(spec)
        assert service_holder[0].session_count == 0

    def test_open_sessions_kept_when_requested(self, factory, spec):
        service_holder = []

        def counting_factory():
            service = factory()
            service_holder.append(service)
            return service

        ServiceLoadDriver(counting_factory, max_workers=4).run(
            spec.with_overrides(close_sessions=False)
        )
        assert service_holder[0].session_count == spec.users


@pytest.mark.concurrency
class TestLoadtestCli:
    @pytest.fixture()
    def corpus_dir(self, small_corpus, tmp_path):
        directory = tmp_path / "corpus"
        save_corpus(small_corpus, directory)
        return str(directory)

    def test_loadtest_twice_byte_identical_logs(self, corpus_dir, tmp_path):
        logs = [tmp_path / "run1.jsonl", tmp_path / "run2.jsonl"]
        for log in logs:
            out = io.StringIO()
            code = cli_main(
                ["loadtest", "--corpus", corpus_dir, "--users", "4",
                 "--queries", "2", "--workers", "6", "--seed", "7",
                 "--log", str(log)],
                out=out,
            )
            assert code == 0
            assert "canonical log digest:" in out.getvalue()
        assert logs[0].read_bytes() == logs[1].read_bytes()

    def test_loadtest_verify_flag(self, corpus_dir):
        out = io.StringIO()
        code = cli_main(
            ["loadtest", "--corpus", corpus_dir, "--users", "3",
             "--queries", "1", "--workers", "4", "--seed", "11", "--verify"],
            out=out,
        )
        assert code == 0
        assert "deterministic" in out.getvalue()

    def test_loadtest_rejects_unknown_policy(self, corpus_dir):
        code = cli_main(
            ["loadtest", "--corpus", corpus_dir, "--policy", "telepathy"],
            out=io.StringIO(),
        )
        assert code == 2

    def test_loadtest_rejects_non_positive_shards(self, corpus_dir):
        code = cli_main(
            ["loadtest", "--corpus", corpus_dir, "--shards", "0"],
            out=io.StringIO(),
        )
        assert code == 2


@pytest.mark.shard
class TestShardedWorkloadEquivalence:
    """Replaying one workload script sharded vs unsharded is byte-identical.

    The canonical event log records query texts, iteration counts, feedback
    event kinds and the top ranked ``(shot_id, score)`` pairs — so digest
    equality means the sharded scatter-gather serving path reproduced every
    adapted ranking of the single-engine path bit for bit, across the whole
    search/feedback/close lifecycle.
    """

    def test_sharded_and_unsharded_digests_identical(self, small_corpus, spec):
        from repro.service import ServiceConfig
        from repro.workload import generate_workload

        # One pre-generated script replayed against both services, so any
        # divergence is attributable to the serving path alone.
        workloads = generate_workload(spec, small_corpus.topics)
        baseline = ServiceLoadDriver(
            lambda: RetrievalService.from_corpus(small_corpus), max_workers=4
        ).run(spec, workloads)
        sharded = ServiceLoadDriver(
            lambda: RetrievalService.from_corpus(
                small_corpus, config=ServiceConfig(num_shards=3)
            ),
            max_workers=4,
        ).run(spec, workloads)
        assert baseline.canonical_log() == sharded.canonical_log()
        assert baseline.digest() == sharded.digest()

    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_sharded_loadtest_cli_digest_matches_unsharded(
        self, small_corpus, tmp_path, num_shards
    ):
        from repro.collection import save_corpus

        directory = tmp_path / "corpus"
        save_corpus(small_corpus, directory)
        logs = {}
        for shards in (1, num_shards):
            log = tmp_path / f"shards{shards}.jsonl"
            out = io.StringIO()
            code = cli_main(
                ["loadtest", "--corpus", str(directory), "--users", "4",
                 "--queries", "2", "--workers", "4", "--seed", "7",
                 "--shards", str(shards), "--log", str(log)],
                out=out,
            )
            assert code == 0
            logs[shards] = log.read_bytes()
        assert logs[1] == logs[num_shards]


class TestContinuousMix:
    @staticmethod
    def _spec(**overrides):
        from repro.workload import ContinuousMixSpec

        base = dict(
            epochs=4,
            mutations_per_epoch=6,
            searches_per_epoch=4,
            feedback_per_epoch=1,
            compact_every=2,
            search_workers=2,
            seed=7,
        )
        base.update(overrides)
        return ContinuousMixSpec(**base)

    def test_spec_validation(self):
        from repro.workload import ContinuousMixSpec

        with pytest.raises(ValueError):
            ContinuousMixSpec(epochs=0)
        with pytest.raises(ValueError):
            ContinuousMixSpec(delete_ratio=1.2)
        with pytest.raises(ValueError):
            ContinuousMixSpec(delete_ratio=0.6, update_ratio=0.6)
        with pytest.raises(ValueError):
            ContinuousMixSpec(searches_per_epoch=-1)

    def test_log_independent_of_search_workers(self, small_corpus, factory):
        from repro.workload import run_continuous_mix

        logs = []
        for workers in (1, 4):
            service = factory()
            try:
                result = run_continuous_mix(
                    service, self._spec(search_workers=workers)
                )
                logs.append(result.canonical_log())
            finally:
                service.close()
        assert logs[0] == logs[1]

    def test_sharded_matches_monolithic(self, small_corpus):
        from repro.service import ServiceConfig
        from repro.workload import run_continuous_mix

        results = []
        for num_shards in (1, 3):
            service = RetrievalService(
                small_corpus.collection,
                config=ServiceConfig(num_shards=num_shards, result_cache_size=0),
            )
            try:
                results.append(run_continuous_mix(service, self._spec()))
            finally:
                service.close()
        assert results[0].canonical_log() == results[1].canonical_log()
        assert results[0].state_digest == results[1].state_digest

    def test_counts_cover_every_op_family(self, factory):
        from repro.workload import run_continuous_mix

        service = factory()
        try:
            result = run_continuous_mix(
                service, self._spec(epochs=6, mutations_per_epoch=10)
            )
        finally:
            service.close()
        counts = result.counts
        assert counts["ingest-doc"] > 0 and counts["ingest-shot"] > 0
        assert counts["del-doc"] + counts["del-shot"] > 0
        assert counts["upd"] > 0
        assert counts["search"] == 6 * self._spec().searches_per_epoch
        assert counts["feedback"] > 0
        assert counts["compact"] == 3
        assert counts["reclaimed"] > 0
        assert not result.stopped_early
        # Every record family shows up in the canonical log, and the log
        # digest is reproducible from the lines.
        ops = {record["op"] for record in result.records}
        assert {"ingest-doc", "search", "compact"} <= ops
        assert result.canonical_lines()[-1] == (
            '{"state_digest":"%s"}' % result.state_digest
        )

    def test_stop_lsn_requires_durable_service(self, factory):
        from repro.workload import run_continuous_mix

        service = factory()
        try:
            with pytest.raises(ValueError):
                run_continuous_mix(service, self._spec(), stop_lsn=5)
            with pytest.raises(ValueError):
                run_continuous_mix(service, self._spec(), stop_lsn=-1)
        finally:
            service.close()

    @pytest.mark.durability
    def test_durable_mix_recovers_to_final_digest(self, small_corpus, tmp_path):
        from repro.durability import RecoveryManager
        from repro.service import ServiceConfig
        from repro.workload import run_continuous_mix

        config = ServiceConfig(
            durability_dir=str(tmp_path / "d"),
            snapshot_interval_ops=8,
            fsync_policy="never",
            result_cache_size=0,
        )
        service = RetrievalService(small_corpus.collection, config=config)
        try:
            result = run_continuous_mix(service, self._spec())
        finally:
            service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == result.state_digest

    @pytest.mark.durability
    def test_stop_lsn_prefix_matches_point_in_time_recovery(
        self, small_corpus, tmp_path
    ):
        # The SIGKILL oracle's clean-prefix arm: a run stopped at LSN L
        # must land on the same digest PITR recovers at cut L from the
        # full run's log.
        from repro.durability import RecoveryManager
        from repro.service import ServiceConfig
        from repro.workload import run_continuous_mix

        def _config(directory, interval):
            return ServiceConfig(
                durability_dir=str(directory),
                snapshot_interval_ops=interval,
                fsync_policy="never",
                result_cache_size=0,
            )

        # Full run keeps its whole WAL (no post-bootstrap checkpoints) so
        # every early cut stays feasible for point-in-time recovery.
        full = RetrievalService(
            small_corpus.collection, config=_config(tmp_path / "full", 10_000)
        )
        try:
            run_continuous_mix(full, self._spec())
            cut = full.engine.durability.wal.last_lsn // 2
        finally:
            full.close()
        prefix = RetrievalService(
            small_corpus.collection, config=_config(tmp_path / "prefix", 6)
        )
        try:
            stopped = run_continuous_mix(prefix, self._spec(), stop_lsn=cut)
            assert stopped.stopped_early
            assert prefix.engine.durability.wal.last_lsn == cut
        finally:
            prefix.close()
        state = RecoveryManager(tmp_path / "full", stop_lsn=cut).recover()
        assert state.state_digest() == stopped.state_digest
