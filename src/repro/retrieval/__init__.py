"""Video retrieval engine: queries, results, expansion, re-ranking."""

from repro.retrieval.engine import EngineConfig, VideoRetrievalEngine
from repro.retrieval.expansion import RocchioExpander, extract_key_terms
from repro.retrieval.query import Query
from repro.retrieval.reranking import (
    demote_seen_shots,
    rerank_with_scores,
    story_scores_from_shots,
)
from repro.retrieval.results import ResultItem, ResultList, merge_result_lists

__all__ = [
    "EngineConfig",
    "VideoRetrievalEngine",
    "RocchioExpander",
    "extract_key_terms",
    "Query",
    "demote_seen_shots",
    "rerank_with_scores",
    "story_scores_from_shots",
    "ResultItem",
    "ResultList",
    "merge_result_lists",
]
