"""Sharded scatter-gather retrieval: partitioned indexes, exact merges.

The sharding layer scales the read-mostly serving substrate across N
hash-partitioned shards while guaranteeing rankings bit-identical to the
monolithic engine: per-shard scorers rank with global collection statistics
(:class:`GlobalStatsView` over :class:`GlobalTextStats`), gathered partial
results merge *before* fusion, and writes route to the owning shard under
the engine's exclusive-writer discipline.  Select it through
``ServiceConfig(num_shards=N)`` or ``repro loadtest --shards N``;
``num_shards=1`` keeps today's single-engine path, byte for byte.
"""

from repro.sharding.engine import (
    ShardedEngine,
    ShardedTextScorer,
    ShardScorerFactory,
)
from repro.sharding.global_stats import GlobalStatsView, GlobalTextStats
from repro.sharding.router import ShardRouter
from repro.sharding.views import ShardedInvertedIndex, ShardedVisualIndex

__all__ = [
    "GlobalStatsView",
    "GlobalTextStats",
    "ShardRouter",
    "ShardScorerFactory",
    "ShardedEngine",
    "ShardedInvertedIndex",
    "ShardedTextScorer",
    "ShardedVisualIndex",
]
