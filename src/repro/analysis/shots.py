"""Shot-boundary detection over a simulated frame-difference signal.

TRECVID systems segment video into shots before anything else.  The
collection generator already knows the true shot structure; this module
closes the loop by synthesising the *frame-difference signal* a real
detector would compute (small differences within a shot, a spike at each
cut, occasional gradual transitions) and then detecting boundaries from that
signal alone.  The detector's precision/recall against the known structure
is reported by the analysis benchmarks, mirroring the shot-boundary task
that precedes every TRECVID search run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.collection.documents import Collection
from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class FrameDifferenceSignal:
    """A per-frame difference signal for one video plus its ground truth."""

    video_id: str
    frame_rate: float
    differences: Tuple[float, ...]
    true_boundaries: Tuple[int, ...]

    @property
    def frame_count(self) -> int:
        """Number of frames in the signal."""
        return len(self.differences)


class FrameSignalSynthesiser:
    """Produces frame-difference signals consistent with a collection's shots."""

    def __init__(
        self,
        frame_rate: float = 5.0,
        within_shot_level: float = 0.08,
        cut_level: float = 0.85,
        noise_sigma: float = 0.04,
        gradual_transition_probability: float = 0.15,
        seed: int = 311,
    ) -> None:
        ensure_positive(frame_rate, "frame_rate")
        self._frame_rate = frame_rate
        self._within = within_shot_level
        self._cut = cut_level
        self._noise = noise_sigma
        self._gradual_probability = gradual_transition_probability
        self._seed = int(seed)

    def synthesise(self, collection: Collection, video_id: str) -> FrameDifferenceSignal:
        """Build the frame-difference signal for one bulletin."""
        rng = RandomSource(self._seed).spawn("frames", video_id)
        shots = collection.shots_of_video(video_id)
        differences: List[float] = []
        boundaries: List[int] = []
        for shot_index, shot in enumerate(shots):
            frame_count = max(2, int(round(shot.duration * self._frame_rate)))
            if shot_index > 0:
                boundaries.append(len(differences))
                if rng.boolean(self._gradual_probability):
                    # A gradual transition: elevated but sub-cut differences
                    # over a few frames.
                    for step in range(3):
                        level = self._cut * (0.45 + 0.1 * step)
                        differences.append(max(0.0, level + rng.gauss(0.0, self._noise)))
                else:
                    differences.append(max(0.0, self._cut + rng.gauss(0.0, self._noise)))
            for _ in range(frame_count):
                differences.append(max(0.0, self._within + rng.gauss(0.0, self._noise)))
        return FrameDifferenceSignal(
            video_id=video_id,
            frame_rate=self._frame_rate,
            differences=tuple(differences),
            true_boundaries=tuple(boundaries),
        )


@dataclass(frozen=True)
class ShotBoundaryResult:
    """Detected boundaries plus evaluation against the ground truth."""

    video_id: str
    detected: Tuple[int, ...]
    true_boundaries: Tuple[int, ...]
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


class ShotBoundaryDetector:
    """Adaptive-threshold shot boundary detector.

    A frame is declared a boundary when its difference value exceeds
    ``threshold_factor`` times the local mean difference within a sliding
    window, subject to a minimum absolute threshold.  This is the classic
    twin-comparison style heuristic used before learned detectors existed.
    """

    def __init__(
        self,
        threshold_factor: float = 3.0,
        minimum_difference: float = 0.3,
        window: int = 12,
        merge_distance: int = 3,
    ) -> None:
        ensure_positive(threshold_factor, "threshold_factor")
        ensure_positive(window, "window")
        self._factor = threshold_factor
        self._minimum = minimum_difference
        self._window = window
        self._merge_distance = merge_distance

    def detect(self, signal: FrameDifferenceSignal) -> List[int]:
        """Return detected boundary frame indices."""
        differences = signal.differences
        detected: List[int] = []
        for index, value in enumerate(differences):
            start = max(0, index - self._window)
            end = min(len(differences), index + self._window + 1)
            neighbourhood = [
                differences[i] for i in range(start, end) if i != index
            ]
            local_mean = sum(neighbourhood) / max(1, len(neighbourhood))
            threshold = max(self._minimum, self._factor * local_mean)
            if value >= threshold:
                if detected and index - detected[-1] <= self._merge_distance:
                    continue
                detected.append(index)
        return detected

    def evaluate(
        self, signal: FrameDifferenceSignal, tolerance: int = 3
    ) -> ShotBoundaryResult:
        """Detect boundaries and score them against the ground truth.

        A detection is correct if it falls within ``tolerance`` frames of a
        true boundary; each true boundary can be matched at most once.
        """
        detected = self.detect(signal)
        unmatched_truth = list(signal.true_boundaries)
        true_positives = 0
        for boundary in detected:
            match = None
            for truth in unmatched_truth:
                if abs(truth - boundary) <= tolerance:
                    match = truth
                    break
            if match is not None:
                unmatched_truth.remove(match)
                true_positives += 1
        precision = true_positives / len(detected) if detected else 0.0
        recall = (
            true_positives / len(signal.true_boundaries)
            if signal.true_boundaries
            else 1.0
        )
        return ShotBoundaryResult(
            video_id=signal.video_id,
            detected=tuple(detected),
            true_boundaries=signal.true_boundaries,
            precision=precision,
            recall=recall,
        )


def evaluate_collection_segmentation(
    collection: Collection,
    synthesiser: FrameSignalSynthesiser = None,
    detector: ShotBoundaryDetector = None,
) -> List[ShotBoundaryResult]:
    """Run shot-boundary detection over every bulletin in a collection."""
    synthesiser = synthesiser or FrameSignalSynthesiser()
    detector = detector or ShotBoundaryDetector()
    results = []
    for video in collection.videos():
        signal = synthesiser.synthesise(collection, video.video_id)
        results.append(detector.evaluate(signal))
    return results
