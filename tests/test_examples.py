"""Smoke tests for the example scripts.

Each example is executed in-process (via ``runpy``) and its stdout checked
for the landmarks a reader is supposed to see.  The slow full user-study
example is exercised with a temporary output directory.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys, argv=None) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example script {script}"
    old_argv = sys.argv
    sys.argv = [str(script)] + list(argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart_shows_adaptation(self, capsys):
        output = _run_example("quickstart.py", capsys)
        assert "initial ranking" in output
        assert "adapted ranking" in output
        assert "AP = " in output

    def test_itv_session_compares_interfaces(self, capsys):
        output = _run_example("itv_session.py", capsys)
        assert "--- desktop session ---" in output
        assert "--- iTV (remote control) session ---" in output
        assert "more implicit feedback" in output

    def test_news_recommendation_prints_rundowns(self, capsys):
        output = _run_example("news_recommendation.py", capsys)
        assert "personalised rundown for sports_fan" in output
        assert "story segmentation F1" in output

    @pytest.mark.slow
    def test_simulated_user_study(self, capsys, tmp_path):
        output = _run_example("simulated_user_study.py", capsys, argv=[str(tmp_path)])
        assert "system comparison" in output
        assert "indicator" in output
        assert "combined" in output
