"""Ostensive evidence weighting (Campbell & van Rijsbergen).

The ostensive model holds that evidence from the user's recent behaviour
should count for more than older evidence, because "the users' information
need can change within different retrieval sessions and sometimes even
within the same session".  This module provides the discount profiles used
by the adaptive model's evidence accumulation: given how many query
iterations ago a piece of evidence was observed, return its discount factor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.utils.validation import ensure_in_range, ensure_positive

#: Discount profile names accepted by :func:`make_discount`.
DISCOUNT_PROFILES = ("uniform", "exponential", "reciprocal", "linear")


def uniform_discount(age: int) -> float:
    """No discounting: every iteration counts the same (the static model)."""
    if age < 0:
        raise ValueError("age must be non-negative")
    return 1.0


def exponential_discount(age: int, base: float = 0.7) -> float:
    """Exponential decay with the given base per iteration of age."""
    if age < 0:
        raise ValueError("age must be non-negative")
    ensure_in_range(base, 0.0, 1.0, "base")
    return base ** age

def reciprocal_discount(age: int) -> float:
    """Reciprocal decay: 1, 1/2, 1/3, ... (Campbell's original proposal)."""
    if age < 0:
        raise ValueError("age must be non-negative")
    return 1.0 / (age + 1)


def linear_discount(age: int, horizon: int = 6) -> float:
    """Linear decay hitting zero after ``horizon`` iterations."""
    if age < 0:
        raise ValueError("age must be non-negative")
    ensure_positive(horizon, "horizon")
    return max(0.0, 1.0 - age / horizon)


def make_discount(profile: str, **kwargs: float) -> Callable[[int], float]:
    """Build a discount function by name.

    ``profile`` is one of :data:`DISCOUNT_PROFILES`; keyword arguments are
    forwarded to the underlying function (``base`` for exponential,
    ``horizon`` for linear).
    """
    if profile == "uniform":
        return uniform_discount
    if profile == "exponential":
        base = float(kwargs.get("base", 0.7))
        return lambda age: exponential_discount(age, base=base)
    if profile == "reciprocal":
        return reciprocal_discount
    if profile == "linear":
        horizon = int(kwargs.get("horizon", 6))
        return lambda age: linear_discount(age, horizon=horizon)
    raise ValueError(
        f"unknown discount profile {profile!r}; expected one of {DISCOUNT_PROFILES}"
    )


class OstensiveAccumulator:
    """Accumulates per-item evidence with iteration-age discounting.

    Unlike :class:`repro.feedback.accumulator.EvidenceAccumulator`, which
    decays its running total in place, this accumulator remembers *when*
    each piece of evidence arrived, so different discount profiles can be
    compared on exactly the same observation history (the E7 ablation).

    Maintenance is **incremental** when the accumulator is built with
    :meth:`for_profile`:

    * ``uniform`` and ``exponential`` keep a *running* total — observing an
      iteration costs O(delta) (plus, for exponential, one in-place decay
      sweep of the running total), and reading the weighted evidence is a
      dictionary copy.  The exponential running total is the left fold
      ``total = base * total + delta`` — the exact fold
      :class:`~repro.feedback.accumulator.EvidenceAccumulator` applies live
      in a session — so :meth:`weighted_evidence_reference` recomputes the
      same fold from the retained history rather than summing
      ``base ** age`` factor terms (the two differ in the last ulp).
    * ``reciprocal`` and ``linear`` cannot fold into one total (every new
      iteration re-weights all previous ages), so the history is kept as
      per-age partial sums — each entry is the aggregated evidence of one
      iteration — and the weighted combination is computed *lazily*: it is
      cached until the next iteration arrives, so any number of reads
      between observations costs one dictionary copy.  The linear profile
      additionally touches only the ``horizon`` newest iterations (older
      ages have factor 0), making the recompute O(horizon × items).

    An accumulator built directly from a ``discount`` callable keeps the
    original factor-based computation (with the same lazy cache), so custom
    discount functions behave exactly as before.
    """

    def __init__(
        self,
        discount: Optional[Callable[[int], float]] = None,
        profile: Optional[str] = None,
        base: float = 0.7,
        horizon: int = 6,
        retain_history: bool = True,
    ) -> None:
        if discount is None and profile is None:
            raise ValueError("provide a discount callable or a profile name")
        if profile is not None:
            if profile not in DISCOUNT_PROFILES:
                raise ValueError(
                    f"unknown discount profile {profile!r}; "
                    f"expected one of {DISCOUNT_PROFILES}"
                )
            if discount is not None:
                raise ValueError("pass either discount or profile, not both")
            discount = make_discount(profile, base=base, horizon=horizon)
        self.discount = discount
        self._profile = profile
        self._base = base
        self._horizon = horizon
        # ``retain_history=False`` (serving sessions) keeps memory bounded:
        # foldable profiles drop the history entirely (the running total is
        # the whole state) and the linear profile keeps only the ``horizon``
        # newest iterations (older ages carry factor 0).  The reciprocal
        # profile needs every age either way.  With history dropped,
        # :meth:`weighted_evidence_reference` is unavailable.
        self._retain_history = retain_history or profile not in (
            "uniform", "exponential", "linear"
        )
        self._trim_history = not retain_history and profile == "linear"
        self._history: List[Dict[str, float]] = []
        self._iterations = 0
        # Running total for the foldable profiles (uniform / exponential).
        self._running: Dict[str, float] = {}
        # Lazy combination cache for the factor-based profiles.
        self._lazy_cache: Optional[Dict[str, float]] = None
        # Per-age discount factors, extended on demand (pure function of age).
        self._factors: List[float] = []

    @classmethod
    def for_profile(
        cls,
        profile: str,
        base: float = 0.7,
        horizon: int = 6,
        retain_history: bool = True,
    ) -> "OstensiveAccumulator":
        """Build an accumulator with the incremental fast path for a named
        discount profile (one of :data:`DISCOUNT_PROFILES`)."""
        return cls(
            profile=profile, base=base, horizon=horizon, retain_history=retain_history
        )

    @property
    def profile(self) -> Optional[str]:
        """The discount profile name, when built with :meth:`for_profile`."""
        return self._profile

    def observe_iteration(self, evidence: Mapping[str, float]) -> None:
        """Record one query iteration's worth of per-item evidence."""
        self._iterations += 1
        if self._profile == "uniform":
            running = self._running
            for item_id, mass in evidence.items():
                running[item_id] = running.get(item_id, 0.0) + mass
            if self._retain_history:
                self._history.append(dict(evidence))
        elif self._profile == "exponential":
            running = self._running
            base = self._base
            for item_id in running:
                running[item_id] *= base
            for item_id, mass in evidence.items():
                running[item_id] = running.get(item_id, 0.0) + mass
            if self._retain_history:
                self._history.append(dict(evidence))
        else:
            self._lazy_cache = None
            self._history.append(dict(evidence))
            if self._trim_history and len(self._history) > self._horizon:
                # Ages beyond the linear horizon carry factor 0 forever, so
                # the oldest entries can never influence a read again.
                del self._history[0 : len(self._history) - self._horizon]

    @property
    def iteration_count(self) -> int:
        """Number of iterations observed."""
        return self._iterations

    def _factor(self, age: int) -> float:
        factors = self._factors
        while len(factors) <= age:
            factors.append(self.discount(len(factors)))
        return factors[age]

    def _combine_factored(self) -> Dict[str, float]:
        """Factor-based combination over the (windowed) history."""
        combined: Dict[str, float] = {}
        history = self._history
        latest = len(history) - 1
        start = 0
        if self._profile == "linear":
            # Ages >= horizon carry factor 0 and are skipped by the factor
            # guard anyway; not visiting them keeps the recompute O(horizon).
            start = max(0, len(history) - self._horizon)
        for index in range(start, len(history)):
            factor = self._factor(latest - index)
            if factor <= 0:
                continue
            for item_id, mass in history[index].items():
                combined[item_id] = combined.get(item_id, 0.0) + factor * mass
        return combined

    def weighted_evidence(self) -> Dict[str, float]:
        """Combined evidence with the discount applied by iteration age.

        The most recent iteration has age 0, the one before it age 1, etc.
        Incremental for ``uniform``/``exponential``; lazily cached between
        iterations otherwise.
        """
        return dict(self.weighted_evidence_view())

    def weighted_evidence_view(self) -> Mapping[str, float]:
        """The combined evidence **without copying** (treat as read-only).

        The returned mapping is the accumulator's own running total (or its
        lazy cache) and is only valid until the next
        :meth:`observe_iteration`.  Hot paths that read the evidence once
        per query use this to avoid a per-read dictionary copy.
        """
        if self._profile in ("uniform", "exponential"):
            return self._running
        if self._lazy_cache is None:
            self._lazy_cache = self._combine_factored()
        return self._lazy_cache

    def weighted_evidence_reference(self) -> Dict[str, float]:
        """Full recompute from the retained history (the reference path).

        Performs no incremental bookkeeping: every read walks the whole
        history, exactly as the accumulator did before the fast path
        existed.  The equivalence tests pin :meth:`weighted_evidence`
        bit-identical to this.  For the exponential profile the recompute
        replays the running left fold (see the class docstring); for every
        other configuration it is the original factor-sum loop.

        Unavailable when the accumulator was built with
        ``retain_history=False`` and a foldable profile (the history was
        dropped to bound serving-session memory).
        """
        if not self._retain_history and self._profile in ("uniform", "exponential"):
            raise RuntimeError(
                "history was not retained (retain_history=False); the "
                "reference recompute is unavailable"
            )
        if self._profile == "uniform":
            combined: Dict[str, float] = {}
            for iteration_evidence in self._history:
                for item_id, mass in iteration_evidence.items():
                    combined[item_id] = combined.get(item_id, 0.0) + mass
            return combined
        if self._profile == "exponential":
            combined = {}
            base = self._base
            for iteration_evidence in self._history:
                for item_id in combined:
                    combined[item_id] *= base
                for item_id, mass in iteration_evidence.items():
                    combined[item_id] = combined.get(item_id, 0.0) + mass
            return combined
        combined = {}
        latest = len(self._history) - 1
        for index, iteration_evidence in enumerate(self._history):
            age = latest - index
            factor = self.discount(age)
            if factor <= 0:
                continue
            for item_id, mass in iteration_evidence.items():
                combined[item_id] = combined.get(item_id, 0.0) + factor * mass
        return combined

    def reset(self) -> None:
        """Forget all observed iterations."""
        self._history.clear()
        self._running.clear()
        self._lazy_cache = None
        self._iterations = 0


def compare_profiles(
    history: Sequence[Mapping[str, float]], profiles: Sequence[str] = DISCOUNT_PROFILES
) -> Dict[str, Dict[str, float]]:
    """Apply several discount profiles to the same observation history.

    Returns ``{profile_name: weighted_evidence}``; used by the ostensive
    ablation bench to show how the profiles react to an interest shift.
    Runs on the incremental fast paths of :meth:`OstensiveAccumulator.
    for_profile`.
    """
    results: Dict[str, Dict[str, float]] = {}
    for profile in profiles:
        accumulator = OstensiveAccumulator.for_profile(profile)
        for iteration_evidence in history:
            accumulator.observe_iteration(iteration_evidence)
        results[profile] = accumulator.weighted_evidence()
    return results
