"""Synthetic vocabulary and per-category language models.

The TRECVID collections used by the paper consist of broadcast news with
automatic speech recognition (ASR) transcripts.  We replace the real
transcripts with text sampled from *category language models*: each news
category (politics, sports, weather, ...) owns a set of characteristic terms,
and every document mixes its category model with a shared background model.
This preserves the statistical structure text retrieval relies on —
discriminative terms cluster by topic, common terms appear everywhere —
without needing the original data.

Terms are pronounceable pseudo-words generated deterministically from a seed,
so collections are reproducible and no real-world text is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_non_empty, ensure_positive, ensure_probability

#: News categories used throughout the library.  They double as the concept
#: ontology roots for static user profiles (see :mod:`repro.profiles.ontology`).
DEFAULT_CATEGORIES: Tuple[str, ...] = (
    "politics",
    "sports",
    "business",
    "science",
    "technology",
    "health",
    "weather",
    "entertainment",
    "crime",
    "world",
)

#: Function words removed by the tokenizer and mixed into every transcript to
#: mimic the high-frequency, low-information portion of real ASR output.
STOPWORDS: Tuple[str, ...] = (
    "the", "a", "an", "and", "or", "but", "if", "then", "of", "to", "in",
    "on", "at", "by", "for", "with", "about", "against", "between", "into",
    "through", "during", "before", "after", "above", "below", "from", "up",
    "down", "out", "off", "over", "under", "again", "further", "once", "here",
    "there", "when", "where", "why", "how", "all", "any", "both", "each",
    "few", "more", "most", "other", "some", "such", "no", "nor", "not",
    "only", "own", "same", "so", "than", "too", "very", "can", "will",
    "just", "should", "now", "is", "are", "was", "were", "be", "been",
    "being", "have", "has", "had", "do", "does", "did", "it", "its", "this",
    "that", "these", "those", "he", "she", "they", "we", "you", "i",
)

_ONSETS = (
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh", "sl", "st",
    "t", "th", "tr", "v", "w",
)
_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou")
_CODAS = ("", "b", "d", "g", "k", "l", "m", "n", "nd", "ng", "r", "s", "st", "t", "x")


def _pseudo_word(rng: RandomSource, syllables: int) -> str:
    """Build a pronounceable pseudo-word with the given number of syllables."""
    parts: List[str] = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS))
        parts.append(rng.choice(_NUCLEI))
        parts.append(rng.choice(_CODAS))
    return "".join(parts)


def generate_term_set(rng: RandomSource, size: int, min_syllables: int = 2,
                      max_syllables: int = 3) -> List[str]:
    """Generate ``size`` distinct pseudo-words.

    Collisions are resolved by re-drawing, and the output order is the draw
    order (so earlier terms can be treated as "more central" to a category).
    """
    ensure_positive(size, "size")
    seen = set(STOPWORDS)
    terms: List[str] = []
    attempts = 0
    while len(terms) < size:
        attempts += 1
        if attempts > size * 200:
            raise RuntimeError("could not generate enough distinct pseudo-words")
        word = _pseudo_word(rng, rng.randint(min_syllables, max_syllables))
        if word in seen:
            continue
        seen.add(word)
        terms.append(word)
    return terms


@dataclass
class CategoryLanguageModel:
    """A unigram language model for one news category.

    Attributes
    ----------
    category:
        Category name (e.g. ``"politics"``).
    terms:
        Category-specific terms, ordered from most to least central.
    probabilities:
        Zipf-shaped sampling probabilities aligned with ``terms``.
    """

    category: str
    terms: List[str]
    probabilities: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        ensure_non_empty(self.terms, "terms")
        if not self.probabilities:
            weights = [1.0 / (rank + 1) for rank in range(len(self.terms))]
            total = sum(weights)
            self.probabilities = [weight / total for weight in weights]
        if len(self.probabilities) != len(self.terms):
            raise ValueError("probabilities must align with terms")

    def sample(self, rng: RandomSource, count: int) -> List[str]:
        """Sample ``count`` terms with replacement according to the model."""
        if count <= 0:
            return []
        return rng.choices(self.terms, weights=self.probabilities, k=count)

    def top_terms(self, count: int) -> List[str]:
        """The ``count`` most central terms of the category."""
        return self.terms[:count]

    def probability(self, term: str) -> float:
        """Unigram probability of ``term`` under this model (0 if unknown)."""
        try:
            index = self.terms.index(term)
        except ValueError:
            return 0.0
        return self.probabilities[index]


@dataclass
class Vocabulary:
    """The full synthetic vocabulary: background model plus category models."""

    background: CategoryLanguageModel
    categories: Dict[str, CategoryLanguageModel]

    @property
    def category_names(self) -> List[str]:
        """Sorted list of category names."""
        return sorted(self.categories)

    def model_for(self, category: str) -> CategoryLanguageModel:
        """Return the language model for ``category``.

        Raises
        ------
        KeyError
            If the category is unknown.
        """
        if category not in self.categories:
            raise KeyError(f"unknown category {category!r}; known: {self.category_names}")
        return self.categories[category]

    def all_terms(self) -> List[str]:
        """Every term in the vocabulary (background first, then categories)."""
        terms = list(self.background.terms)
        for name in self.category_names:
            terms.extend(self.categories[name].terms)
        return terms

    def sample_mixture(
        self,
        rng: RandomSource,
        category: str,
        count: int,
        category_weight: float = 0.5,
        extra_terms: Sequence[str] = (),
        extra_weight: float = 0.0,
    ) -> List[str]:
        """Sample ``count`` terms from a mixture of models.

        The mixture is ``extra_weight`` on the uniform model over
        ``extra_terms`` (topic-specific terms), ``category_weight`` on the
        category model and the remainder on the background model.  This is
        the generative process behind every synthetic transcript.
        """
        ensure_probability(category_weight, "category_weight")
        ensure_probability(extra_weight, "extra_weight")
        if category_weight + extra_weight > 1.0:
            raise ValueError("category_weight + extra_weight must not exceed 1.0")
        model = self.model_for(category)
        words: List[str] = []
        for _ in range(max(count, 0)):
            draw = rng.random()
            if extra_terms and draw < extra_weight:
                words.append(rng.choice(list(extra_terms)))
            elif draw < extra_weight + category_weight:
                words.extend(model.sample(rng, 1))
            else:
                words.extend(self.background.sample(rng, 1))
        return words


def build_vocabulary(
    rng: RandomSource,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    terms_per_category: int = 120,
    background_terms: int = 400,
) -> Vocabulary:
    """Build a complete synthetic vocabulary.

    Parameters
    ----------
    rng:
        Random source; pass ``RandomSource(seed).spawn("vocabulary")``.
    categories:
        Category names; each receives its own disjoint term set.
    terms_per_category:
        Number of category-specific terms per category.
    background_terms:
        Number of shared background (non-stopword) terms; stopwords are
        appended to the background model with boosted probability.
    """
    ensure_non_empty(list(categories), "categories")
    background_vocab = generate_term_set(rng.spawn("background"), background_terms)
    # Stopwords get a heavy head so they dominate raw term frequencies as in
    # real ASR transcripts.
    background_all = list(STOPWORDS) + background_vocab
    weights = [4.0 / (rank + 1) for rank in range(len(STOPWORDS))]
    weights += [1.0 / (rank + 1) for rank in range(len(background_vocab))]
    total = sum(weights)
    background_model = CategoryLanguageModel(
        category="__background__",
        terms=background_all,
        probabilities=[weight / total for weight in weights],
    )

    used = set(background_all)
    category_models: Dict[str, CategoryLanguageModel] = {}
    for name in categories:
        child = rng.spawn("category", name)
        terms: List[str] = []
        while len(terms) < terms_per_category:
            for candidate in generate_term_set(child, terms_per_category):
                if candidate in used:
                    continue
                used.add(candidate)
                terms.append(candidate)
                if len(terms) >= terms_per_category:
                    break
        category_models[name] = CategoryLanguageModel(category=name, terms=terms)
    return Vocabulary(background=background_model, categories=category_models)
