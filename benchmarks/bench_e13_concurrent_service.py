"""E13 — Concurrent serving: parallel batch throughput and workload determinism.

This bench measures what the fine-grained locking rework actually buys:

* **Parallel batch search** — ``search_batch(max_workers=8)`` vs the
  sequential path over diverged per-user sessions, with rankings verified
  **bit-identical** (ids and scores) between the two before anything is
  timed.  Two workload variants are measured:

  - ``cpu``: pure in-process scoring.  On a stock (GIL) CPython build the
    scoring kernel cannot run on two cores at once, so this row is
    expected near 1x — it is recorded honestly as the GIL floor, and is
    where free-threaded builds will show their gain.
  - ``iostall``: every genuine scorer evaluation carries a fixed
    ``IO_STALL_SECONDS`` sleep, modelling the per-request backend round
    trip (remote transcript/keyframe store, ASR service) a production
    deployment performs.  Sleeps release the GIL, so this is the workload
    the thread pool exists for; the bench asserts **>= 2x** throughput at
    8 workers.

* **Concurrent load driving** — the `repro.workload` harness drives N
  simulated users through the live service at 1 vs 8 client threads, and
  asserts the canonical event-log digest is identical across runs and
  worker counts (same seed => byte-identical log).

``BENCH_e13.json`` next to this file records the baseline numbers from the
PR that introduced the concurrent serving path.  Run with
``--write-baseline`` to refresh it on representative hardware, or
``--smoke`` for the quick CI sanity check (small corpus, all assertions,
no wall-clock expectations beyond the >= 2x iostall ratio).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:
    from _common import print_table
except ImportError:  # script mode: python benchmarks/bench_e13_concurrent_service.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import print_table

from repro.feedback.events import EventKind, InteractionEvent
from repro.index.scoring import Bm25Scorer, TextScorer
from repro.service import (
    FeedbackBatch,
    RetrievalService,
    SCORER_REGISTRY,
    SearchRequest,
    ServiceConfig,
    register_scorer,
)
from repro.workload import ServiceLoadDriver, WorkloadSpec

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_e13.json"

#: Modelled per-evaluation backend latency for the ``iostall`` workload.
IO_STALL_SECONDS = 0.005

#: Worker count for the parallel rows (the acceptance configuration).
PARALLEL_WORKERS = 8

#: Registry name used by the iostall rows (registered/unregistered per run).
_STALL_SCORER = "bm25-iostall-bench"


class _StalledScorer(TextScorer):
    """A BM25 scorer whose every evaluation blocks like a backend call.

    ``time.sleep`` releases the GIL, so concurrent requests overlap their
    stalls exactly as they would overlap real network/storage waits.  The
    scores returned are untouched BM25 scores — rankings stay bit-identical
    to the plain scorer, which keeps the equivalence assertions meaningful.
    """

    def __init__(self, inner: TextScorer, stall_seconds: float) -> None:
        self._inner = inner
        self._stall_seconds = stall_seconds

    def score(self, query_terms):
        time.sleep(self._stall_seconds)
        return self._inner.score(query_terms)


def _fleet_requests(corpus, users):
    """One diverged request per user: distinct topic-derived queries."""
    topics = corpus.topics.topics()
    requests = []
    for index in range(users):
        topic = topics[index % len(topics)]
        terms = topic.query_terms[: 2 + index % 2]
        requests.append(
            SearchRequest(
                user_id=f"user{index:02d}",
                query=" ".join(terms),
                topic_id=topic.topic_id,
            )
        )
    return requests


def _diverge_sessions(service, requests):
    """Open every user's session and push distinct feedback into half of them."""
    first = [service.search(request) for request in requests]
    for index, response in enumerate(first):
        if index % 2 or not response.hits:
            continue
        depth = 1 + index % 3
        service.submit_feedback(
            FeedbackBatch(
                user_id=response.user_id,
                events=tuple(
                    InteractionEvent(
                        kind=EventKind.PLAY_CLICK,
                        timestamp=float(rank),
                        shot_id=hit.shot_id,
                        rank=hit.rank,
                    )
                    for rank, hit in enumerate(response.top(depth), start=1)
                ),
                session_id=response.session_id,
            )
        )


def _assert_bit_identical(corpus, config, requests):
    """Parallel batch must return exactly what sequential search returns."""
    sequential_service = RetrievalService.from_corpus(corpus, config=config)
    parallel_service = RetrievalService.from_corpus(corpus, config=config)
    _diverge_sessions(sequential_service, requests)
    _diverge_sessions(parallel_service, requests)
    sequential = [sequential_service.search(request) for request in requests]
    parallel = parallel_service.search_batch(requests, max_workers=PARALLEL_WORKERS)
    assert len(sequential) == len(parallel)
    for seq, par in zip(sequential, parallel):
        assert seq.shot_ids() == par.shot_ids(), "ranking ids diverged"
        assert seq.scores() == par.scores(), "ranking scores diverged"


def _measure_batch(corpus, config, requests, max_workers, rounds):
    """Throughput of repeated batches over persistent diverged sessions."""
    service = RetrievalService.from_corpus(corpus, config=config)
    _diverge_sessions(service, requests)
    service.search_batch(requests, max_workers=max_workers)  # warm caches/pool path
    start = time.perf_counter()
    for _ in range(rounds):
        service.search_batch(requests, max_workers=max_workers)
    elapsed = time.perf_counter() - start
    total = rounds * len(requests)
    return {
        "requests": total,
        "seconds": elapsed,
        "qps": total / elapsed if elapsed else 0.0,
    }


def _batch_rows(corpus, users, rounds):
    """Sequential vs parallel batch rows for the cpu and iostall workloads."""
    requests = _fleet_requests(corpus, users)
    rows = []

    # cpu workload: result cache off so every request is a genuine evaluation.
    cpu_config = ServiceConfig(result_cache_size=0)
    _assert_bit_identical(corpus, cpu_config, requests)
    sequential = _measure_batch(corpus, cpu_config, requests, 1, rounds)
    parallel = _measure_batch(corpus, cpu_config, requests, PARALLEL_WORKERS, rounds)
    rows.append({"workload": "cpu", "workers": 1, **sequential, "speedup": 1.0})
    rows.append(
        {
            "workload": "cpu",
            "workers": PARALLEL_WORKERS,
            **parallel,
            "speedup": parallel["qps"] / sequential["qps"] if sequential["qps"] else 0.0,
        }
    )

    # iostall workload: identical rankings, but each evaluation blocks like
    # a backend call; this is where the thread pool must pay off.
    register_scorer(
        _STALL_SCORER,
        lambda index, config: _StalledScorer(
            Bm25Scorer(index, k1=config.bm25_k1, b=config.bm25_b), IO_STALL_SECONDS
        ),
        overwrite=True,
    )
    try:
        stall_config = ServiceConfig(scorer=_STALL_SCORER, result_cache_size=0)
        _assert_bit_identical(corpus, stall_config, requests)
        sequential = _measure_batch(corpus, stall_config, requests, 1, rounds)
        parallel = _measure_batch(
            corpus, stall_config, requests, PARALLEL_WORKERS, rounds
        )
    finally:
        SCORER_REGISTRY.unregister(_STALL_SCORER)
    rows.append({"workload": "iostall", "workers": 1, **sequential, "speedup": 1.0})
    rows.append(
        {
            "workload": "iostall",
            "workers": PARALLEL_WORKERS,
            **parallel,
            "speedup": parallel["qps"] / sequential["qps"] if sequential["qps"] else 0.0,
        }
    )
    return rows


def _loadtest_rows(corpus, users, queries_per_user):
    """Drive the workload harness at 1 vs 8 client threads; pin determinism."""

    def factory():
        return RetrievalService.from_corpus(corpus)

    spec = WorkloadSpec(users=users, queries_per_user=queries_per_user, seed=2008)
    rows = []
    digests = []
    for workers in (1, PARALLEL_WORKERS):
        driver = ServiceLoadDriver(factory, max_workers=workers)
        result = driver.run(spec)
        digests.append(result.digest())
        rows.append(
            {
                "workload": "loadtest",
                "workers": workers,
                "requests": result.request_count,
                "seconds": result.wall_seconds,
                "qps": result.throughput_rps,
                "digest": result.digest()[:12],
            }
        )
    # Same seed => byte-identical canonical logs, regardless of workers,
    # and across a replay on a fresh service.
    assert len(set(digests)) == 1, f"loadtest digests diverged: {digests}"
    replay = ServiceLoadDriver(factory, max_workers=PARALLEL_WORKERS).run(spec)
    assert replay.digest() == digests[0], "replay digest diverged"
    return rows


def _sanity_check(batch_rows):
    by_key = {(row["workload"], row["workers"]): row for row in batch_rows}
    for row in batch_rows:
        assert row["qps"] > 0
    # The acceptance criterion: 8 workers must at least double throughput on
    # the latency-bound workload the pool exists for.
    iostall_speedup = by_key[("iostall", PARALLEL_WORKERS)]["speedup"]
    assert iostall_speedup >= 2.0, (
        f"iostall speedup {iostall_speedup:.2f}x < 2x at {PARALLEL_WORKERS} workers"
    )


def run_experiment(bench_corpus, users=12, rounds=8, queries_per_user=3):
    batch_rows = _batch_rows(bench_corpus, users=users, rounds=rounds)
    loadtest_rows = _loadtest_rows(
        bench_corpus, users=users, queries_per_user=queries_per_user
    )
    return batch_rows, loadtest_rows


def test_e13_concurrent_service(benchmark, bench_corpus):
    batch_rows, loadtest_rows = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("E13a: batch search, sequential vs parallel", batch_rows)
    print_table("E13b: concurrent load driver (deterministic)", loadtest_rows)
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        print_table(
            "E13 baseline (from BENCH_e13.json, for trajectory — not asserted)",
            baseline.get("batch", []),
        )
    _sanity_check(batch_rows)


def _main(argv):
    smoke = "--smoke" in argv
    write_baseline = "--write-baseline" in argv
    from repro.collection import CollectionConfig, generate_corpus

    if smoke:
        corpus = generate_corpus(
            seed=7,
            config=CollectionConfig(days=4, stories_per_day=5, topic_count=6),
        )
        users, rounds, queries = 8, 3, 2
    else:
        corpus = generate_corpus(
            seed=2008,
            config=CollectionConfig(
                days=24, stories_per_day=9, topic_count=16, min_stories_per_topic=3
            ),
        )
        users, rounds, queries = 12, 8, 3
    batch_rows, loadtest_rows = run_experiment(
        corpus, users=users, rounds=rounds, queries_per_user=queries
    )
    print_table("E13a: batch search, sequential vs parallel", batch_rows)
    print_table("E13b: concurrent load driver (deterministic)", loadtest_rows)
    _sanity_check(batch_rows)
    if write_baseline:
        # Preserve the guarded smoke_baseline section: the regression guard
        # treats its absence as a failure, and it is refreshed through
        # check_bench_regression.py --update, not here.
        smoke_baseline = None
        if BASELINE_PATH.exists():
            smoke_baseline = json.loads(BASELINE_PATH.read_text()).get(
                "smoke_baseline"
            )
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    **({"smoke_baseline": smoke_baseline} if smoke_baseline else {}),
                    "corpus": "smoke" if smoke else "bench standard (seed 2008)",
                    "users": users,
                    "rounds": rounds,
                    "parallel_workers": PARALLEL_WORKERS,
                    "io_stall_seconds": IO_STALL_SECONDS,
                    "note": (
                        "cpu rows are GIL-bound on stock CPython (recorded as "
                        "the honest floor); the iostall rows model the "
                        "per-request backend round trip a production "
                        "deployment overlaps with its thread pool, and carry "
                        "the >=2x acceptance threshold. Rankings verified "
                        "bit-identical sequential vs parallel before timing."
                    ),
                    "batch": batch_rows,
                    "loadtest": loadtest_rows,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    print(
        "e13 ok: parallel rankings bit-identical; iostall speedup >= 2x; "
        "loadtest digests deterministic"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
