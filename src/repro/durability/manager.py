"""The durability manager: what a live engine calls on every mutation.

:class:`DurabilityManager` owns one durability directory — the WAL
segments, the snapshot chain, and the header — and exposes exactly the
hooks the engine's write path needs:

* ``log_document`` / ``log_shot`` append an op record to the owning
  shard's WAL segment *before* the in-memory index mutates (called inside
  the engine's ``exclusive_writer()``, so WAL order is the serialization
  order);
* ``log_feedback`` appends interaction batches to the meta segment (these
  serialise behind the WAL's LSN lock; they do not affect index state but
  make the full write history replayable, e.g. by a follower);
* ``should_checkpoint`` / ``checkpoint`` implement the snapshot cadence:
  every ``snapshot_interval_ops`` index mutations, the engine state is
  checkpointed and the WAL compacted up to the checkpoint's watermark.

Lifecycle: :meth:`create` initialises a fresh directory around a live
engine (writing a **bootstrap checkpoint** covering the corpus-built
state, so recovery never needs the corpus files); :meth:`attach` resumes
an existing directory from a :class:`~repro.durability.recovery.
RecoveredState`, repairing the WAL past the recovered prefix before any
new append.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.durability.digest import engine_text_items, engine_visual_items
from repro.durability.recovery import (
    DURABILITY_FORMAT,
    HEADER_FILENAME,
    RecoveredState,
    RecoveryError,
    read_header,
)
from repro.durability.snapshots import SnapshotStore, _write_json_atomic
from repro.durability.wal import META_SEGMENT, WriteAheadLog
from repro.sharding.router import ShardRouter
from repro.utils.serialization import PathLike


def _index_generations(index) -> List[int]:
    """Per-shard generation clocks of a (possibly sharded) index."""
    shards = getattr(index, "shard_indexes", None)
    if shards is not None:
        return [shard.generation for shard in shards]
    return [index.generation]


class DurabilityManager:
    """Owns one durability directory on behalf of one live engine."""

    def __init__(
        self,
        directory: PathLike,
        num_shards: int,
        fsync_policy: str = "interval",
        snapshot_interval_ops: int = 256,
        fsync_interval_ops: int = 64,
        next_lsn: int = 1,
    ) -> None:
        if snapshot_interval_ops < 1:
            raise ValueError(
                f"snapshot_interval_ops must be positive, got {snapshot_interval_ops}"
            )
        self._directory = Path(directory)
        self._router = ShardRouter(num_shards)
        self._wal = WriteAheadLog(
            self._directory,
            num_shards,
            fsync_policy=fsync_policy,
            fsync_interval_ops=fsync_interval_ops,
            next_lsn=next_lsn,
        )
        self._snapshots = SnapshotStore(self._directory, num_shards)
        self._snapshot_interval_ops = snapshot_interval_ops
        self._ops_since_checkpoint = 0
        self._checkpoints_written = 0
        # Deletes, updates and compactions perturb the live item sequence
        # relative to the parent checkpoint (incremental snapshots assume a
        # pure append suffix), so the next checkpoint after any of them is
        # written as a full **rebase** checkpoint.
        self._rebase_next_checkpoint = False

    # -- lifecycle ---------------------------------------------------------------

    @staticmethod
    def has_state(directory: PathLike) -> bool:
        """True when ``directory`` already holds a durability header."""
        return (Path(directory) / HEADER_FILENAME).exists()

    @classmethod
    def create(
        cls,
        directory: PathLike,
        engine,
        num_shards: int,
        fsync_policy: str = "interval",
        snapshot_interval_ops: int = 256,
        fsync_interval_ops: int = 64,
    ) -> "DurabilityManager":
        """Initialise a fresh durability directory around a live engine.

        Writes the header and a bootstrap checkpoint (id 0, ``wal_lsn`` 0)
        that snapshots the engine's corpus-built state, so a recovery of
        this directory is self-contained from its very first op.
        """
        directory = Path(directory)
        if cls.has_state(directory):
            raise RecoveryError(
                f"{directory} already holds durable state; recover it (or "
                f"point the service at a fresh directory) instead of "
                f"re-initialising over it"
            )
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            # The path (or one of its parents) exists as a regular file.
            raise RecoveryError(
                f"{directory} is not a directory — cannot hold durable state"
            ) from None
        _write_json_atomic(
            directory / HEADER_FILENAME,
            {
                "format": DURABILITY_FORMAT,
                "num_shards": num_shards,
                "fsync_policy": fsync_policy,
            },
        )
        manager = cls(
            directory,
            num_shards,
            fsync_policy=fsync_policy,
            snapshot_interval_ops=snapshot_interval_ops,
            fsync_interval_ops=fsync_interval_ops,
        )
        manager._write_checkpoint(engine)
        return manager

    @classmethod
    def attach(
        cls,
        directory: PathLike,
        recovered: RecoveredState,
        fsync_policy: str = "interval",
        snapshot_interval_ops: int = 256,
        fsync_interval_ops: int = 64,
    ) -> "DurabilityManager":
        """Resume an existing directory from its recovered state.

        Repairs the WAL first: any record past the recovered gap-free
        prefix (torn tails, records stranded beyond a hole) is physically
        dropped, so appends resume from exactly the state the engine was
        rebuilt to.
        """
        header = read_header(directory)
        if int(header["num_shards"]) != recovered.num_shards:
            raise RecoveryError(
                f"durability directory has {header['num_shards']} shards "
                f"but the recovered state was built for "
                f"{recovered.num_shards}"
            )
        manager = cls(
            directory,
            recovered.num_shards,
            fsync_policy=fsync_policy,
            snapshot_interval_ops=snapshot_interval_ops,
            fsync_interval_ops=fsync_interval_ops,
            next_lsn=recovered.applied_lsn + 1,
        )
        manager._wal.repair_to(recovered.applied_lsn)
        # The WAL tail already holds this many index ops past the last
        # checkpoint; count them toward the next snapshot so an attach/crash
        # loop cannot defer compaction forever.
        manager._ops_since_checkpoint = recovered.wal_index_ops
        # If the replayed tail mutated existing items (del/upd), the live
        # sequence no longer extends the parent checkpoint — the next
        # checkpoint must rebase.
        manager._rebase_next_checkpoint = recovered.wal_mutation_ops > 0
        return manager

    def close(self) -> None:
        """Sync and close the WAL (idempotent)."""
        self._wal.close()

    # -- accessors ---------------------------------------------------------------

    @property
    def directory(self) -> Path:
        """The durability directory."""
        return self._directory

    @property
    def wal(self) -> WriteAheadLog:
        """The write-ahead log."""
        return self._wal

    @property
    def snapshots(self) -> SnapshotStore:
        """The snapshot store."""
        return self._snapshots

    @property
    def num_shards(self) -> int:
        """Shard count of the WAL routing and snapshot lineage."""
        return self._router.num_shards

    @property
    def snapshot_interval_ops(self) -> int:
        """Index mutations between automatic checkpoints."""
        return self._snapshot_interval_ops

    @property
    def ops_since_checkpoint(self) -> int:
        """Index mutations logged since the last checkpoint."""
        return self._ops_since_checkpoint

    @property
    def checkpoints_written(self) -> int:
        """Checkpoints written through this manager instance."""
        return self._checkpoints_written

    def statistics(self) -> Dict[str, float]:
        """Write-path counters for benchmarks and reports."""
        acks = self._wal.replica_acknowledgements()
        stats = {
            "wal_records": float(self._wal.records_appended),
            "wal_bytes": float(self._wal.bytes_appended),
            "last_lsn": float(self._wal.last_lsn),
            "checkpoints": float(self._checkpoints_written),
            "ops_since_checkpoint": float(self._ops_since_checkpoint),
            "replicas": float(len(acks)),
        }
        if acks:
            stats["replica_min_acknowledged_lsn"] = float(min(acks.values()))
        return stats

    # -- replication guard ---------------------------------------------------------

    def register_replica(self, replica_id: str, acknowledged_lsn: int = 0) -> None:
        """Pin compaction behind a replica tailing this directory's WAL."""
        self._wal.register_replica(replica_id, acknowledged_lsn)

    def acknowledge_replica(self, replica_id: str, lsn: int) -> int:
        """Advance a registered replica's acknowledged LSN (monotonic)."""
        return self._wal.acknowledge_replica(replica_id, lsn)

    def unregister_replica(self, replica_id: str) -> None:
        """Release a replica's compaction pin (idempotent)."""
        self._wal.unregister_replica(replica_id)

    # -- write-path hooks (called under the engine's exclusive writer) -------------

    def log_document(self, document_id: str, frequencies: Dict[str, int]) -> int:
        """WAL one ``index_document`` op on its owning shard's segment."""
        lsn = self._wal.append(
            self._router.shard_of(document_id),
            {"op": "doc", "id": document_id, "tf": dict(frequencies)},
        )
        self._ops_since_checkpoint += 1
        return lsn

    def log_shot(
        self,
        shot_id: str,
        features: Sequence[float],
        concept_scores: Optional[Dict[str, float]] = None,
    ) -> int:
        """WAL one ``index_shot`` op on its owning shard's segment."""
        lsn = self._wal.append(
            self._router.shard_of(shot_id),
            {
                "op": "shot",
                "id": shot_id,
                "features": [float(value) for value in features],
                "concepts": dict(concept_scores or {}),
            },
        )
        self._ops_since_checkpoint += 1
        return lsn

    def log_delete_document(self, document_id: str) -> int:
        """WAL one ``delete_document`` op on its owning shard's segment."""
        lsn = self._wal.append(
            self._router.shard_of(document_id),
            {"op": "del", "kind": "doc", "id": document_id},
        )
        self._ops_since_checkpoint += 1
        self._rebase_next_checkpoint = True
        return lsn

    def log_delete_shot(self, shot_id: str) -> int:
        """WAL one ``delete_shot`` op on its owning shard's segment."""
        lsn = self._wal.append(
            self._router.shard_of(shot_id),
            {"op": "del", "kind": "shot", "id": shot_id},
        )
        self._ops_since_checkpoint += 1
        self._rebase_next_checkpoint = True
        return lsn

    def log_update_document(
        self, document_id: str, frequencies: Dict[str, int]
    ) -> int:
        """WAL one ``update_document`` op (replayed as delete + re-add)."""
        lsn = self._wal.append(
            self._router.shard_of(document_id),
            {"op": "upd", "id": document_id, "tf": dict(frequencies)},
        )
        self._ops_since_checkpoint += 1
        self._rebase_next_checkpoint = True
        return lsn

    def note_compaction(self) -> None:
        """Engine hook: a compaction adopted re-interned indexes.

        Compaction does not change the live item sequence, but rebasing the
        next checkpoint keeps the snapshot chain's per-shard generation
        bookkeeping aligned with the adopted clocks at negligible cost
        (compactions are rare).
        """
        self._rebase_next_checkpoint = True

    def log_feedback(
        self, user_id: str, session_id: str, events: Sequence
    ) -> int:
        """WAL one feedback batch on the meta segment."""
        return self._wal.append(
            META_SEGMENT,
            {
                "op": "feedback",
                "user": user_id,
                "session": session_id,
                "events": [event.as_dict() for event in events],
            },
        )

    # -- checkpoints ---------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        """True when the snapshot cadence says it is time to checkpoint."""
        return self._ops_since_checkpoint >= self._snapshot_interval_ops

    def checkpoint(self, engine) -> Dict[str, object]:
        """Snapshot the engine state and compact the WAL behind it.

        Must run under the engine's exclusive writer (the engine's
        ``maybe_checkpoint`` hook does), so the snapshot is a consistent
        cut at ``wal.last_lsn``.  The WAL is synced before the manifest is
        written and truncated only after — a crash at any point leaves
        either the old chain + full WAL, or the new chain + (possibly
        partially) compacted WAL, both of which recover to the same state.
        """
        return self._write_checkpoint(engine)

    def maybe_checkpoint(self, engine) -> Optional[Dict[str, object]]:
        """Checkpoint if the cadence is due; returns the manifest if so."""
        if not self.should_checkpoint():
            return None
        return self._write_checkpoint(engine)

    def _write_checkpoint(self, engine) -> Dict[str, object]:
        self._wal.sync()
        manifest = self._snapshots.write_checkpoint(
            text_items=list(engine_text_items(engine)),
            visual_items=list(engine_visual_items(engine)),
            wal_lsn=self._wal.last_lsn,
            text_generations=_index_generations(engine.inverted_index),
            visual_generations=_index_generations(engine.visual_index),
            rebase=self._rebase_next_checkpoint,
        )
        self._wal.truncate_through(int(manifest["wal_lsn"]))
        self._ops_since_checkpoint = 0
        self._checkpoints_written += 1
        self._rebase_next_checkpoint = False
        return manifest
