"""A2 — Video analysis substrate quality.

The adaptive experiments assume a working TRECVID-style analysis chain.
This bench reports the quality of each simulated analysis component against
the collection's ground truth: shot-boundary detection (precision/recall/F1),
news-story segmentation, and concept-detector quality (mean average
precision / AUC) for the three detector-quality presets.
"""

from __future__ import annotations

from _common import print_table

from repro.analysis import (
    ConceptDetectorBank,
    ConceptDetectorConfig,
    all_concepts,
    evaluate_collection_segmentation,
)
from repro.evaluation import mean_metric
from repro.newsframework import StorySegmenter


def run_experiment(bench_corpus):
    collection = bench_corpus.collection

    shot_results = evaluate_collection_segmentation(collection)
    shot_rows = [
        {
            "task": "shot boundary detection",
            "precision": mean_metric(r.precision for r in shot_results),
            "recall": mean_metric(r.recall for r in shot_results),
            "f1": mean_metric(r.f1 for r in shot_results),
        }
    ]

    story_results = StorySegmenter().evaluate_collection(collection)
    shot_rows.append(
        {
            "task": "story segmentation",
            "precision": mean_metric(r.precision for r in story_results),
            "recall": mean_metric(r.recall for r in story_results),
            "f1": mean_metric(r.f1 for r in story_results),
        }
    )

    concept_rows = []
    shots = collection.shots()
    probe_concepts = [c for c in ("person", "outdoor", "stadium", "charts")
                      if c in all_concepts()]
    for label, config in (
        ("weak detectors", ConceptDetectorConfig.weak()),
        ("default detectors", ConceptDetectorConfig()),
        ("strong detectors", ConceptDetectorConfig.strong()),
    ):
        bank = ConceptDetectorBank(config=config, seed=71)
        for shot in shots:
            shot.concept_scores = {}
        quality = [bank.detector_quality(shots, concept) for concept in probe_concepts]
        concept_rows.append(
            {
                "detector_bank": label,
                "mean_average_precision": mean_metric(q["average_precision"] for q in quality),
                "mean_auc": mean_metric(q["auc"] for q in quality),
            }
        )
    # Restore default concept scores for any later benchmark that needs them.
    ConceptDetectorBank().annotate_collection(collection)
    return shot_rows, concept_rows


def test_a2_analysis_substrate(benchmark, bench_corpus):
    segmentation_rows, concept_rows = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("A2a: temporal segmentation quality", segmentation_rows)
    print_table("A2b: concept detector quality presets", concept_rows)
    shot_row = segmentation_rows[0]
    assert shot_row["f1"] > 0.8
    aucs = [row["mean_auc"] for row in concept_rows]
    assert aucs[0] < aucs[1] < aucs[2]
    assert aucs[2] > 0.9
