"""End-to-end analysis pipeline: features + concept scores for a collection.

This is the offline indexing stage that runs once per collection, mirroring
the "recording, analysing, indexing" part of the news framework the paper
proposes.  It mutates the collection's shots in place (filling
``shot.features`` and ``shot.concept_scores``) and reports what it did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.concepts import ConceptDetectorBank, ConceptDetectorConfig
from repro.analysis.features import FeatureConfig, FeatureExtractor
from repro.collection.documents import Collection


@dataclass
class AnalysisReport:
    """Summary of one analysis pass over a collection."""

    shots_processed: int
    feature_dimensions: int
    concepts_scored: int

    def as_dict(self) -> Dict[str, int]:
        """Plain-dictionary view for logging and JSON output."""
        return {
            "shots_processed": self.shots_processed,
            "feature_dimensions": self.feature_dimensions,
            "concepts_scored": self.concepts_scored,
        }


class AnalysisPipeline:
    """Runs feature extraction and concept detection over a collection."""

    def __init__(
        self,
        feature_extractor: Optional[FeatureExtractor] = None,
        concept_bank: Optional[ConceptDetectorBank] = None,
    ) -> None:
        self._features = feature_extractor or FeatureExtractor(FeatureConfig())
        self._concepts = concept_bank or ConceptDetectorBank(
            config=ConceptDetectorConfig()
        )

    @property
    def feature_extractor(self) -> FeatureExtractor:
        """The low-level feature extractor in use."""
        return self._features

    @property
    def concept_bank(self) -> ConceptDetectorBank:
        """The concept detector bank in use."""
        return self._concepts

    def run(self, collection: Collection) -> AnalysisReport:
        """Analyse every shot in the collection, filling derived fields."""
        processed = 0
        for shot in collection.iter_shots():
            shot.features = self._features.extract(shot.keyframe)
            shot.concept_scores = self._concepts.score_shot(shot)
            processed += 1
        return AnalysisReport(
            shots_processed=processed,
            feature_dimensions=self._features.config.dimensions,
            concepts_scored=len(self._concepts.concepts),
        )


def analyse_collection(
    collection: Collection,
    feature_config: Optional[FeatureConfig] = None,
    concept_config: Optional[ConceptDetectorConfig] = None,
) -> AnalysisReport:
    """Convenience wrapper: analyse a collection with default components."""
    pipeline = AnalysisPipeline(
        feature_extractor=FeatureExtractor(feature_config or FeatureConfig()),
        concept_bank=ConceptDetectorBank(config=concept_config or ConceptDetectorConfig()),
    )
    return pipeline.run(collection)
