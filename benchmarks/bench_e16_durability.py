"""E16 — Durability tier: WAL write-path cost, write amplification, recovery.

Three questions, answered with the state digest as the correctness oracle
before anything is timed:

* **Write-path cost** — ingest throughput (ops/s) of a durable service
  under each fsync policy (``never`` / ``interval`` / ``always``) against
  the in-memory service on the same deterministic op stream.  The
  ``never`` and ``interval`` rows should stay within a small factor of
  memory speed (the WAL append is one buffered write); ``always`` pays a
  real fsync per op and is reported honestly, not asserted.

* **Write amplification** — durable bytes (WAL appends + live snapshot
  chain) per logical payload byte, and WAL bytes per op.  Recorded for
  trajectory, never guarded: amplification is a property of the format
  and the snapshot cadence, not of host speed.

* **Recovery speed** — ops/s at which ``RecoveryManager`` restores the
  directory (snapshot load + WAL replay + digest), after asserting the
  recovered digest equals the live service's digest at close.

``BENCH_e16.json`` next to this file records baselines plus the
``smoke_baseline`` section guarded by ``check_bench_regression.py``
(guarded metrics: ``ingest_never_ops_per_s``, ``recovery_ops_per_s`` —
the CI-stable higher-is-better pair; fsync rows depend on device sync
latency and stay unguarded).  Run with ``--write-baseline`` to refresh,
``--smoke`` for the CI sanity check.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

try:
    from _common import print_table
except ImportError:  # script mode: python benchmarks/bench_e16_durability.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import print_table

from repro.durability import RecoveryManager, engine_state_digest
from repro.durability.wal import encode_op
from repro.service import RetrievalService, ServiceConfig
from repro.workload.ingest import (
    apply_ingest,
    service_feature_dim,
    synthetic_ingest_ops,
)

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_e16.json"

#: Snapshot cadence of the bench runs: low enough that compaction and
#: incremental deltas happen mid-run, so their cost is in the numbers.
SNAPSHOT_INTERVAL = 32

INGEST_SEED = 2008


def _ops(service, count):
    return synthetic_ingest_ops(
        count, seed=INGEST_SEED, feature_dim=service_feature_dim(service)
    )


def _logical_bytes(ops):
    """Payload bytes of the op stream as the WAL would encode it."""
    from repro.index.tokenizer import Tokenizer

    tokenizer = Tokenizer()
    total = 0
    for op in ops:
        if op[0] == "doc":
            record = {
                "op": "doc",
                "id": op[1],
                "tf": dict(tokenizer.term_frequencies(op[2])),
            }
        else:
            record = {
                "op": "shot",
                "id": op[1],
                "features": list(op[2]),
                "concepts": dict(op[3]),
            }
        total += len(encode_op(record))
    return total


def _directory_snapshot_bytes(directory):
    """Bytes of the incremental snapshot chain (bootstrap excluded).

    Checkpoint 0 snapshots the corpus-built state and its size tracks the
    collection, not the ingest stream, so it would swamp a per-op metric.
    """
    bootstrap = ("checkpoint-000000.json", "delta-cp000000-")
    return sum(
        path.stat().st_size
        for pattern in ("checkpoint-*.json", "delta-*.json")
        for path in Path(directory).glob(pattern)
        if path.name != bootstrap[0] and not path.name.startswith(bootstrap[1])
    )


def _ingest_row(corpus, count, fsync_policy, workdir):
    """One durable ingest run: throughput + WAL/snapshot accounting."""
    directory = Path(workdir) / f"fsync-{fsync_policy}"
    service = RetrievalService(
        corpus.collection,
        config=ServiceConfig(
            durability_dir=str(directory),
            fsync_policy=fsync_policy,
            snapshot_interval_ops=SNAPSHOT_INTERVAL,
            result_cache_size=0,
        ),
    )
    ops = _ops(service, count)
    start = time.perf_counter()
    apply_ingest(service, ops)
    elapsed = time.perf_counter() - start
    digest = engine_state_digest(service.engine)
    stats = service.engine.durability.statistics()
    service.close()

    state = RecoveryManager(directory).recover()
    assert state.state_digest() == digest, (
        f"fsync={fsync_policy}: recovered digest diverged from live state"
    )
    assert state.ingested_ops == count

    logical = _logical_bytes(ops)
    durable_bytes = stats["wal_bytes"] + _directory_snapshot_bytes(directory)
    return {
        "mode": f"durable-{fsync_policy}",
        "ops": count,
        "seconds": elapsed,
        "ops_per_s": count / elapsed if elapsed else 0.0,
        "wal_bytes_per_op": stats["wal_bytes"] / count if count else 0.0,
        "write_amplification": durable_bytes / logical if logical else 0.0,
        "checkpoints": int(stats["checkpoints"]),
    }


def _memory_row(corpus, count):
    service = RetrievalService(
        corpus.collection, config=ServiceConfig(result_cache_size=0)
    )
    ops = _ops(service, count)
    start = time.perf_counter()
    apply_ingest(service, ops)
    elapsed = time.perf_counter() - start
    service.close()
    return {
        "mode": "memory",
        "ops": count,
        "seconds": elapsed,
        "ops_per_s": count / elapsed if elapsed else 0.0,
        "wal_bytes_per_op": 0.0,
        "write_amplification": 0.0,
        "checkpoints": 0,
    }


def _recovery_row(corpus, count, workdir, repeats=3):
    """Recovery throughput over a directory with snapshots + a WAL tail."""
    directory = Path(workdir) / "recovery"
    service = RetrievalService(
        corpus.collection,
        config=ServiceConfig(
            durability_dir=str(directory),
            fsync_policy="never",
            snapshot_interval_ops=SNAPSHOT_INTERVAL,
            result_cache_size=0,
        ),
    )
    apply_ingest(service, _ops(service, count))
    digest = engine_state_digest(service.engine)
    service.close()

    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        state = RecoveryManager(directory).recover()
        recovered_digest = state.state_digest()
        elapsed = time.perf_counter() - start
        assert recovered_digest == digest, "recovered digest diverged"
        best = elapsed if best is None else min(best, elapsed)
    total_items = state.text_count + state.shot_count
    return {
        "mode": "recover",
        "ops": count,
        "seconds": best,
        "recovery_ops_per_s": count / best if best else 0.0,
        "items_restored": total_items,
        "wal_tail_ops": state.wal_index_ops,
    }


def _sanity_check(ingest_rows, recovery_row):
    by_mode = {row["mode"]: row for row in ingest_rows}
    for row in ingest_rows:
        assert row["ops_per_s"] > 0, f"{row['mode']}: no throughput measured"
    # Compaction must actually have run, or the amplification number is
    # measuring an empty snapshot chain.
    assert by_mode["durable-never"]["checkpoints"] >= 1
    assert recovery_row["recovery_ops_per_s"] > 0


def run_experiment(bench_corpus, count=256, repeats=3):
    workdir = tempfile.mkdtemp(prefix="bench-e16-")
    try:
        ingest_rows = [_memory_row(bench_corpus, count)]
        for policy in ("never", "interval", "always"):
            ingest_rows.append(_ingest_row(bench_corpus, count, policy, workdir))
        memory_qps = ingest_rows[0]["ops_per_s"]
        for row in ingest_rows:
            row["slowdown_vs_memory"] = (
                memory_qps / row["ops_per_s"] if row["ops_per_s"] else 0.0
            )
        recovery_row = _recovery_row(bench_corpus, count, workdir, repeats=repeats)
        return ingest_rows, recovery_row
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def test_e16_durability(benchmark, bench_corpus):
    ingest_rows, recovery_row = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("E16a: durable ingest write path (digest-verified)", ingest_rows)
    print_table("E16b: crash recovery (snapshot + WAL replay)", [recovery_row])
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        print_table(
            "E16 baseline (from BENCH_e16.json, for trajectory — not asserted)",
            baseline.get("ingest", []),
        )
    _sanity_check(ingest_rows, recovery_row)


def _main(argv):
    smoke = "--smoke" in argv
    write_baseline = "--write-baseline" in argv
    from repro.collection import CollectionConfig, generate_corpus

    if smoke:
        corpus = generate_corpus(
            seed=7,
            config=CollectionConfig(days=4, stories_per_day=5, topic_count=6),
        )
        count, repeats = 128, 2
    else:
        corpus = generate_corpus(
            seed=2008,
            config=CollectionConfig(
                days=24, stories_per_day=9, topic_count=16, min_stories_per_topic=3
            ),
        )
        count, repeats = 512, 3
    ingest_rows, recovery_row = run_experiment(corpus, count=count, repeats=repeats)
    print_table("E16a: durable ingest write path (digest-verified)", ingest_rows)
    print_table("E16b: crash recovery (snapshot + WAL replay)", [recovery_row])
    _sanity_check(ingest_rows, recovery_row)
    if write_baseline:
        # The guarded smoke_baseline section is refreshed through
        # check_bench_regression.py --update, not here.
        smoke_baseline = None
        if BASELINE_PATH.exists():
            smoke_baseline = json.loads(BASELINE_PATH.read_text()).get(
                "smoke_baseline"
            )
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    **({"smoke_baseline": smoke_baseline} if smoke_baseline else {}),
                    "corpus": "smoke" if smoke else "bench standard (seed 2008)",
                    "ops": count,
                    "snapshot_interval_ops": SNAPSHOT_INTERVAL,
                    "note": (
                        "Every durable row recovers its directory and "
                        "asserts the recovered digest equals the live "
                        "engine's before reporting numbers. "
                        "write_amplification = (WAL appends + live snapshot "
                        "chain) / logical op payload bytes at the bench's "
                        "snapshot cadence; fsync=always depends on device "
                        "sync latency and is recorded, never guarded."
                    ),
                    "ingest": ingest_rows,
                    "recovery": recovery_row,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    print(
        "e16 ok: durable ingest digest-verified under all fsync policies; "
        "recovery restored the byte-identical state"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
