"""On-disk persistence for the inverted index and visual index.

Indexes are saved as JSON documents.  This is not a high-performance format,
but it makes snapshots human-inspectable and keeps the library free of
binary-format dependencies; the round-trip property (save → load → identical
retrieval behaviour) is what the tests assert.

Mutable-corpus semantics: a snapshot stores the **live** items as an
ordered array in dense slot order with tombstoned holes skipped — an
array rather than an object because the JSON writer sorts object keys,
which would scramble the interning order.  Loading one re-interns the
survivors exactly as a compaction (or a from-scratch rebuild over the
survivors) would, so collection statistics, rankings and the canonical
state digest are identical across save → load whether the source index
had tombstones, was compacted, or never saw a delete.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.index.inverted_index import InvertedIndex
from repro.index.tokenizer import Tokenizer
from repro.index.visual import VisualIndex
from repro.utils.serialization import read_json, write_json

PathLike = Union[str, Path]

_INVERTED_FORMAT_VERSION = 3
_VISUAL_FORMAT_VERSION = 2

#: Versions this module can read.  v1 carried a per-document term-frequency
#: object but was historically re-tokenised on load; v2 loaded the same
#: object straight into the index's dense layout (in sorted-id order, since
#: JSON objects are written with sorted keys); v3 stores an ordered array so
#: the dense interning order survives the round trip.
_READABLE_INVERTED_VERSIONS = (1, 2, 3)
_READABLE_VISUAL_VERSIONS = (1, 2)


def save_inverted_index(index: InvertedIndex, path: PathLike) -> None:
    """Persist an inverted index to a JSON file (live documents only)."""
    documents = [
        [document_id, index.document_vector(document_id)]
        for document_id in index.document_ids()
    ]
    payload = {
        "format_version": _INVERTED_FORMAT_VERSION,
        "kind": "inverted_index",
        "documents": documents,
    }
    write_json(path, payload)


def load_inverted_index(path: PathLike, tokenizer: Tokenizer = None) -> InvertedIndex:
    """Load an inverted index from a JSON file.

    The stored per-document term-frequency vectors are already normalised
    index terms, so they are fed straight into the index's dense layout via
    :meth:`InvertedIndex.add_document_frequencies` — no re-tokenisation —
    and collection statistics come out identical to the original.
    """
    payload = read_json(path)
    if payload.get("kind") != "inverted_index":
        raise ValueError(f"{path} does not contain an inverted index snapshot")
    if payload.get("format_version") not in _READABLE_INVERTED_VERSIONS:
        raise ValueError(
            f"unsupported inverted index format version {payload.get('format_version')}"
        )
    stored = payload["documents"]
    items = stored if isinstance(stored, list) else stored.items()
    index = InvertedIndex(tokenizer=tokenizer)
    for document_id, term_frequencies in items:
        index.add_document_frequencies(
            document_id,
            {term: int(frequency) for term, frequency in term_frequencies.items()},
        )
    return index


def save_visual_index(index: VisualIndex, path: PathLike) -> None:
    """Persist a visual index to a JSON file (live shots only)."""
    payload = {
        "format_version": _VISUAL_FORMAT_VERSION,
        "kind": "visual_index",
        "shots": [
            [
                shot_id,
                list(index.features_of(shot_id)),
                index.concept_scores_of(shot_id),
            ]
            for shot_id in index.shot_ids()
        ],
    }
    write_json(path, payload)


def load_visual_index(path: PathLike) -> VisualIndex:
    """Load a visual index from a JSON file."""
    payload = read_json(path)
    if payload.get("kind") != "visual_index":
        raise ValueError(f"{path} does not contain a visual index snapshot")
    if payload.get("format_version") not in _READABLE_VISUAL_VERSIONS:
        raise ValueError(
            f"unsupported visual index format version {payload.get('format_version')}"
        )
    index = VisualIndex()
    stored = payload["shots"]
    if isinstance(stored, list):
        for shot_id, features, concept_scores in stored:
            index.add_shot(shot_id, features, concept_scores)
    else:
        for shot_id, record in stored.items():
            index.add_shot(shot_id, record["features"], record.get("concept_scores", {}))
    return index
