"""Mutable-corpus tier: deletes, updates, tombstones, and compaction.

The contract under test everywhere in this module: after any sequence of
deletes and updates (and optionally a compaction), collection statistics
and rankings are **bit-identical** to a from-scratch rebuild over the
surviving documents.  Covered layers: the dense-id indexes themselves,
the engine writer path (atomic batches, result-cache invalidation,
near-duplicate screening), the background compactor, and a differential
matrix across scorers × shard counts × executors.
"""

from __future__ import annotations

import pytest

from repro.durability import engine_state_digest
from repro.index import InvertedIndex, VisualIndex
from repro.index.compaction import BackgroundCompactor, compact_engine
from repro.index.dedup import NearDuplicateDetector
from repro.retrieval import EngineConfig, Query, VideoRetrievalEngine
from repro.service import RetrievalService, ServiceConfig
from repro.workload.ingest import (
    apply_ingest,
    service_feature_dim,
    synthetic_ingest_ops,
)


def _text_fingerprint(index: InvertedIndex) -> dict:
    """Every statistic a text scorer can observe, as one comparable value."""
    terms = sorted(index.terms())
    return {
        "document_count": index.document_count,
        "vocabulary_size": index.vocabulary_size,
        "total_terms": index.total_terms,
        "average_document_length": index.average_document_length,
        "document_ids": sorted(index.document_ids()),
        "document_frequency": {t: index.document_frequency(t) for t in terms},
        "collection_frequency": {t: index.collection_frequency(t) for t in terms},
        "postings": {
            t: [(p.document_id, p.term_frequency) for p in index.postings(t)]
            for t in terms
        },
        "vectors": {
            d: dict(index.document_vector(d)) for d in index.document_ids()
        },
    }


def _fresh_text_index(documents: dict) -> InvertedIndex:
    index = InvertedIndex()
    for document_id, text in documents.items():
        index.add_document(document_id, text)
    return index


_DOCS = {
    "d0": "election protest flood election",
    "d1": "summit economy ceasefire",
    "d2": "wildfire transfer verdict launch",
    "d3": "strike harvest border vaccine",
    "d4": "tournament blackout election summit",
    "d5": "flood flood protest verdict",
}


class TestInvertedIndexMutations:
    def test_delete_matches_rebuild_over_survivors(self):
        index = _fresh_text_index(_DOCS)
        index.delete_document("d1")
        index.delete_document("d4")
        survivors = {k: v for k, v in _DOCS.items() if k not in ("d1", "d4")}
        assert _text_fingerprint(index) == _text_fingerprint(
            _fresh_text_index(survivors)
        )
        assert index.tombstone_count == 2
        assert not index.has_document("d1")

    def test_delete_unknown_document_raises(self):
        index = _fresh_text_index(_DOCS)
        with pytest.raises(KeyError):
            index.delete_document("missing")
        with pytest.raises(KeyError):
            index.delete_document("d0")  # second delete of the same id
            index.delete_document("d0")

    def test_delete_scrubs_term_entirely_owned_by_victim(self):
        index = _fresh_text_index(_DOCS)
        assert "tournament" in index
        index.delete_document("d4")
        assert "tournament" not in index
        assert index.collection_frequency("tournament") == 0
        assert index.postings("tournament") == []

    def test_update_matches_delete_plus_add(self):
        updated = _fresh_text_index(_DOCS)
        updated.update_document("d2", "ceasefire summit ceasefire")
        rebuilt = _fresh_text_index(_DOCS)
        rebuilt.delete_document("d2")
        rebuilt.add_document("d2", "ceasefire summit ceasefire")
        assert _text_fingerprint(updated) == _text_fingerprint(rebuilt)
        # An update moves the document to a fresh dense slot and leaves a
        # tombstone behind — exactly what WAL replay of del+add produces.
        assert updated.tombstone_count == 1
        assert updated.doc_index_of("d2") == len(_DOCS)

    def test_update_unknown_document_raises(self):
        index = _fresh_text_index(_DOCS)
        with pytest.raises(KeyError):
            index.update_document("missing", "flood")

    def test_compact_reclaims_and_preserves_statistics(self):
        index = _fresh_text_index(_DOCS)
        index.delete_document("d0")
        index.update_document("d3", "border border vaccine")
        before = _text_fingerprint(index)
        generation = index.generation
        reclaimed = index.compact()
        assert reclaimed == 2  # one delete hole + one update hole
        assert index.tombstone_count == 0
        assert index.generation > generation
        assert _text_fingerprint(index) == before
        assert None not in index.dense_document_ids()
        # Compacting a hole-free index is a no-op.
        assert index.compact() == 0

    def test_add_documents_batch_is_atomic(self):
        # Satellite regression: the batch validates every id up front, so a
        # duplicate anywhere leaves the index completely untouched — even
        # when valid documents precede the duplicate in iteration order.
        index = _fresh_text_index(_DOCS)
        before = _text_fingerprint(index)
        with pytest.raises(ValueError):
            index.add_documents({"fresh-a": "flood summit", "d3": "economy"})
        assert not index.has_document("fresh-a")
        assert _text_fingerprint(index) == before


class TestVisualIndexMutations:
    @staticmethod
    def _index() -> VisualIndex:
        index = VisualIndex()
        index.add_shot("s0", [1.0, 0.0, 0.0], {"crowd": 0.9})
        index.add_shot("s1", [0.0, 1.0, 0.0], {"flag": 0.8})
        index.add_shot("s2", [0.0, 0.0, 1.0], {"water": 0.7})
        return index

    def test_delete_shot_matches_rebuild(self):
        index = self._index()
        index.delete_shot("s1")
        assert index.shot_ids() == ["s0", "s2"]
        assert index.shot_count == 2
        assert index.tombstone_count == 1
        assert not index.has_shot("s1")
        ranked = index.similar_to_vector([0.0, 1.0, 0.0], limit=10)
        assert "s1" not in [shot_id for shot_id, _ in ranked]
        with pytest.raises(KeyError):
            index.delete_shot("s1")

    def test_compact_preserves_payloads(self):
        index = self._index()
        index.delete_shot("s0")
        features = index.features_of("s2")
        concepts = index.concept_scores_of("s2")
        generation = index.generation
        assert index.compact() == 1
        assert index.tombstone_count == 0
        assert index.generation > generation
        assert index.shot_ids() == ["s1", "s2"]
        assert index.features_of("s2") == features
        assert index.concept_scores_of("s2") == concepts


class TestEngineMutations:
    def test_index_documents_batch_is_atomic(self, small_corpus):
        engine = VideoRetrievalEngine(small_corpus.collection)
        existing = engine.inverted_index.document_ids()[0]
        count = engine.inverted_index.document_count
        with pytest.raises(ValueError):
            engine.index_documents({"eng-a": "flood summit", existing: "economy"})
        assert not engine.inverted_index.has_document("eng-a")
        assert engine.inverted_index.document_count == count

    def test_sharded_service_batch_is_atomic(self, small_corpus):
        # The sharded facade must validate across *all* shards before any
        # shard applies: "svc-a" and "svc-b" likely route to different
        # shards than the duplicate, and none of them may land.
        service = RetrievalService(
            small_corpus.collection,
            config=ServiceConfig(num_shards=4, result_cache_size=0),
        )
        try:
            index = service.engine.inverted_index
            existing = index.document_ids()[0]
            count = index.document_count
            with pytest.raises(ValueError):
                service.index_documents(
                    {"svc-a": "flood", "svc-b": "summit", existing: "economy"}
                )
            assert not index.has_document("svc-a")
            assert not index.has_document("svc-b")
            assert index.document_count == count
        finally:
            service.close()

    def test_delete_invalidates_result_cache(self, small_corpus):
        config = EngineConfig(result_cache_size=8)
        engine = VideoRetrievalEngine(small_corpus.collection, config=config)
        engine.index_document("cache-doc", "ceasefire blackout ceasefire")
        query = Query(text="ceasefire blackout")
        first = engine.search(query, limit=None)
        assert "cache-doc" in first.shot_ids()
        engine.search(query, limit=None)
        assert engine.result_cache_stats()["hits"] >= 1
        engine.delete_document("cache-doc")
        after = engine.search(query, limit=None)
        assert "cache-doc" not in after.shot_ids()
        # The served post-delete ranking must match a cache-less engine
        # that never saw the document at all.
        reference = VideoRetrievalEngine(
            small_corpus.collection, config=EngineConfig(result_cache_size=0)
        )
        expected = reference.search(query, limit=None)
        assert after.shot_ids() == expected.shot_ids()
        assert [i.score for i in after.items] == [i.score for i in expected.items]


class TestNearDuplicateScreening:
    def test_detector_validation(self):
        with pytest.raises(ValueError):
            NearDuplicateDetector(0.0)
        with pytest.raises(ValueError):
            NearDuplicateDetector(1.5)

    def test_screen_and_discard(self):
        detector = NearDuplicateDetector(threshold=1.0)
        # A 3-4-5 vector keeps the norm (and hence the cosine) float-exact.
        detector.add("a", {"flood": 3, "summit": 4})
        assert detector.tracked_count == 1
        assert detector.screen({"flood": 3, "summit": 4}) == "a"
        assert detector.screen({"flood": 6, "summit": 8}) == "a"  # same direction
        assert detector.screen({"flood": 1, "economy": 1}) is None
        assert detector.skipped_count == 2
        detector.discard("a")
        assert detector.screen({"flood": 3, "summit": 4}) is None
        assert detector.tracked_count == 0
        detector.discard("a")  # idempotent

    def test_partial_overlap_below_one(self):
        detector = NearDuplicateDetector(threshold=0.9)
        detector.add("a", {"flood": 10, "summit": 10})
        assert detector.find_duplicate({"flood": 10, "summit": 9}) == "a"
        assert detector.find_duplicate({"flood": 10, "economy": 10}) is None

    def test_engine_screens_duplicates_at_ingest(self, small_corpus):
        config = EngineConfig(near_duplicate_threshold=1.0, result_cache_size=0)
        engine = VideoRetrievalEngine(small_corpus.collection, config=config)
        engine.index_document("dup-a", "ceasefire summit verdict")
        engine.index_document("dup-b", "ceasefire summit verdict")
        assert engine.inverted_index.has_document("dup-a")
        assert not engine.inverted_index.has_document("dup-b")
        stats = engine.near_duplicate_stats()
        assert stats["skipped"] == 1.0
        # Deleting the original frees the content for re-ingest.
        engine.delete_document("dup-a")
        engine.index_document("dup-b", "ceasefire summit verdict")
        assert engine.inverted_index.has_document("dup-b")
        # An update refreshes the screened vector: the old content is no
        # longer a duplicate, the new content is.
        engine.update_document("dup-b", "wildfire wildfire wildfire border border border border")
        engine.index_document("dup-c", "ceasefire summit verdict")
        assert engine.inverted_index.has_document("dup-c")
        assert engine.near_duplicate_stats()["skipped"] == 1.0
        engine.index_document("dup-d", "wildfire wildfire wildfire border border border border")
        assert not engine.inverted_index.has_document("dup-d")
        assert engine.near_duplicate_stats()["skipped"] == 2.0

    def test_disabled_by_default(self, small_corpus):
        engine = VideoRetrievalEngine(small_corpus.collection)
        assert engine.near_duplicate_stats() is None
        service = RetrievalService(small_corpus.collection)
        try:
            assert service.engine.near_duplicate_stats() is None
        finally:
            service.close()

    def test_service_config_threads_threshold(self, small_corpus):
        with pytest.raises(ValueError):
            ServiceConfig(near_duplicate_threshold=-0.5)
        config = ServiceConfig(near_duplicate_threshold=0.99, result_cache_size=0)
        assert config.engine_config().near_duplicate_threshold == 0.99
        service = RetrievalService(small_corpus.collection, config=config)
        try:
            service.index_documents({"svc-dup-a": "blackout harvest blackout"})
            service.index_documents({"svc-dup-b": "blackout harvest blackout"})
            assert not service.engine.inverted_index.has_document("svc-dup-b")
            assert service.engine.near_duplicate_stats()["skipped"] == 1.0
        finally:
            service.close()


class TestBackgroundCompactor:
    def test_validation(self, small_corpus):
        engine = VideoRetrievalEngine(small_corpus.collection)
        with pytest.raises(ValueError):
            BackgroundCompactor(engine, tombstone_ratio=0.0)

    def test_ratio_gate_and_reclaim(self, small_corpus):
        engine = VideoRetrievalEngine(
            small_corpus.collection, config=EngineConfig(result_cache_size=0)
        )
        for i in range(8):
            engine.index_document(f"bg-{i}", f"flood summit economy {i}")
        compactor = BackgroundCompactor(engine, tombstone_ratio=0.01, interval=30.0)
        try:
            assert compactor.run_once() is None  # no tombstones yet
            for i in range(4):
                engine.delete_document(f"bg-{i}")
            before = engine_state_digest(engine)
            stats = compactor.run_once()
            assert stats is not None and stats.reclaimed == 4
            assert compactor.passes == 1
            assert compactor.reclaimed == 4
            assert engine.inverted_index.tombstone_count == 0
            assert engine_state_digest(engine) == before
        finally:
            compactor.close(final_pass=False)
        compactor.close()  # idempotent

    def test_close_runs_final_pass(self, small_corpus):
        engine = VideoRetrievalEngine(
            small_corpus.collection, config=EngineConfig(result_cache_size=0)
        )
        engine.index_document("bg-final", "verdict launch")
        compactor = BackgroundCompactor(engine, tombstone_ratio=0.001, interval=30.0)
        engine.delete_document("bg-final")
        compactor.close(final_pass=True)
        assert compactor.reclaimed >= 1
        assert engine.inverted_index.tombstone_count == 0


def _mutate(service, ops):
    """Apply the module's canonical delete/update script to a service."""
    doc_ids = [op[1] for op in ops if op[0] == "doc"]
    shot_ids = [op[1] for op in ops if op[0] == "shot"]
    deleted_docs = doc_ids[::4]
    updated_docs = doc_ids[1::4]
    deleted_shots = shot_ids[::5]
    for document_id in deleted_docs:
        service.delete_document(document_id)
    for document_id in updated_docs:
        service.update_document(document_id, f"verdict ceasefire {document_id}")
    for shot_id in deleted_shots:
        service.delete_shot(shot_id)
    return deleted_docs, updated_docs, deleted_shots


def _rebuild_over_survivors(corpus, config, ops, deleted_docs, updated_docs,
                            deleted_shots):
    """A from-scratch service that only ever saw the surviving content."""
    service = RetrievalService(corpus.collection, config=config)
    for op in ops:
        if op[0] == "doc":
            if op[1] in deleted_docs or op[1] in updated_docs:
                continue
            service.index_documents({op[1]: op[2]})
        else:
            if op[1] in deleted_shots:
                continue
            service.index_shot(op[1], op[2], op[3])
    # Updated documents land last: an update relocates the document to the
    # dense tail, so the compacted mutant's slot order has them at the end.
    for document_id in updated_docs:
        service.index_documents({document_id: f"verdict ceasefire {document_id}"})
    return service


def _matrix_queries(service):
    anchor = service.engine.visual_index.shot_ids()[0]  # collection shot
    return [
        Query(text="election flood summit"),
        Query(text="verdict ceasefire"),
        Query(text="wildfire border vaccine launch strike"),
        Query(text="economy blackout", example_shot_ids=[anchor]),
    ]


def _assert_same_rankings(reference, candidate, queries):
    for query in queries:
        expected = reference.search(query, limit=None)
        actual = candidate.search(query, limit=None)
        assert expected.shot_ids() == actual.shot_ids(), query
        assert [item.score for item in expected.items] == [
            item.score for item in actual.items
        ], query


class TestDifferentialMatrix:
    """Satellite: delete+compact ≡ rebuild, across scorers × shards × executors."""

    def _run(self, corpus, scorer, num_shards, executor):
        config = ServiceConfig(
            scorer=scorer,
            num_shards=num_shards,
            executor=executor,
            process_workers=2,
            result_cache_size=0,
        )
        mutant = RetrievalService(corpus.collection, config=config)
        reference = None
        try:
            ops = synthetic_ingest_ops(
                26, seed=11, feature_dim=service_feature_dim(mutant)
            )
            apply_ingest(mutant, ops)
            deleted_docs, updated_docs, deleted_shots = _mutate(mutant, ops)
            reference = _rebuild_over_survivors(
                corpus, config, ops, deleted_docs, updated_docs, deleted_shots
            )
            queries = _matrix_queries(mutant)
            for query in queries:
                hits = mutant.engine.search(query, limit=None).shot_ids()
                for gone in deleted_docs + deleted_shots:
                    assert gone not in hits
            _assert_same_rankings(reference.engine, mutant.engine, queries)
            # Compaction must not move a single ranking bit.
            before = engine_state_digest(mutant.engine)
            stats = mutant.compact()
            assert stats.reclaimed == (
                len(deleted_docs) + len(updated_docs) + len(deleted_shots)
            )
            assert engine_state_digest(mutant.engine) == before
            _assert_same_rankings(reference.engine, mutant.engine, queries)
            # And the compacted state digests identically to the rebuild.
            assert engine_state_digest(mutant.engine) == engine_state_digest(
                reference.engine
            )
        finally:
            mutant.close()
            if reference is not None:
                reference.close()

    @pytest.mark.parametrize("scorer", ["bm25", "tfidf", "lm"])
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_delete_compact_equals_rebuild(self, analysed_corpus, scorer,
                                           num_shards):
        self._run(analysed_corpus, scorer, num_shards, "thread")

    @pytest.mark.multiproc
    def test_delete_compact_equals_rebuild_process_executor(self, analysed_corpus):
        self._run(analysed_corpus, "bm25", 3, "process")


class TestEngineCompaction:
    def test_compact_engine_noop_without_tombstones(self, small_corpus):
        engine = VideoRetrievalEngine(small_corpus.collection)
        stats = compact_engine(engine)
        assert stats.reclaimed == 0
        assert stats.retries == 0

    def test_compact_preserves_object_identity(self, small_corpus):
        # Stats views and sharded scorers hold direct references to the
        # index objects; adoption must swap internals, never the objects.
        engine = VideoRetrievalEngine(small_corpus.collection)
        engine.index_document("ident-a", "flood summit")
        engine.index_document("ident-b", "economy verdict")
        engine.delete_document("ident-a")
        text_index = engine.inverted_index
        visual_index = engine.visual_index
        stats = engine.compact()
        assert stats.documents_reclaimed == 1
        assert engine.inverted_index is text_index
        assert engine.visual_index is visual_index
        assert text_index.has_document("ident-b")
