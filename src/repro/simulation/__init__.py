"""Simulated-user evaluation framework: users, strategies, sessions, populations, replay."""

from repro.simulation.noise import JudgementModel
from repro.simulation.population import (
    PopulationMember,
    assign_topics,
    generate_population,
)
from repro.simulation.replay import (
    build_graph_from_logs,
    indicator_observations_from_logs,
    replay_evidence,
    shot_durations_from_collection,
)
from repro.simulation.session import IterationOutcome, SessionOutcome, SessionSimulator
from repro.simulation.strategies import (
    DriftingQueryStrategy,
    QueryStrategy,
    TitleQueryStrategy,
)
from repro.simulation.user import (
    SimulatedUser,
    casual_user,
    diligent_user,
    lazy_user,
    standard_personas,
)

__all__ = [
    "JudgementModel",
    "PopulationMember",
    "assign_topics",
    "generate_population",
    "build_graph_from_logs",
    "indicator_observations_from_logs",
    "replay_evidence",
    "shot_durations_from_collection",
    "IterationOutcome",
    "SessionOutcome",
    "SessionSimulator",
    "DriftingQueryStrategy",
    "QueryStrategy",
    "TitleQueryStrategy",
    "SimulatedUser",
    "casual_user",
    "diligent_user",
    "lazy_user",
    "standard_personas",
]
