"""Concurrent-serving tests: stress, parallel-batch equivalence, eviction races.

The service's fine-grained locking claims are only trustworthy under real
thread interleaving, so these tests hammer a live service from 8–16 threads
and assert the invariants that matter: no deadlocks, no lost updates,
per-session iteration counts equal to requests issued, parallel
``search_batch`` bit-identical to sequential execution, and LRU eviction
that surfaces :class:`SessionExpiredError` instead of tearing down
mid-flight work.

All tests here carry the ``concurrency`` marker (``pytest -m concurrency``).
"""

from __future__ import annotations

import threading
from typing import Dict, List

import pytest

from repro.feedback import EventKind, InteractionEvent
from repro.service import (
    FeedbackBatch,
    RetrievalService,
    SearchRequest,
    ServiceConfig,
    SessionExpiredError,
    SessionNotFoundError,
)
from repro.utils.rng import RandomSource

pytestmark = pytest.mark.concurrency

#: Generous upper bound for joining worker threads; hitting it means a
#: deadlock, which the tests report as a failure rather than hanging CI.
JOIN_TIMEOUT = 60.0


def _topic_query(corpus, index: int = 0):
    topic = corpus.topics.topics()[index % len(corpus.topics.topics())]
    return topic, " ".join(topic.query_terms[:2])


def _play_event(shot_id: str, timestamp: float = 1.0) -> InteractionEvent:
    return InteractionEvent(
        kind=EventKind.PLAY_CLICK, timestamp=timestamp, shot_id=shot_id
    )


def _run_threads(workers: List[threading.Thread]) -> None:
    """Start, join (bounded), and fail loudly on stuck threads."""
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=JOIN_TIMEOUT)
    stuck = [worker.name for worker in workers if worker.is_alive()]
    assert not stuck, f"threads deadlocked or still running: {stuck}"


class TestStress:
    def test_mixed_operations_no_deadlock_no_bare_keyerror(self, small_corpus):
        """12 threads hammer every public entry point against a small LRU pool.

        Session churn guarantees eviction races; the only acceptable errors
        are the typed session-lifecycle ones (``SessionExpiredError`` /
        ``SessionNotFoundError``) — a bare ``KeyError`` or any other
        exception is a bug.
        """
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=8)
        )
        _topic, query = _topic_query(small_corpus)
        shot_ids = [shot.shot_id for shot in small_corpus.collection.iter_shots()]
        unexpected: List[BaseException] = []

        def hammer(worker_index: int) -> None:
            rng = RandomSource(1234).spawn("hammer", worker_index)
            user_id = f"user{worker_index % 5}"  # users shared across threads
            session_id = None
            for _ in range(40):
                action = rng.choice(
                    ["open", "search", "search_implicit", "feedback", "close", "list"]
                )
                try:
                    if action == "open":
                        session_id = service.open_session(user_id).session_id
                    elif action == "search" and session_id is not None:
                        service.search(
                            SearchRequest(
                                user_id=user_id, query=query, session_id=session_id
                            )
                        )
                    elif action == "search_implicit":
                        service.search(SearchRequest(user_id=user_id, query=query))
                    elif action == "feedback":
                        service.submit_feedback(
                            FeedbackBatch(
                                user_id=user_id,
                                events=(_play_event(rng.choice(shot_ids)),),
                                session_id=session_id,
                            )
                        )
                    elif action == "close" and session_id is not None:
                        service.close_session(session_id)
                        session_id = None
                    elif action == "list":
                        service.list_sessions(user_id)
                except (SessionExpiredError, SessionNotFoundError, PermissionError):
                    # Expected lifecycle races: the session aged out, was
                    # closed by a sibling thread, or implicit addressing
                    # resolved another thread's session for this user.
                    session_id = None
                except BaseException as error:  # noqa: BLE001 - collected for assert
                    unexpected.append(error)
                    raise

        _run_threads(
            [
                threading.Thread(target=hammer, args=(index,), name=f"hammer-{index}")
                for index in range(12)
            ]
        )
        assert unexpected == []
        assert service.session_count <= 8

    def test_iteration_counts_equal_requests_issued(self, small_corpus):
        """Every session's iteration count equals the searches routed to it."""
        service = RetrievalService.from_corpus(small_corpus)
        _topic, query = _topic_query(small_corpus)
        sessions = [service.open_session(f"user{index}") for index in range(6)]
        issued: Dict[str, int] = {info.session_id: 0 for info in sessions}
        issued_lock = threading.Lock()

        def worker(worker_index: int) -> None:
            rng = RandomSource(77).spawn("issue", worker_index)
            for _ in range(25):
                info = sessions[rng.randint(0, len(sessions) - 1)]
                service.search(
                    SearchRequest(
                        user_id=info.user_id,
                        query=query,
                        session_id=info.session_id,
                    )
                )
                with issued_lock:
                    issued[info.session_id] += 1

        _run_threads(
            [
                threading.Thread(target=worker, args=(index,), name=f"issue-{index}")
                for index in range(8)
            ]
        )
        for info in sessions:
            assert (
                service.session_info(info.session_id).iteration_count
                == issued[info.session_id]
            )

    def test_no_lost_feedback_updates(self, small_corpus):
        """16 threads submit disjoint feedback to one session; nothing is lost."""
        service = RetrievalService.from_corpus(small_corpus)
        info = service.open_session("alice", policy="implicit")
        shot_ids = [shot.shot_id for shot in small_corpus.collection.iter_shots()]
        per_thread = 6
        threads = 16
        assert len(shot_ids) >= threads * per_thread

        def worker(worker_index: int) -> None:
            start = worker_index * per_thread
            for offset in range(per_thread):
                shot_id = shot_ids[start + offset]
                service.submit_feedback(
                    FeedbackBatch(
                        user_id="alice",
                        events=(_play_event(shot_id),),
                        session_id=info.session_id,
                    )
                )

        _run_threads(
            [
                threading.Thread(target=worker, args=(index,), name=f"feedback-{index}")
                for index in range(threads)
            ]
        )
        final = service.session_info(info.session_id)
        assert final.seen_shot_count == threads * per_thread
        evidence = service.adaptive_session(info.session_id).implicit_evidence()
        assert set(evidence) == set(shot_ids[: threads * per_thread])


class TestParallelBatchEquivalence:
    """``search_batch(max_workers>1)`` must be bit-identical to sequential."""

    def _diverged_requests(self, service, corpus, policy: str, users: int = 6):
        """Open per-user sessions under a policy and diverge them via feedback."""
        topic, query = _topic_query(corpus)
        infos = [
            service.open_session(f"{policy}-user{index}", policy=policy,
                                 topic_id=topic.topic_id)
            for index in range(users)
        ]
        requests = [
            SearchRequest(user_id=info.user_id, query=query,
                          session_id=info.session_id)
            for info in infos
        ]
        first = [service.search(request) for request in requests]
        for index in range(0, users, 2):  # even users diverge, odd stay clean
            hits = first[index].top(1 + index // 2)
            service.submit_feedback(
                FeedbackBatch(
                    user_id=infos[index].user_id,
                    events=tuple(
                        _play_event(hit.shot_id, timestamp=float(rank))
                        for rank, hit in enumerate(hits, start=1)
                    ),
                    session_id=infos[index].session_id,
                )
            )
        return requests

    @pytest.mark.parametrize("scorer", ["bm25", "tfidf", "lm"])
    @pytest.mark.parametrize("policy", ["baseline", "profile", "implicit", "combined"])
    def test_parallel_batch_bit_identical(self, small_corpus, scorer, policy):
        config = ServiceConfig(scorer=scorer)
        sequential_service = RetrievalService.from_corpus(small_corpus, config=config)
        parallel_service = RetrievalService.from_corpus(small_corpus, config=config)

        seq_requests = self._diverged_requests(sequential_service, small_corpus, policy)
        par_requests = self._diverged_requests(parallel_service, small_corpus, policy)

        sequential = [sequential_service.search(r) for r in seq_requests]
        parallel = parallel_service.search_batch(par_requests, max_workers=4)

        assert len(parallel) == len(sequential)
        for seq, par in zip(sequential, parallel):
            assert seq.shot_ids() == par.shot_ids()
            assert seq.scores() == par.scores()
            assert seq.iteration == par.iteration

    def test_parallel_batch_matches_own_sequential_batch(self, small_corpus):
        """Same service, same requests: workers=1 and workers=8 agree exactly."""
        service_a = RetrievalService.from_corpus(small_corpus)
        service_b = RetrievalService.from_corpus(small_corpus)
        requests_a = self._diverged_requests(service_a, small_corpus, "combined")
        requests_b = self._diverged_requests(service_b, small_corpus, "combined")
        ones = service_a.search_batch(requests_a, max_workers=1)
        eights = service_b.search_batch(requests_b, max_workers=8)
        for one, eight in zip(ones, eights):
            assert one.shot_ids() == eight.shot_ids()
            assert one.scores() == eight.scores()

    def test_batch_requests_same_session_stay_ordered(self, small_corpus):
        """Multiple batch requests against one session keep arrival order."""
        service = RetrievalService.from_corpus(small_corpus)
        _topic, query = _topic_query(small_corpus)
        info = service.open_session("alice")
        requests = [
            SearchRequest(user_id="alice", query=query, session_id=info.session_id)
            for _ in range(5)
        ]
        responses = service.search_batch(requests, max_workers=4)
        assert [response.iteration for response in responses] == [1, 2, 3, 4, 5]

    def test_invalid_max_workers_rejected(self, small_corpus):
        service = RetrievalService.from_corpus(small_corpus)
        with pytest.raises(ValueError):
            service.search_batch([], max_workers=0)

    def test_batch_survives_session_pool_overflow(self, small_corpus):
        """Implicit requests whose bound session is evicted mid-batch are
        re-resolved onto fresh sessions instead of aborting the batch."""
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=2)
        )
        _topic, query = _topic_query(small_corpus)
        requests = [
            SearchRequest(user_id=f"overflow-user{index}", query=query)
            for index in range(5)  # more users than the pool holds
        ]
        for workers in (1, 4):
            responses = service.search_batch(requests, max_workers=workers)
            assert len(responses) == len(requests)
            assert all(len(response) > 0 for response in responses)
            assert [response.user_id for response in responses] == [
                request.user_id for request in requests
            ]

    def test_batch_explicit_session_evicted_mid_batch_raises_expired(
        self, small_corpus
    ):
        """An explicitly addressed request keeps strict semantics: if its
        session ages out during the batch, the caller sees the typed
        expiry, not a silent re-open."""
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=1)
        )
        _topic, query = _topic_query(small_corpus)
        pinned = service.open_session("pinned")
        requests = [
            SearchRequest(user_id="pinned", query=query,
                          session_id=pinned.session_id),
            # Binding this implicit request opens a session and evicts the
            # pinned one before any search runs.
            SearchRequest(user_id="interloper", query=query),
        ]
        with pytest.raises(SessionExpiredError):
            service.search_batch(requests, max_workers=2)


class TestEvictionRaces:
    def test_evicted_session_raises_session_expired(self, small_corpus):
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=2)
        )
        _topic, query = _topic_query(small_corpus)
        first = service.open_session("u1")
        service.open_session("u2")
        service.open_session("u3")  # evicts u1's session
        with pytest.raises(SessionExpiredError) as excinfo:
            service.search(
                SearchRequest(user_id="u1", query=query, session_id=first.session_id)
            )
        assert "evicted" in str(excinfo.value)
        # The typed error still honours the historical KeyError contract,
        # but no caller ever sees a *bare* KeyError.
        assert isinstance(excinfo.value, SessionNotFoundError)
        assert isinstance(excinfo.value, KeyError)
        with pytest.raises(SessionExpiredError):
            service.submit_feedback(
                FeedbackBatch(user_id="u1", events=(),
                              session_id=first.session_id)
            )

    def test_closed_session_still_plain_not_found(self, small_corpus):
        service = RetrievalService.from_corpus(small_corpus)
        info = service.open_session("u1")
        service.close_session(info.session_id)
        with pytest.raises(SessionNotFoundError) as excinfo:
            service.session_info(info.session_id)
        assert not isinstance(excinfo.value, SessionExpiredError)

    def test_implicit_request_survives_eviction(self, small_corpus):
        """Implicitly addressed search after eviction opens a fresh session."""
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=2)
        )
        _topic, query = _topic_query(small_corpus)
        old = service.open_session("alice")
        service.open_session("bob")
        service.open_session("carol")  # evicts alice's idle session
        response = service.search(SearchRequest(user_id="alice", query=query))
        assert response.session_id != old.session_id
        assert response.iteration == 1

    def test_midflight_feedback_completes_before_eviction(self, small_corpus):
        """Eviction waits for a batch already inside the session; the batch
        is fully applied (not dropped), and only *later* requests see
        ``SessionExpiredError``."""
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=2)
        )
        victim = service.open_session("victim", policy="implicit")
        service.open_session("other")
        session = service.adaptive_session(victim.session_id)
        shot_ids = [shot.shot_id for shot in small_corpus.collection.iter_shots()][:3]

        entered = threading.Event()
        release = threading.Event()
        original_observe = session.observe

        def slow_observe(events):
            entered.set()
            assert release.wait(timeout=JOIN_TIMEOUT), "test gate never released"
            return original_observe(events)

        session.observe = slow_observe  # instance-level patch
        feedback_result: List[object] = []

        def feedback_worker() -> None:
            feedback_result.append(
                service.submit_feedback(
                    FeedbackBatch(
                        user_id="victim",
                        events=tuple(_play_event(shot_id) for shot_id in shot_ids),
                        session_id=victim.session_id,
                    )
                )
            )

        def evictor_worker() -> None:
            # Opening two sessions pushes "victim" (the LRU entry) out; the
            # eviction must block until the in-flight feedback finishes.
            service.open_session("newcomer1")
            service.open_session("newcomer2")

        feedback_thread = threading.Thread(target=feedback_worker, name="feedback")
        feedback_thread.start()
        assert entered.wait(timeout=JOIN_TIMEOUT)

        evictor_thread = threading.Thread(target=evictor_worker, name="evictor")
        evictor_thread.start()
        evictor_thread.join(timeout=0.3)
        assert evictor_thread.is_alive(), "eviction did not wait for in-flight work"

        release.set()
        feedback_thread.join(timeout=JOIN_TIMEOUT)
        evictor_thread.join(timeout=JOIN_TIMEOUT)
        assert not feedback_thread.is_alive() and not evictor_thread.is_alive()

        # The mid-flight batch was applied in full before the teardown...
        assert feedback_result and feedback_result[0].seen_shot_count == len(shot_ids)
        # ...and the session is now expired for any later request.
        with pytest.raises(SessionExpiredError):
            service.submit_feedback(
                FeedbackBatch(user_id="victim", events=(),
                              session_id=victim.session_id)
            )


class TestWriterPath:
    def test_concurrent_searches_during_index_mutation(self, small_corpus):
        """Readers never observe a half-applied index mutation."""
        service = RetrievalService.from_corpus(small_corpus)
        _topic, query = _topic_query(small_corpus)
        errors: List[BaseException] = []
        stop = threading.Event()

        def searcher(worker_index: int) -> None:
            user_id = f"reader{worker_index}"
            try:
                while not stop.is_set():
                    response = service.search(
                        SearchRequest(user_id=user_id, query=query)
                    )
                    assert len(response) > 0
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        searchers = [
            threading.Thread(target=searcher, args=(index,), name=f"reader-{index}")
            for index in range(6)
        ]
        for thread in searchers:
            thread.start()
        try:
            generation_before = service.engine.inverted_index.generation
            for round_index in range(5):
                service.index_documents(
                    {
                        f"NEWDOC{round_index:04d}": f"{query} breaking update "
                        f"round {round_index}"
                    }
                )
            assert (
                service.engine.inverted_index.generation
                == generation_before + 5
            )
        finally:
            stop.set()
            for thread in searchers:
                thread.join(timeout=JOIN_TIMEOUT)
        assert errors == []
        # The freshly indexed documents are searchable once the writer exits.
        hits = service.engine.search_text(query, limit=200)
        assert any(item.shot_id.startswith("NEWDOC") for item in hits)

    def test_batch_cache_never_serves_pre_mutation_rankings(self, small_corpus):
        """A mutation landing mid-batch invalidates the per-batch cache too:
        the generation pair is part of the cache key, so a repeated query
        after ``index_documents`` re-evaluates against the new index."""
        service = RetrievalService.from_corpus(small_corpus)
        engine = service.engine
        _topic, query = _topic_query(small_corpus)
        with engine.batch_search_cache():
            before = engine.search_text(query, limit=200)
            service.index_documents({"MUTDOC001": f"{query} {query} mid-batch"})
            after = engine.search_text(query, limit=200)
        assert not any(item.shot_id == "MUTDOC001" for item in before)
        assert any(item.shot_id == "MUTDOC001" for item in after)


class TestShardedConcurrentServing:
    """Concurrent serving over the sharded engine, with randomized queries.

    Reuses the seeded property-style generators from ``conftest`` (shared
    with the sharding-equivalence suite): many threads fire randomized
    multimodal queries at a sharded service while the single-engine service
    answers the same queries sequentially; every response pair must be
    bit-identical, and the scatter-gather pool must never deadlock against
    the session or engine locks.
    """

    def test_concurrent_randomized_queries_match_unsharded(
        self, sharding_corpus, make_random_queries
    ):
        random_queries = make_random_queries
        baseline = RetrievalService.from_corpus(
            sharding_corpus, config=ServiceConfig(result_cache_size=0)
        )
        sharded = RetrievalService.from_corpus(
            sharding_corpus,
            config=ServiceConfig(result_cache_size=0, num_shards=3),
        )
        queries = random_queries(sharding_corpus, seed=424_242, count=24)
        expected = [
            baseline.engine.search(query, limit=20) for query in queries
        ]

        results: Dict[int, object] = {}
        errors: List[BaseException] = []

        def worker(worker_index: int) -> None:
            try:
                for query_index in range(worker_index, len(queries), 8):
                    results[query_index] = sharded.engine.search(
                        queries[query_index], limit=20
                    )
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        _run_threads(
            [
                threading.Thread(target=worker, args=(index,), name=f"shard-q{index}")
                for index in range(8)
            ]
        )
        assert errors == []
        assert len(results) == len(queries)
        for query_index, expected_list in enumerate(expected):
            actual = results[query_index]
            assert actual.shot_ids() == expected_list.shot_ids()
            assert [item.score for item in actual.items] == [
                item.score for item in expected_list.items
            ]

    def test_sharded_writer_path_under_concurrent_searches(self, sharding_corpus):
        """Writes route to owning shards while searches hammer the engine."""
        service = RetrievalService.from_corpus(
            sharding_corpus, config=ServiceConfig(num_shards=4)
        )
        _topic, query = _topic_query(sharding_corpus)
        stop = threading.Event()
        errors: List[BaseException] = []

        def searcher(worker_index: int) -> None:
            try:
                while not stop.is_set():
                    service.engine.search_text(query, limit=20)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        searchers = [
            threading.Thread(target=searcher, args=(index,), name=f"sreader-{index}")
            for index in range(6)
        ]
        for thread in searchers:
            thread.start()
        try:
            generation_before = service.engine.inverted_index.generation
            for round_index in range(5):
                service.index_documents(
                    {f"SHARDDOC{round_index:04d}": f"{query} sharded update"}
                )
            assert (
                service.engine.inverted_index.generation == generation_before + 5
            )
        finally:
            stop.set()
            for thread in searchers:
                thread.join(timeout=JOIN_TIMEOUT)
        assert errors == []
        hits = service.engine.search_text(query, limit=200)
        assert any(item.shot_id.startswith("SHARDDOC") for item in hits)
        # Every written document landed on exactly the shard the router names.
        index = service.engine.sharded_inverted_index
        for round_index in range(5):
            document_id = f"SHARDDOC{round_index:04d}"
            owner = index.router.shard_of(document_id)
            for shard_number, shard in enumerate(index.shard_indexes):
                assert shard.has_document(document_id) == (shard_number == owner)
