"""Benchmark regression guard: smoke throughput vs committed baselines.

Runs the E12 (scoring kernel), E13 (concurrent service), E15 (sharded
scatter-gather), E16 (durability), E17 (multi-process scatter), E18
(async serving edge), E19 (replication tier) and E20 (mutable corpus)
benchmarks in their smoke
configurations and fails if any guarded
throughput metric drops more than ``BENCH_REGRESSION_TOLERANCE`` (default
30%) below the ``smoke_baseline`` section committed in ``BENCH_e12.json``
/ ``BENCH_e13.json`` / ``BENCH_e15.json`` / ``BENCH_e16.json`` /
``BENCH_e17.json`` / ``BENCH_e18.json`` / ``BENCH_e19.json`` /
``BENCH_e20.json``.  Every
equivalence assertion inside the benches still runs, so a ranking
regression fails before a throughput one.

A committed BENCH json **must** carry a ``smoke_baseline`` section: a
missing or malformed section is itself a guard failure (with a clear
message naming the file and the ``--update`` remedy), never a silent pass
or a ``KeyError``.

Absolute throughput depends on the host, so the committed baselines are
deliberately coarse (smoke corpora, small round counts) and the tolerance
is wide; on sufficiently different hardware, loosen it via the
environment variable rather than silencing the guard::

    BENCH_REGRESSION_TOLERANCE=0.5 python benchmarks/check_bench_regression.py

``--update`` re-measures and rewrites the ``smoke_baseline`` sections
(run it on the reference hardware when a PR legitimately shifts the
floor).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

import bench_e12_scoring_kernel as e12  # noqa: E402
import bench_e13_concurrent_service as e13  # noqa: E402
import bench_e15_sharded_retrieval as e15  # noqa: E402
import bench_e16_durability as e16  # noqa: E402
import bench_e17_multiproc as e17  # noqa: E402
import bench_e18_serving as e18  # noqa: E402
import bench_e19_replication as e19  # noqa: E402
import bench_e20_mutable_corpus as e20  # noqa: E402

DEFAULT_TOLERANCE = 0.30

#: Guarded metrics per baseline file: {path: {metric: extractor}}.
_SMOKE_ROUNDS_E12 = 6
_SMOKE_USERS_E13 = 8
_SMOKE_ROUNDS_E13 = 3
_SMOKE_ROUNDS_E15 = 3
_SMOKE_OPS_E16 = 128
_SMOKE_ROUNDS_E17 = 3
_SMOKE_ROUNDS_E18 = 2
_SMOKE_REQUESTS_E18 = 24
_SMOKE_OPS_E19 = 96
_SMOKE_READS_E19 = 32
_SMOKE_OPS_E20 = 128
_SMOKE_EPOCHS_E20 = 3
_SMOKE_MUTATIONS_E20 = 8


def _smoke_corpus():
    from repro.collection import CollectionConfig, generate_corpus

    return generate_corpus(
        seed=7, config=CollectionConfig(days=4, stories_per_day=5, topic_count=6)
    )


def measure_e12(corpus):
    """E12 smoke metrics (kernel + batch throughput, equivalence verified)."""
    scorer_rows = e12._text_scorer_rows(corpus, rounds=_SMOKE_ROUNDS_E12, verify=True)
    batch_row = e12._batch_row(corpus, rounds=3)
    metrics = {
        f"{row['scorer']}_qps": row["qps"]
        for row in scorer_rows
        if row["scorer"] in ("bm25", "tfidf", "lm")
    }
    metrics["service_batch_qps"] = batch_row["qps"]
    return metrics


def measure_e13(corpus):
    """E13 smoke metrics (parallel batch throughput, rankings verified)."""
    rows = e13._batch_rows(corpus, users=_SMOKE_USERS_E13, rounds=_SMOKE_ROUNDS_E13)
    by_key = {(row["workload"], row["workers"]): row for row in rows}
    return {
        "cpu_parallel_qps": by_key[("cpu", e13.PARALLEL_WORKERS)]["qps"],
        "iostall_parallel_qps": by_key[("iostall", e13.PARALLEL_WORKERS)]["qps"],
        "iostall_speedup": by_key[("iostall", e13.PARALLEL_WORKERS)]["speedup"],
    }


def measure_e15(corpus):
    """E15 smoke metrics (scatter-gather speedup, rankings verified)."""
    e15._assert_engine_equivalence(corpus)
    rows = e15._scatter_rows(corpus, rounds=_SMOKE_ROUNDS_E15)
    by_shards = {row["shards"]: row for row in rows}
    return {
        "iostall_single_qps": by_shards[1]["qps"],
        "iostall_sharded_qps": by_shards[e15.BENCH_SHARDS]["qps"],
        "iostall_sharded_speedup": by_shards[e15.BENCH_SHARDS]["speedup"],
    }


def measure_e16(corpus):
    """E16 smoke metrics (durable ingest + recovery, digests verified).

    Only the host-stable higher-is-better pair is guarded: ingest under
    ``fsync=never`` (no device sync latency in the number) and recovery
    throughput.  Write amplification and the fsync'd rows are recorded in
    ``BENCH_e16.json`` for trajectory but never guarded.
    """
    ingest_rows, recovery_row = e16.run_experiment(
        corpus, count=_SMOKE_OPS_E16, repeats=2
    )
    by_mode = {row["mode"]: row for row in ingest_rows}
    return {
        "ingest_never_ops_per_s": by_mode["durable-never"]["ops_per_s"],
        "recovery_ops_per_s": recovery_row["recovery_ops_per_s"],
    }


def measure_e17(corpus):
    """E17 smoke metrics (process-scatter speedup, rankings verified).

    The guarded ``cpu_speedup_4workers`` is the 4-worker process-scatter
    speedup over the single engine — relative, so it transfers across hosts
    better than raw qps, but still core-count dependent: the committed
    baseline records ``usable_cores`` and must be refreshed (--update) when
    the reference hardware's core budget changes.
    """
    e17._assert_engine_equivalence(corpus)
    rows = e17._cpu_rows(corpus, rounds=_SMOKE_ROUNDS_E17)
    by_key = {(row["row"], row["workers"]): row for row in rows}
    return {
        "cpu_speedup_4workers": e17.cpu_speedup_4workers(rows),
        "process_4worker_qps": by_key[("process", max(e17.WORKER_COUNTS))]["qps"],
    }


def measure_e18(corpus):
    """E18 smoke metrics (serving-edge throughput, digest + tail verified).

    Runs the full E18 experiment — digest equivalence through the serving
    edge, the straggler/deadline tail-latency assertion and the typed
    admission flood — and guards the clean-workload serving throughput.
    """
    rows = e18.run_experiment(
        corpus, rounds=_SMOKE_ROUNDS_E18, request_count=_SMOKE_REQUESTS_E18
    )
    by_row = {row["row"]: row for row in rows}
    return {"serve_qps": by_row["serve"]["qps"]}


def measure_e19(corpus):
    """E19 smoke metrics (replication tier, digest-verified throughout).

    Runs the full E19 experiment — replica apply to parity, read fan-out
    under a write-hammered primary, failover promotion, lag sampling —
    with every state digest asserted, and guards the two host-stable
    rates: replica apply throughput and promotion throughput.  The
    fan-out speedup and lag distribution depend on thread scheduling and
    stay unguarded.
    """
    apply_row, fanout_rows, promotion_row, lag_row = e19.run_experiment(
        corpus, count=_SMOKE_OPS_E19, reads=_SMOKE_READS_E19
    )
    e19._sanity_check(apply_row, fanout_rows, promotion_row, lag_row)
    return {
        "replica_apply_ops_per_s": apply_row["ops_per_s"],
        "promotion_ops_per_s": promotion_row["ops_per_s"],
    }


def measure_e20(corpus):
    """E20 smoke metrics (mutable corpus, differential-verified).

    Runs the full E20 experiment — delete/update/compact rankings
    asserted bit-identical to a rebuild over the survivors, continuous
    mix pinned byte-identical across worker counts — and guards the three
    host-stable rates.  The ingest/update rows are recorded in
    ``BENCH_e20.json`` for trajectory but never guarded.
    """
    mutation_rows, compaction_row, mix_row = e20.run_experiment(
        corpus,
        count=_SMOKE_OPS_E20,
        epochs=_SMOKE_EPOCHS_E20,
        mutations=_SMOKE_MUTATIONS_E20,
    )
    e20._sanity_check(mutation_rows, compaction_row, mix_row)
    by_row = {row["row"]: row for row in mutation_rows}
    return {
        "delete_ops_per_s": by_row["delete"]["ops_per_s"],
        "compact_slots_per_s": compaction_row["slots_per_s"],
        "mix_records_per_s": mix_row["records_per_s"],
    }


def check_baseline(name, baseline_path, payload, measured, tolerance):
    """Compare measured metrics against a committed payload.

    Returns a list of human-readable failure strings (empty when the
    payload passes), each naming the committed BENCH file the failing
    baseline lives in.  A payload without a well-formed ``smoke_baseline``
    mapping is a failure in itself — committed benchmark files must carry
    their baseline so a regression can never slip through as "nothing to
    compare against".
    """
    baseline = payload.get("smoke_baseline") if isinstance(payload, dict) else None
    if not isinstance(baseline, dict) or not baseline:
        return [
            f"{name} [{baseline_path}]: committed benchmark json has no "
            f"usable 'smoke_baseline' section; re-measure on the reference "
            f"hardware with "
            f"'python benchmarks/check_bench_regression.py --update'"
        ]
    failures = []
    for metric, measured_value in measured.items():
        baseline_value = baseline.get(metric)
        if not isinstance(baseline_value, (int, float)):
            failures.append(
                f"{name}.{metric} [{baseline_path}]: no numeric baseline "
                f"committed (found {baseline_value!r}); run --update"
            )
            continue
        floor = (1.0 - tolerance) * baseline_value
        status = "ok" if measured_value >= floor else "REGRESSION"
        print(
            f"{name}.{metric}: measured {measured_value:.1f} vs baseline "
            f"{baseline_value:.1f} (floor {floor:.1f}) -> {status}"
        )
        if measured_value < floor:
            failures.append(
                f"{name}.{metric} [{baseline_path}] dropped to "
                f"{measured_value:.1f} (< {floor:.1f}, baseline "
                f"{baseline_value:.1f})"
            )
    return failures


def load_payload(name, baseline_path):
    """Parse a committed BENCH json; failures are messages, not exceptions."""
    if not baseline_path.exists():
        return None, [
            f"{name}: committed baseline file {baseline_path} is missing; "
            f"run --update to create it"
        ]
    try:
        return json.loads(baseline_path.read_text()), []
    except ValueError as error:
        return None, [
            f"{name}: committed baseline file {baseline_path} is not "
            f"valid JSON ({error})"
        ]


def _update(baseline_path, measured):
    payload = json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    payload["smoke_baseline"] = {
        **measured,
        "note": (
            "Smoke-configuration throughput on the baseline hardware; the "
            "regression guard (check_bench_regression.py) fails when a "
            "metric drops more than the tolerance below these values."
        ),
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"smoke_baseline updated in {baseline_path.name}")


def main(argv):
    update = "--update" in argv
    tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", DEFAULT_TOLERANCE))
    corpus = _smoke_corpus()
    suites = (
        ("e12", BENCH_DIR / "BENCH_e12.json", measure_e12),
        ("e13", BENCH_DIR / "BENCH_e13.json", measure_e13),
        ("e15", BENCH_DIR / "BENCH_e15.json", measure_e15),
        ("e16", BENCH_DIR / "BENCH_e16.json", measure_e16),
        ("e17", BENCH_DIR / "BENCH_e17.json", measure_e17),
        ("e18", BENCH_DIR / "BENCH_e18.json", measure_e18),
        ("e19", BENCH_DIR / "BENCH_e19.json", measure_e19),
        ("e20", BENCH_DIR / "BENCH_e20.json", measure_e20),
    )
    failures = []
    for name, path, measure in suites:
        measured = measure(corpus)
        if update:
            _update(path, measured)
            continue
        payload, load_failures = load_payload(name, path)
        if load_failures:
            failures.extend(load_failures)
            continue
        failures.extend(
            check_baseline(name, path, payload, measured, tolerance)
        )
    if failures:
        print("\nbenchmark regression guard FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nbenchmark regression guard ok"
        + ("" if update else f" (tolerance {tolerance:.0%})")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
