"""E3 — How should implicit indicators be weighted? (RQ2)

The paper's second research question: "how these features have to be
weighted to increase retrieval performance".  We sweep the weighting schemes
(click-only, uniform, dwell-only, hand-tuned heuristic, explicit-only and a
scheme learned from logged sessions) and report the retrieval quality each
achieves when it drives the adaptive model for the same users and topics.
"""

from __future__ import annotations

from _common import print_table

from repro.core import implicit_only_policy
from repro.evaluation import ExperimentCondition
from repro.feedback import (
    IndicatorWeightLearner,
    binary_click_scheme,
    dwell_only_scheme,
    explicit_only_scheme,
    heuristic_scheme,
    uniform_scheme,
)
from repro.simulation import (
    indicator_observations_from_logs,
    shot_durations_from_collection,
)

USERS = 8
TOPICS_PER_USER = 2


def _learned_scheme(bench_runner, bench_corpus):
    """Fit indicator weights from an independent batch of logged sessions."""
    training_condition = ExperimentCondition(
        name="training_logs", policy=implicit_only_policy(), scheme=uniform_scheme(),
        user_count=6, topics_per_user=2, seed=777,
    )
    training = bench_runner.run_condition(training_condition)
    observations = indicator_observations_from_logs(
        training.session_logs(),
        shot_durations_from_collection(bench_corpus.collection),
    )
    return IndicatorWeightLearner().learn(observations, bench_corpus.qrels)


def run_experiment(bench_runner, bench_corpus):
    learned = _learned_scheme(bench_runner, bench_corpus)
    schemes = [
        binary_click_scheme(),
        uniform_scheme(),
        dwell_only_scheme(),
        explicit_only_scheme(),
        heuristic_scheme(),
        learned,
    ]
    conditions = [
        ExperimentCondition(
            name=scheme.name, policy=implicit_only_policy(), scheme=scheme,
            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=303,
        )
        for scheme in schemes
    ]
    results = bench_runner.run_conditions(conditions)
    rows = []
    for scheme in schemes:
        summary = results[scheme.name].summary()
        rows.append(
            {
                "scheme": scheme.name,
                "map": summary["map"],
                "precision@10": summary["precision@10"],
                "ndcg@10": summary["ndcg@10"],
            }
        )
    return rows, learned


def test_e3_weighting_schemes(benchmark, bench_runner, bench_corpus):
    rows, learned = benchmark.pedantic(
        run_experiment, args=(bench_runner, bench_corpus), rounds=1, iterations=1
    )
    print_table("E3: indicator weighting scheme sweep", rows)
    print("learned weights:", {k: round(v, 3) for k, v in sorted(learned.weights.items())
                               if v > 0})
    by_name = {row["scheme"]: row["map"] for row in rows}
    # Expected shape: informed weighting (heuristic or learned) beats the
    # naive click-only baseline; explicit-only trails the implicit schemes
    # because so few explicit judgements are given.
    assert max(by_name["heuristic"], by_name["learned"]) > by_name["binary_click"]
    assert max(by_name.values()) == max(by_name["heuristic"], by_name["learned"],
                                        by_name["uniform"], by_name["dwell_only"])
