"""The end-to-end news video framework.

This wires together the pieces the paper's framework proposal [10] names —
recording, analysing, indexing and retrieving news videos — plus the
personalised recommendation the scenario is ultimately about.  It is also
the substrate the iTV experiments run on: an iTV user does not search, they
are *presented* with a personalised rundown of recorded stories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.pipeline import AnalysisPipeline
from repro.collection.documents import Collection
from repro.core.adaptive import AdaptiveVideoRetrievalSystem
from repro.core.feedback_model import ImplicitFeedbackModel
from repro.feedback.graph import ImplicitGraph
from repro.newsframework.broadcast import BroadcastRecorder, RecordedBulletin
from repro.newsframework.recommender import (
    NewsRecommender,
    RecommendationWeights,
    StoryRecommendation,
)
from repro.newsframework.segmentation import SegmentationResult, StorySegmenter
from repro.profiles.profile import UserProfile
from repro.retrieval.engine import EngineConfig, VideoRetrievalEngine
from repro.service import RetrievalService, ServiceConfig


@dataclass
class IngestReport:
    """What happened when bulletins were ingested into the framework."""

    bulletins: List[RecordedBulletin] = field(default_factory=list)
    segmentation: List[SegmentationResult] = field(default_factory=list)
    shots_analysed: int = 0

    @property
    def bulletin_count(self) -> int:
        """Number of bulletins ingested."""
        return len(self.bulletins)

    def mean_segmentation_f1(self) -> float:
        """Mean story-boundary F1 across ingested bulletins."""
        if not self.segmentation:
            return 0.0
        return sum(result.f1 for result in self.segmentation) / len(self.segmentation)


class NewsVideoFramework:
    """Recording → analysis → indexing → retrieval → recommendation."""

    def __init__(
        self,
        collection: Collection,
        engine_config: EngineConfig = EngineConfig(),
        recommendation_weights: RecommendationWeights = RecommendationWeights(),
    ) -> None:
        self._collection = collection
        self._recorder = BroadcastRecorder(collection)
        self._analysis = AnalysisPipeline()
        self._segmenter = StorySegmenter()
        self._engine_config = engine_config
        self._recommendation_weights = recommendation_weights
        self._service: Optional[RetrievalService] = None
        self._engine: Optional[VideoRetrievalEngine] = None
        self._system: Optional[AdaptiveVideoRetrievalSystem] = None
        self._graph = ImplicitGraph()
        self._ingested = False

    # -- ingest --------------------------------------------------------------------

    def ingest(self) -> IngestReport:
        """Record every pending bulletin, analyse it and build the indexes."""
        report = IngestReport()
        report.bulletins = self._recorder.record_all()
        analysis_report = self._analysis.run(self._collection)
        report.shots_analysed = analysis_report.shots_processed
        report.segmentation = [
            self._segmenter.evaluate_video(self._collection, bulletin.video.video_id)
            for bulletin in report.bulletins
        ]
        # Index and serve through the shared facade so the framework runs on
        # the same substrate as every other entry point.
        self._service = RetrievalService(
            self._collection,
            config=ServiceConfig.from_engine_config(self._engine_config),
        )
        self._engine = self._service.engine
        self._system = self._service.system
        self._ingested = True
        return report

    def _require_ingested(self) -> None:
        if not self._ingested or self._engine is None or self._system is None:
            raise RuntimeError("call ingest() before using the framework")

    # -- components ---------------------------------------------------------------------

    @property
    def collection(self) -> Collection:
        """The underlying collection."""
        return self._collection

    @property
    def engine(self) -> VideoRetrievalEngine:
        """The retrieval engine (available after ingest)."""
        self._require_ingested()
        return self._engine  # type: ignore[return-value]

    @property
    def service(self) -> RetrievalService:
        """The retrieval service (available after ingest)."""
        self._require_ingested()
        return self._service  # type: ignore[return-value]

    @property
    def adaptive_system(self) -> AdaptiveVideoRetrievalSystem:
        """The adaptive retrieval system (available after ingest)."""
        self._require_ingested()
        return self._system  # type: ignore[return-value]

    @property
    def implicit_graph(self) -> ImplicitGraph:
        """The community implicit graph accumulated from past sessions."""
        return self._graph

    def record_past_session(self, queries: List[str], shot_evidence: Dict[str, float]) -> None:
        """Add one past session's behaviour to the community graph."""
        self._graph.add_session(queries, shot_evidence)

    # -- recommendation ---------------------------------------------------------------------

    def recommender(self) -> NewsRecommender:
        """A recommender over the framework's indexes and community graph."""
        self._require_ingested()
        feedback_model = ImplicitFeedbackModel(
            self.engine.inverted_index, visual_index=self.engine.visual_index
        )
        return NewsRecommender(
            self._collection,
            feedback_model=feedback_model,
            implicit_graph=self._graph,
            weights=self._recommendation_weights,
        )

    def daily_rundown(
        self,
        profile: UserProfile,
        broadcast_date: str,
        shot_evidence: Optional[Dict[str, float]] = None,
        limit: int = 10,
    ) -> List[StoryRecommendation]:
        """The personalised story rundown for one user and one broadcast day."""
        return self.recommender().recommend_for_date(
            profile, broadcast_date, shot_evidence=shot_evidence, limit=limit
        )
