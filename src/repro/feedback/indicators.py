"""Implicit relevance indicators extracted from interaction events.

An *indicator* is a named, interpretable summary of a user's behaviour
towards one shot — "the user clicked its keyframe", "the user watched more
than half of it", "the user expanded its metadata".  The research question
the paper poses (RQ1) is which of these indicators are reliable positive
evidence of relevance; experiment E2 measures exactly that by comparing each
indicator's firing pattern against the ground-truth qrels.

Indicators deliberately stay *binary-ish and interpretable*: an indicator
fires (with a strength in ``[0, 1]``) or it does not.  Combining indicators
into relevance evidence is the job of the weighting schemes in
:mod:`repro.feedback.weighting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.feedback.events import EventKind, InteractionEvent

#: Canonical indicator names, in the order the paper lists them plus the
#: negative indicators needed for completeness.
INDICATOR_NAMES = (
    "play_click",        # clicked a keyframe to start playing the video
    "play_duration",     # played the video for a (long) amount of time
    "play_complete",     # watched the shot to its end
    "browse",            # browsed / scrolled the result list past the shot
    "hover",             # hovered over the result surrogate
    "seek",              # slid through the video timeline
    "metadata",          # highlighted / expanded additional metadata
    "playlist",          # added the shot to a playlist
    "explicit_positive", # explicit relevance marking (desktop) or rate-up (iTV)
    "explicit_negative", # explicit non-relevance marking or rate-down
    "skip",              # skipped the result without engaging
    "select",            # selected the story with the remote control
)


@dataclass(frozen=True)
class IndicatorObservation:
    """One firing of one indicator for one shot."""

    indicator: str
    shot_id: str
    strength: float
    timestamp: float
    rank: Optional[int] = None


class IndicatorExtractor:
    """Turns an event stream into per-shot indicator observations.

    Parameters
    ----------
    long_play_fraction:
        Fraction of a shot's duration that must be played for the
        ``play_duration`` indicator to fire at full strength; shorter plays
        fire proportionally.
    hover_threshold_seconds:
        Minimum hover duration for the ``hover`` indicator to fire.
    """

    def __init__(
        self,
        long_play_fraction: float = 0.5,
        hover_threshold_seconds: float = 2.0,
    ) -> None:
        if not 0.0 < long_play_fraction <= 1.0:
            raise ValueError("long_play_fraction must be in (0, 1]")
        if hover_threshold_seconds < 0:
            raise ValueError("hover_threshold_seconds must be non-negative")
        self._long_play_fraction = long_play_fraction
        self._hover_threshold = hover_threshold_seconds

    # -- single event ----------------------------------------------------------

    def observations_for_event(
        self,
        event: InteractionEvent,
        shot_durations: Optional[Mapping[str, float]] = None,
    ) -> List[IndicatorObservation]:
        """Indicator observations contributed by a single event."""
        if event.shot_id is None:
            return []
        shot_id = event.shot_id
        observations: List[IndicatorObservation] = []

        def fire(indicator: str, strength: float) -> None:
            observations.append(
                IndicatorObservation(
                    indicator=indicator,
                    shot_id=shot_id,
                    strength=max(0.0, min(1.0, strength)),
                    timestamp=event.timestamp,
                    rank=event.rank,
                )
            )

        kind = event.kind
        if kind is EventKind.PLAY_CLICK:
            fire("play_click", 1.0)
        elif kind is EventKind.PLAY_PROGRESS:
            duration = event.duration or 0.0
            shot_duration = None
            if shot_durations is not None:
                shot_duration = shot_durations.get(shot_id)
            if shot_duration and shot_duration > 0:
                fraction = duration / shot_duration
            else:
                # Without the shot's duration, treat 30 seconds as a full view.
                fraction = duration / 30.0
            fire("play_duration", fraction / self._long_play_fraction)
        elif kind is EventKind.PLAY_COMPLETE:
            fire("play_complete", 1.0)
            fire("play_duration", 1.0)
        elif kind is EventKind.BROWSE_RESULTS:
            fire("browse", 1.0)
        elif kind is EventKind.HOVER_RESULT:
            duration = event.duration or 0.0
            if duration >= self._hover_threshold:
                fire("hover", min(1.0, duration / (self._hover_threshold * 3)))
        elif kind is EventKind.SEEK_VIDEO:
            fire("seek", 1.0)
        elif kind is EventKind.HIGHLIGHT_METADATA:
            fire("metadata", 1.0)
        elif kind is EventKind.ADD_TO_PLAYLIST:
            fire("playlist", 1.0)
        elif kind is EventKind.SKIP_RESULT:
            fire("skip", 1.0)
        elif kind is EventKind.REMOTE_SELECT:
            fire("select", 1.0)
        elif kind is EventKind.REMOTE_CHANNEL_SKIP:
            fire("skip", 1.0)
        elif kind is EventKind.MARK_RELEVANT or kind is EventKind.REMOTE_RATE_UP:
            fire("explicit_positive", 1.0)
        elif kind is EventKind.MARK_NOT_RELEVANT or kind is EventKind.REMOTE_RATE_DOWN:
            fire("explicit_negative", 1.0)
        return observations

    # -- whole stream ---------------------------------------------------------------

    def extract(
        self,
        events: Iterable[InteractionEvent],
        shot_durations: Optional[Mapping[str, float]] = None,
    ) -> List[IndicatorObservation]:
        """Indicator observations for a whole event stream."""
        observations: List[IndicatorObservation] = []
        for event in events:
            observations.extend(self.observations_for_event(event, shot_durations))
        return observations

    def per_shot_indicator_strengths(
        self,
        events: Iterable[InteractionEvent],
        shot_durations: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Maximum strength of each indicator per shot.

        Returns ``{shot_id: {indicator: strength}}``; taking the maximum over
        repeated firings keeps strengths in ``[0, 1]`` and makes the output
        independent of how many identical events the log happens to contain.
        """
        strengths: Dict[str, Dict[str, float]] = {}
        for observation in self.extract(events, shot_durations):
            per_shot = strengths.setdefault(observation.shot_id, {})
            per_shot[observation.indicator] = max(
                per_shot.get(observation.indicator, 0.0), observation.strength
            )
        return strengths


def indicator_counts(observations: Sequence[IndicatorObservation]) -> Dict[str, int]:
    """How many times each indicator fired in a set of observations."""
    counts: Dict[str, int] = {name: 0 for name in INDICATOR_NAMES}
    for observation in observations:
        counts[observation.indicator] = counts.get(observation.indicator, 0) + 1
    return counts
