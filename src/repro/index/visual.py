"""Visual index: similarity search over keyframe feature vectors and concepts.

Two visual evidence sources are supported, mirroring TRECVID-era systems:

* **feature-space similarity** — "find shots that look like this one",
  used for query-by-example and for propagating implicit feedback from a
  watched shot to visually similar shots; and
* **concept scoring** — "find shots likely to contain *crowd* and *flag*",
  used when a query or profile is mapped onto the concept vocabulary.

Storage is array-backed to match the access pattern of the scoring loops:
shot ids are interned to dense integer indexes, feature-vector L2 norms are
precomputed once at ``add_shot`` time (the cosine scan then only computes
dot products), concept scores are additionally inverted into per-concept
postings (``concept -> [(shot_index, score)]``) so ``score_by_concepts``
touches only shots that actually carry a queried concept, and top-k
selection uses a bounded heap instead of sorting every candidate.
"""

from __future__ import annotations

import heapq
import math
from array import array
from operator import mul
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.features import FeatureExtractor, cosine_similarity
from repro.collection.documents import Collection
from repro.utils.validation import ensure_positive


class VisualIndex:
    """Stores one feature vector and one concept-score map per shot."""

    def __init__(self) -> None:
        # Dense shot interning: index -> id and id -> index.
        self._shot_ids: List[str] = []
        self._shot_index: Dict[str, int] = {}
        self._vectors: List[Tuple[float, ...]] = []
        self._norms = array("d")
        self._concept_maps: List[Dict[str, float]] = []
        # Inverted concept postings: concept -> [(shot_index, score)].
        self._concept_postings: Dict[str, List[Tuple[int, float]]] = {}
        self._generation = 0

    # -- construction --------------------------------------------------------

    def add_shot(
        self,
        shot_id: str,
        features: Sequence[float],
        concept_scores: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Add one shot's visual evidence; duplicates raise ``ValueError``."""
        if shot_id in self._shot_index:
            raise ValueError(f"shot {shot_id!r} already in visual index")
        shot_index = len(self._shot_ids)
        vector = tuple(features)
        self._shot_ids.append(shot_id)
        self._shot_index[shot_id] = shot_index
        self._vectors.append(vector)
        # sum(map(mul, v, v)) adds the same products in the same order as the
        # historical generator expression, just without per-element bytecode.
        self._norms.append(math.sqrt(sum(map(mul, vector, vector))))
        concepts = dict(concept_scores or {})
        self._concept_maps.append(concepts)
        for concept, score in concepts.items():
            self._concept_postings.setdefault(concept, []).append((shot_index, score))
        self._generation += 1

    @classmethod
    def from_collection(
        cls,
        collection: Collection,
        feature_extractor: Optional[FeatureExtractor] = None,
    ) -> "VisualIndex":
        """Build a visual index from a collection.

        Shots that have already been analysed (``shot.features`` filled by
        :class:`repro.analysis.pipeline.AnalysisPipeline`) are used as-is;
        otherwise features are extracted on the fly.
        """
        extractor = feature_extractor or FeatureExtractor()
        index = cls()
        for shot in collection.iter_shots():
            features = shot.features or extractor.extract(shot.keyframe)
            index.add_shot(shot.shot_id, features, shot.concept_scores)
        return index

    # -- statistics ----------------------------------------------------------

    @property
    def shot_count(self) -> int:
        """Number of shots indexed."""
        return len(self._shot_ids)

    @property
    def generation(self) -> int:
        """Mutation counter; changes whenever a shot is added."""
        return self._generation

    def has_shot(self, shot_id: str) -> bool:
        """True if the shot has visual evidence."""
        return shot_id in self._shot_index

    def shot_ids(self) -> List[str]:
        """All indexed shot ids."""
        return list(self._shot_ids)

    def features_of(self, shot_id: str) -> Tuple[float, ...]:
        """Feature vector of one shot."""
        return self._vectors[self._shot_index[shot_id]]

    def concept_scores_of(self, shot_id: str) -> Dict[str, float]:
        """Concept confidence scores of one shot (a copy)."""
        shot_index = self._shot_index.get(shot_id)
        if shot_index is None:
            return {}
        return dict(self._concept_maps[shot_index])

    # -- search -----------------------------------------------------------------

    def similar_to_vector(
        self, vector: Sequence[float], limit: int = 20, exclude: Sequence[str] = ()
    ) -> List[Tuple[str, float]]:
        """Shots most similar to an arbitrary feature vector."""
        ensure_positive(limit, "limit")
        excluded = set(exclude)
        query = tuple(vector)
        query_dimensions = len(query)
        query_norm = math.sqrt(sum(map(mul, query, query)))
        shot_ids = self._shot_ids
        norms = self._norms
        scored: List[Tuple[str, float]] = []
        for shot_index, features in enumerate(self._vectors):
            shot_id = shot_ids[shot_index]
            if shot_id in excluded:
                continue
            if len(features) != query_dimensions:
                raise ValueError(
                    f"vectors must have equal length, got {query_dimensions} "
                    f"and {len(features)}"
                )
            norm = norms[shot_index]
            if query_norm == 0 or norm == 0:
                similarity = 0.0
            else:
                similarity = sum(map(mul, query, features)) / (query_norm * norm)
            scored.append((shot_id, similarity))
        return heapq.nsmallest(limit, scored, key=lambda item: (-item[1], item[0]))

    def similar_to_shot(self, shot_id: str, limit: int = 20) -> List[Tuple[str, float]]:
        """Shots most similar to a given shot (the query shot is excluded)."""
        shot_index = self._shot_index.get(shot_id)
        if shot_index is None:
            raise KeyError(f"shot {shot_id!r} not in visual index")
        return self.similar_to_vector(
            self._vectors[shot_index], limit=limit, exclude=(shot_id,)
        )

    def score_by_concepts(
        self, concept_weights: Mapping[str, float]
    ) -> Dict[str, float]:
        """Score every shot by a weighted sum of its concept confidences."""
        accumulator = [0.0] * len(self._shot_ids)
        touched: List[int] = []
        seen = bytearray(len(self._shot_ids))
        for concept, weight in concept_weights.items():
            for shot_index, score in self._concept_postings.get(concept, ()):
                accumulator[shot_index] += weight * score
                if not seen[shot_index]:
                    seen[shot_index] = 1
                    touched.append(shot_index)
        shot_ids = self._shot_ids
        scores: Dict[str, float] = {}
        for shot_index in sorted(touched):
            total = accumulator[shot_index]
            if total != 0.0:
                scores[shot_ids[shot_index]] = total
        return scores

    def similarity(self, first_shot_id: str, second_shot_id: str) -> float:
        """Cosine similarity between two indexed shots."""
        return cosine_similarity(
            self.features_of(first_shot_id), self.features_of(second_shot_id)
        )
