"""Replication tier: WAL-shipping read replicas, routing, and failover.

The package splits along the import graph deliberately:

- :mod:`repro.replication.config` and :mod:`repro.replication.errors`
  are leaf modules (stdlib + validation helpers only) imported eagerly —
  :class:`~repro.service.config.ServiceConfig` embeds
  :class:`ReplicationConfig`, so these must not pull the service layer in.
- The heavy machinery (:class:`ReplicaServer`, :class:`ReplicatedService`,
  the chaos harness) *does* import :mod:`repro.service`, so it is exposed
  lazily via module ``__getattr__`` to keep the package importable from
  inside the service layer without a cycle.
"""

from __future__ import annotations

from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    NoReplicaAvailableError,
    PrimaryUnavailableError,
    PromotionError,
    ReplicaClosedError,
    ReplicaLaggingError,
    ReplicationError,
)

#: Lazily exposed symbols -> the submodule that defines them.
_LAZY = {
    "ReplicaServer": "repro.replication.replica",
    "PromotionResult": "repro.replication.replica",
    "ReplicatedService": "repro.replication.router",
    "ReplicaInfo": "repro.replication.router",
    "ChaosEvent": "repro.replication.chaos",
    "ChaosSchedule": "repro.replication.chaos",
    "run_replicated_loadtest": "repro.replication.chaos",
}

__all__ = [
    "ReplicationConfig",
    "ReplicationError",
    "ReplicaLaggingError",
    "ReplicaClosedError",
    "PrimaryUnavailableError",
    "PromotionError",
    "NoReplicaAvailableError",
] + sorted(_LAZY)


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
