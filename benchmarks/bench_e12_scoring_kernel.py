"""E12 — Array-backed scoring-kernel latency and throughput.

This is the performance bench for the compact, array-backed index layout:
single-query latency (p50/p95) and repeated-query throughput for the three
text scorers (BM25 / TF-IDF / Dirichlet LM), visual similarity search and
concept scoring, measured over the standard bench corpus.  The engine's
persistent result cache is DISABLED for the kernel rows — every number here
is a genuine evaluation — with one extra row recording what the cache adds
on a repeated-query workload.

Every timed configuration is also checked against the retained reference
implementations (:mod:`repro.index.reference`), so a kernel change that
drifts from the original per-posting semantics fails this bench before it
ships a wrong number.

``BENCH_e12.json`` next to this file records the baseline numbers from the
PR that introduced the kernel, so the perf trajectory is tracked from then
on.  Run ``python benchmarks/bench_e12_scoring_kernel.py --write-baseline``
to refresh it on representative hardware, or ``--smoke`` for the quick CI
sanity check (small corpus, equivalence + sanity thresholds, no wall-clock
assertions).
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

try:
    from _common import print_table
except ImportError:  # script mode: python benchmarks/bench_e12_scoring_kernel.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import print_table

from repro.analysis import analyse_collection
from repro.index.reference import (
    ReferenceBm25Scorer,
    ReferenceDirichletScorer,
    ReferenceTfIdfScorer,
    reference_score_by_concepts,
    reference_similar_to_vector,
)
from repro.retrieval import EngineConfig, VideoRetrievalEngine

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_e12.json"

#: Measurement rounds for the latency distribution (per query).
ROUNDS = 30

_REFERENCE_FACTORIES = {
    "bm25": ReferenceBm25Scorer,
    "tfidf": ReferenceTfIdfScorer,
    "lm": ReferenceDirichletScorer,
}


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _ranking(scores):
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))


def _assert_scorer_equivalence(engine, scorer_name, queries):
    """The kernel must rank exactly like the retained reference scorer."""
    reference = _REFERENCE_FACTORIES[scorer_name](engine.inverted_index)
    for query in queries:
        term_weights = {}
        for token in engine.tokenizer.tokenize(query):
            term_weights[token] = term_weights.get(token, 0.0) + 1.0
        kernel_ranked = _ranking(engine._text_scorer.score(term_weights))
        reference_ranked = _ranking(reference.score(term_weights))
        assert [doc for doc, _ in kernel_ranked] == [doc for doc, _ in reference_ranked]
        assert all(
            abs(kernel_score - reference_score) <= 1e-9
            for (_, kernel_score), (_, reference_score) in zip(
                kernel_ranked, reference_ranked
            )
        )


def _text_scorer_rows(corpus, rounds=ROUNDS, verify=True):
    queries = [" ".join(topic.query_terms) for topic in corpus.topics]
    rows = []
    for scorer_name in ("bm25", "tfidf", "lm"):
        engine = VideoRetrievalEngine(
            corpus.collection,
            config=EngineConfig(
                scorer=scorer_name,
                visual_weight=0.0,
                concept_weight=0.0,
                result_cache_size=0,  # measure the kernel, not the cache
            ),
        )
        if verify:
            _assert_scorer_equivalence(engine, scorer_name, queries)
        for query in queries:  # warm the per-term statistic caches
            engine.search_text(query, limit=100)
        latencies = []
        for _ in range(rounds):
            for query in queries:
                start = time.perf_counter()
                engine.search_text(query, limit=100)
                latencies.append(time.perf_counter() - start)
        total = sum(latencies)
        rows.append(
            {
                "scorer": scorer_name,
                "queries": len(latencies),
                "p50_ms": _percentile(latencies, 0.50) * 1e3,
                "p95_ms": _percentile(latencies, 0.95) * 1e3,
                "mean_ms": statistics.mean(latencies) * 1e3,
                "qps": len(latencies) / total if total else 0.0,
            }
        )
    return rows


def _cache_row(corpus, rounds=ROUNDS):
    """What the persistent result cache adds on a repeated-query workload."""
    engine = VideoRetrievalEngine(
        corpus.collection,
        config=EngineConfig(scorer="bm25", visual_weight=0.0, concept_weight=0.0),
    )
    queries = [" ".join(topic.query_terms) for topic in corpus.topics]
    for query in queries:
        engine.search_text(query, limit=100)
    latencies = []
    for _ in range(rounds):
        for query in queries:
            start = time.perf_counter()
            engine.search_text(query, limit=100)
            latencies.append(time.perf_counter() - start)
    total = sum(latencies)
    return {
        "scorer": "bm25+result_cache",
        "queries": len(latencies),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p95_ms": _percentile(latencies, 0.95) * 1e3,
        "mean_ms": statistics.mean(latencies) * 1e3,
        "qps": len(latencies) / total if total else 0.0,
    }


def _visual_rows(corpus, rounds=ROUNDS, verify=True):
    engine = VideoRetrievalEngine(corpus.collection)
    visual = engine.visual_index
    probes = visual.shot_ids()[:8]
    concept_vocabulary = sorted(
        {
            concept
            for shot_id in visual.shot_ids()[:200]
            for concept in visual.concept_scores_of(shot_id)
        }
    )
    concept_queries = [
        {concept: 1.0 for concept in concept_vocabulary[start : start + 3]}
        for start in range(0, min(12, len(concept_vocabulary)), 3)
    ]
    if verify:
        for shot_id in probes[:3]:
            probe = visual.features_of(shot_id)
            assert visual.similar_to_vector(probe, limit=20) == (
                reference_similar_to_vector(visual, probe, limit=20)
            )
        for weights in concept_queries[:2]:
            assert visual.score_by_concepts(weights) == (
                reference_score_by_concepts(visual, weights)
            )

    similarity_latencies = []
    for _ in range(rounds):
        for shot_id in probes:
            start = time.perf_counter()
            visual.similar_to_shot(shot_id, limit=20)
            similarity_latencies.append(time.perf_counter() - start)
    concept_latencies = []
    for _ in range(rounds):
        for weights in concept_queries:
            start = time.perf_counter()
            visual.score_by_concepts(weights)
            concept_latencies.append(time.perf_counter() - start)

    rows = []
    for name, latencies in (
        ("visual_similarity", similarity_latencies),
        ("concept_scoring", concept_latencies),
    ):
        if not latencies:
            continue
        total = sum(latencies)
        rows.append(
            {
                "workload": name,
                "queries": len(latencies),
                "p50_ms": _percentile(latencies, 0.50) * 1e3,
                "p95_ms": _percentile(latencies, 0.95) * 1e3,
                "qps": len(latencies) / total if total else 0.0,
            }
        )
    return rows


def _batch_row(corpus, rounds=4):
    """Throughput of the service batch path over the kernel (cold cache)."""
    from repro.service import RetrievalService, SearchRequest

    service = RetrievalService.from_corpus(corpus)
    topics = corpus.topics.topics() if hasattr(corpus.topics, "topics") else list(corpus.topics)
    requests = [
        SearchRequest(
            user_id=f"user{index:02d}",
            query=" ".join(topic.query_terms[:3]),
            topic_id=topic.topic_id,
        )
        for index, topic in enumerate(topics)
    ]
    start = time.perf_counter()
    for _ in range(rounds):
        service.search_batch(requests)
    elapsed = time.perf_counter() - start
    total_queries = rounds * len(requests)
    return {
        "workload": "service_batch_search",
        "queries": total_queries,
        "qps": total_queries / elapsed if elapsed else 0.0,
    }


def run_experiment(bench_corpus, rounds=ROUNDS, verify=True):
    analyse_collection(bench_corpus.collection)
    scorer_rows = _text_scorer_rows(bench_corpus, rounds=rounds, verify=verify)
    scorer_rows.append(_cache_row(bench_corpus, rounds=rounds))
    visual_rows = _visual_rows(bench_corpus, rounds=max(2, rounds // 3), verify=verify)
    batch_row = _batch_row(bench_corpus)
    return scorer_rows, visual_rows, batch_row


def _sanity_check(scorer_rows, visual_rows):
    by_scorer = {row["scorer"]: row for row in scorer_rows}
    for name in ("bm25", "tfidf", "lm"):
        assert by_scorer[name]["qps"] > 0
        assert by_scorer[name]["p95_ms"] >= by_scorer[name]["p50_ms"]
    # The result cache must never be slower than the raw kernel.
    assert by_scorer["bm25+result_cache"]["qps"] >= by_scorer["bm25"]["qps"]
    assert all(row["qps"] > 0 for row in visual_rows)


def test_e12_scoring_kernel(benchmark, bench_corpus):
    scorer_rows, visual_rows, batch_row = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("E12a: text scoring kernel latency/throughput", scorer_rows)
    print_table("E12b: visual kernel latency/throughput", visual_rows)
    print_table("E12c: batch path", [batch_row])
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        print_table(
            "E12 baseline (from BENCH_e12.json, for trajectory — not asserted)",
            baseline.get("text_scorers", []),
        )
    _sanity_check(scorer_rows, visual_rows)


def _main(argv):
    smoke = "--smoke" in argv
    write_baseline = "--write-baseline" in argv
    from repro.collection import CollectionConfig, generate_corpus

    if smoke:
        corpus = generate_corpus(
            seed=7,
            config=CollectionConfig(days=4, stories_per_day=5, topic_count=6),
        )
        rounds = 3
    else:
        corpus = generate_corpus(
            seed=2008,
            config=CollectionConfig(
                days=24, stories_per_day=9, topic_count=16, min_stories_per_topic=3
            ),
        )
        rounds = ROUNDS
    scorer_rows, visual_rows, batch_row = run_experiment(
        corpus, rounds=rounds, verify=True
    )
    print_table("E12a: text scoring kernel latency/throughput", scorer_rows)
    print_table("E12b: visual kernel latency/throughput", visual_rows)
    print_table("E12c: batch path", [batch_row])
    _sanity_check(scorer_rows, visual_rows)
    if write_baseline:
        # Preserve the guarded smoke_baseline section: the regression guard
        # treats its absence as a failure, and it is refreshed through
        # check_bench_regression.py --update, not here.
        smoke_baseline = None
        if BASELINE_PATH.exists():
            smoke_baseline = json.loads(BASELINE_PATH.read_text()).get(
                "smoke_baseline"
            )
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    **({"smoke_baseline": smoke_baseline} if smoke_baseline else {}),
                    "corpus": "bench standard (seed 2008)" if not smoke else "smoke",
                    "rounds": rounds,
                    "text_scorers": scorer_rows,
                    "visual": visual_rows,
                    "batch": batch_row,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    print("e12 ok: kernel matches reference rankings; sanity thresholds hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
