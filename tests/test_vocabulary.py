"""Tests for the synthetic vocabulary and category language models."""

from __future__ import annotations

import pytest

from repro.collection.vocabulary import (
    DEFAULT_CATEGORIES,
    STOPWORDS,
    CategoryLanguageModel,
    build_vocabulary,
    generate_term_set,
)
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def vocabulary():
    return build_vocabulary(
        RandomSource(5).spawn("vocab"), terms_per_category=40, background_terms=100
    )


class TestGenerateTermSet:
    def test_size_and_uniqueness(self):
        terms = generate_term_set(RandomSource(1).spawn("t"), 50)
        assert len(terms) == 50
        assert len(set(terms)) == 50

    def test_excludes_stopwords(self):
        terms = generate_term_set(RandomSource(1).spawn("t"), 200)
        assert not set(terms) & set(STOPWORDS)

    def test_deterministic(self):
        first = generate_term_set(RandomSource(9).spawn("x"), 30)
        second = generate_term_set(RandomSource(9).spawn("x"), 30)
        assert first == second

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            generate_term_set(RandomSource(1), 0)


class TestCategoryLanguageModel:
    def test_probabilities_normalised(self):
        model = CategoryLanguageModel(category="c", terms=["a", "b", "c"])
        assert sum(model.probabilities) == pytest.approx(1.0)

    def test_zipf_shape(self):
        model = CategoryLanguageModel(category="c", terms=["a", "b", "c"])
        assert model.probabilities[0] > model.probabilities[1] > model.probabilities[2]

    def test_sample_only_known_terms(self):
        model = CategoryLanguageModel(category="c", terms=["a", "b", "c"])
        samples = model.sample(RandomSource(2).spawn("s"), 100)
        assert set(samples) <= {"a", "b", "c"}

    def test_sample_zero_count(self):
        model = CategoryLanguageModel(category="c", terms=["a"])
        assert model.sample(RandomSource(2), 0) == []

    def test_probability_lookup(self):
        model = CategoryLanguageModel(category="c", terms=["a", "b"])
        assert model.probability("a") > model.probability("b")
        assert model.probability("zzz") == 0.0

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            CategoryLanguageModel(category="c", terms=[])

    def test_misaligned_probabilities_rejected(self):
        with pytest.raises(ValueError):
            CategoryLanguageModel(category="c", terms=["a", "b"], probabilities=[1.0])


class TestBuildVocabulary:
    def test_all_default_categories_present(self, vocabulary):
        assert set(vocabulary.category_names) == set(DEFAULT_CATEGORIES)

    def test_category_terms_disjoint_from_background(self, vocabulary):
        background = set(vocabulary.background.terms)
        for name in vocabulary.category_names:
            assert not set(vocabulary.categories[name].terms) & background

    def test_category_terms_disjoint_across_categories(self, vocabulary):
        names = vocabulary.category_names
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                overlap = set(vocabulary.categories[first].terms) & set(
                    vocabulary.categories[second].terms
                )
                assert not overlap

    def test_stopwords_in_background(self, vocabulary):
        assert set(STOPWORDS) <= set(vocabulary.background.terms)

    def test_unknown_category_raises(self, vocabulary):
        with pytest.raises(KeyError):
            vocabulary.model_for("astrology")

    def test_deterministic_given_seed(self):
        first = build_vocabulary(RandomSource(8).spawn("v"), terms_per_category=10,
                                 background_terms=20)
        second = build_vocabulary(RandomSource(8).spawn("v"), terms_per_category=10,
                                  background_terms=20)
        assert first.background.terms == second.background.terms
        assert first.categories["sports"].terms == second.categories["sports"].terms

    def test_sample_mixture_weights_validated(self, vocabulary):
        rng = RandomSource(3).spawn("m")
        with pytest.raises(ValueError):
            vocabulary.sample_mixture(rng, "sports", 10, category_weight=0.8,
                                      extra_terms=["x"], extra_weight=0.4)

    def test_sample_mixture_uses_topic_terms(self, vocabulary):
        rng = RandomSource(3).spawn("m")
        words = vocabulary.sample_mixture(
            rng, "sports", 400, category_weight=0.2,
            extra_terms=["specialterm"], extra_weight=0.5,
        )
        assert "specialterm" in words

    def test_all_terms_contains_everything(self, vocabulary):
        all_terms = set(vocabulary.all_terms())
        assert set(vocabulary.background.terms) <= all_terms
        assert set(vocabulary.categories["politics"].terms) <= all_terms
