"""Direct unit tests for the binary record framing in ``utils.serialization``.

The WAL's crash-safety argument rests entirely on this framing: a torn
tail must always be detected (truncation or checksum), and the clean
prefix before any damage must always decode to exactly the payloads that
were written.  These tests pin the format byte-for-byte, independent of
the durability modules built on top.
"""

from __future__ import annotations

import zlib

import pytest

from repro.utils.serialization import (
    ChecksumMismatchError,
    RecordError,
    TruncatedRecordError,
    decode_record,
    decode_uvarint,
    encode_record,
    encode_uvarint,
    iter_records,
    scan_records,
)


class TestUvarint:
    @pytest.mark.parametrize(
        "value", (0, 1, 127, 128, 129, 16383, 16384, 2**32 - 1, 2**32, 2**63 - 1)
    )
    def test_roundtrip(self, value):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_single_byte_below_128(self):
        assert encode_uvarint(0) == b"\x00"
        assert encode_uvarint(127) == b"\x7f"
        assert encode_uvarint(128) == b"\x80\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_offset_decoding(self):
        buffer = b"\xff" + encode_uvarint(300)
        value, offset = decode_uvarint(buffer, offset=1)
        assert value == 300
        assert offset == len(buffer)

    def test_truncated_mid_varint(self):
        with pytest.raises(TruncatedRecordError):
            decode_uvarint(b"\x80")

    def test_oversized_varint_rejected(self):
        with pytest.raises(RecordError):
            decode_uvarint(b"\x80" * 10 + b"\x01")


class TestRecordFraming:
    def test_roundtrip(self):
        payload = b'{"op":"doc","id":"x"}'
        frame = encode_record(payload)
        decoded, offset = decode_record(frame)
        assert decoded == payload
        assert offset == len(frame)

    def test_layout_is_len_crc_payload(self):
        payload = b"hello"
        frame = encode_record(payload)
        assert frame[0] == len(payload)
        assert frame[1:5] == zlib.crc32(payload).to_bytes(4, "little")
        assert frame[5:] == payload

    def test_empty_payload(self):
        frame = encode_record(b"")
        assert decode_record(frame) == (b"", len(frame))

    def test_truncated_tail_detected(self):
        frame = encode_record(b"abcdef")
        for cut in range(1, len(frame)):
            with pytest.raises(TruncatedRecordError):
                decode_record(frame[:-cut])

    def test_checksum_mismatch_detected(self):
        frame = bytearray(encode_record(b"abcdef"))
        # Flip one payload byte; the stored CRC no longer matches.
        frame[-1] ^= 0xFF
        with pytest.raises(ChecksumMismatchError):
            decode_record(bytes(frame))

    def test_corrupt_header_crc_detected(self):
        frame = bytearray(encode_record(b"abcdef"))
        frame[1] ^= 0x01  # CRC field itself
        with pytest.raises(ChecksumMismatchError):
            decode_record(bytes(frame))


class TestBufferScans:
    def _buffer(self, payloads):
        return b"".join(encode_record(payload) for payload in payloads)

    def test_iter_records_strict(self):
        payloads = [b"a", b"bb", b"", b"ccc"]
        assert list(iter_records(self._buffer(payloads))) == payloads

    def test_iter_records_raises_on_torn_tail(self):
        buffer = self._buffer([b"a", b"bb"]) + encode_record(b"ccc")[:-2]
        with pytest.raises(TruncatedRecordError):
            list(iter_records(buffer))

    def test_scan_clean_buffer(self):
        payloads = [b"a", b"bb"]
        buffer = self._buffer(payloads)
        decoded, end, error = scan_records(buffer)
        assert decoded == payloads
        assert end == len(buffer)
        assert error is None

    def test_scan_returns_prefix_before_torn_tail(self):
        clean = self._buffer([b"a", b"bb"])
        buffer = clean + encode_record(b"ccc")[:-1]
        decoded, end, error = scan_records(buffer)
        assert decoded == [b"a", b"bb"]
        assert end == len(clean)
        assert isinstance(error, TruncatedRecordError)

    def test_scan_stops_at_corruption_mid_buffer(self):
        frames = [bytearray(encode_record(p)) for p in (b"aaaa", b"bbbb", b"cccc")]
        frames[1][-2] ^= 0x10
        decoded, end, error = scan_records(b"".join(bytes(f) for f in frames))
        # Only the records before the corrupt frame survive — the third
        # record is unreachable even though its own bytes are intact.
        assert decoded == [b"aaaa"]
        assert end == len(frames[0])
        assert isinstance(error, ChecksumMismatchError)

    def test_scan_empty_buffer(self):
        assert scan_records(b"") == ([], 0, None)
