"""Replicated service router: writes to the primary, reads fanned out.

A :class:`ReplicatedService` fronts one durable primary
:class:`~repro.service.RetrievalService` and any number of
:class:`~repro.replication.replica.ReplicaServer` followers tailing the
primary's durability directory:

- **Writes and feedback** go to the primary only; while no primary is
  alive (crashed, not yet promoted) they raise
  :class:`PrimaryUnavailableError`.
- **Stateless ranked reads** (:meth:`search_ranked`) rotate round-robin
  across healthy replicas with bounded-staleness checks, retrying the
  next replica (with linear backoff) when one fails or refuses for lag,
  and falling through to the primary when every replica is exhausted.
- **Replica registration** pins the primary's WAL compaction through the
  replication guard; :meth:`poll_replicas` advances every replica and
  acknowledges its applied LSN back, releasing held-back segments and
  publishing per-replica lag gauges into a
  :class:`~repro.serving.metrics.MetricsRegistry`.
- **Failover**: :meth:`kill_primary` simulates a primary crash
  (abandoning the service object exactly as a SIGKILL would — nothing is
  flushed or closed); :meth:`promote` then elects the freshest replica
  deterministically, promotes it into a writable service over the same
  directory, re-registers the surviving replicas, and resumes writes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    NoReplicaAvailableError,
    PrimaryUnavailableError,
    ReplicaLaggingError,
    ReplicationError,
)
from repro.replication.replica import PromotionResult, ReplicaServer
from repro.retrieval.results import ResultList
from repro.service.service import RetrievalService
from repro.serving.metrics import MetricsRegistry


@dataclass
class _CorpusView:
    """The corpus-shaped triple a promotion needs to rebuild a service."""

    collection: object
    topics: object
    qrels: object


@dataclass
class ReplicaInfo:
    """One replica's health as the router sees it."""

    replica_id: str
    applied_lsn: int
    lag_lsn: int
    closed: bool
    failures: int


class ReplicatedService:
    """Primary + replicas behind one read/write facade."""

    def __init__(
        self,
        primary: RetrievalService,
        config: Optional[ReplicationConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if primary.engine.durability is None:
            raise ReplicationError(
                "ReplicatedService needs a durable primary (set "
                "durability_dir): replicas ship state through its WAL"
            )
        self._primary: Optional[RetrievalService] = primary
        self._primary_alive = True
        self._directory = primary.engine.durability.directory
        self._corpus = _CorpusView(
            collection=primary.collection,
            topics=primary.topics,
            qrels=primary.qrels,
        )
        self._replication = (
            config or primary.config.replication or ReplicationConfig()
        )
        # Remembered so replicas added after a primary crash (restarts in a
        # chaos run) still build engines with the original scorer/shard
        # configuration rather than bare defaults.
        self._replica_config = primary.config
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.RLock()
        self._replicas: Dict[str, ReplicaServer] = {}
        self._failures: Dict[str, int] = {}
        # Which durability manager holds each replica's compaction pin.
        # Tracked explicitly so removal always releases the pin from the
        # manager that holds it — releasing against "the current primary"
        # leaks the pin whenever the primary is dead at removal time (the
        # removed replica's acked LSN then clamps truncate_through forever).
        self._pinned: Dict[str, object] = {}
        self._rotation = 0
        self._replica_seq = 0
        self._last_known_primary_lsn = primary.engine.durability.wal.last_lsn

    # -- accessors -----------------------------------------------------------------

    @property
    def primary(self) -> Optional[RetrievalService]:
        """The live primary service (``None`` after :meth:`kill_primary`)."""
        return self._primary if self._primary_alive else None

    @property
    def primary_alive(self) -> bool:
        """Whether a writable primary is currently installed."""
        return self._primary_alive

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry replica lag gauges are published into."""
        return self._metrics

    @property
    def replica_ids(self) -> List[str]:
        """Registered replica ids, in registration order."""
        with self._lock:
            return list(self._replicas)

    def replica(self, replica_id: str) -> ReplicaServer:
        """The replica registered under an id."""
        with self._lock:
            try:
                return self._replicas[replica_id]
            except KeyError:
                raise ReplicationError(
                    f"no replica registered as {replica_id!r}"
                ) from None

    def primary_lsn(self) -> int:
        """The primary's last allocated LSN (last known once it is dead)."""
        with self._lock:
            if self._primary_alive and self._primary is not None:
                durability = self._primary.engine.durability
                if durability is not None:
                    self._last_known_primary_lsn = max(
                        self._last_known_primary_lsn, durability.wal.last_lsn
                    )
            return self._last_known_primary_lsn

    def replica_report(self) -> List[ReplicaInfo]:
        """Health of every registered replica."""
        reference = self.primary_lsn()
        with self._lock:
            return [
                ReplicaInfo(
                    replica_id=replica_id,
                    applied_lsn=replica.applied_lsn,
                    lag_lsn=max(0, reference - replica.applied_lsn),
                    closed=replica.closed,
                    failures=self._failures.get(replica_id, 0),
                )
                for replica_id, replica in self._replicas.items()
            ]

    # -- replica lifecycle ---------------------------------------------------------

    def add_replica(
        self,
        replica_id: Optional[str] = None,
        config: Optional[object] = None,
    ) -> ReplicaServer:
        """Attach a new replica to the primary's durability directory.

        The replica bootstraps from the snapshot chain + WAL prefix and is
        registered with the primary's replication guard at its applied
        LSN, pinning compaction until it acknowledges progress.
        """
        with self._lock:
            if replica_id is None:
                self._replica_seq += 1
                replica_id = f"replica-{self._replica_seq}"
            if replica_id in self._replicas:
                raise ReplicationError(
                    f"replica id {replica_id!r} is already registered"
                )
            base_config = config if config is not None else self._replica_config
            replica = ReplicaServer(
                self._directory,
                corpus=self._corpus,
                config=base_config,
                replica_id=replica_id,
                clock=self._clock,
            )
            self._replicas[replica_id] = replica
            self._failures[replica_id] = 0
            if self._primary_alive and self._primary is not None:
                durability = self._primary.engine.durability
                if durability is not None:
                    durability.register_replica(replica_id, replica.applied_lsn)
                    self._pinned[replica_id] = durability
            self._publish_lag_locked(replica_id, replica)
            return replica

    def remove_replica(self, replica_id: str) -> None:
        """Detach and close a replica, releasing its compaction pin.

        The pin is released from the manager that actually holds it (the
        one the replica was registered with), regardless of whether a
        primary is currently alive — otherwise a replica removed during a
        failover window would keep clamping that manager's WAL truncation
        at its last acknowledged LSN indefinitely.
        """
        with self._lock:
            replica = self._replicas.pop(replica_id, None)
            self._failures.pop(replica_id, None)
            pinned = self._pinned.pop(replica_id, None)
            if replica is None:
                raise ReplicationError(
                    f"no replica registered as {replica_id!r}"
                )
            if pinned is not None:
                pinned.unregister_replica(replica_id)
        replica.close()

    def poll_replicas(self) -> Dict[str, int]:
        """One tailing round for every replica.

        Applies whatever each replica can reach, acknowledges applied
        LSNs back to the primary's replication guard (releasing held-back
        WAL segments at the next checkpoint), and publishes per-replica
        lag gauges.  A replica whose poll raises is counted as a failure
        but left registered — transient scan races heal on the next round.
        Returns records applied per replica id.
        """
        applied: Dict[str, int] = {}
        with self._lock:
            replicas = list(self._replicas.items())
        for replica_id, replica in replicas:
            try:
                applied[replica_id] = replica.poll()
            except ReplicationError:
                with self._lock:
                    self._failures[replica_id] = (
                        self._failures.get(replica_id, 0) + 1
                    )
                applied[replica_id] = 0
                continue
            with self._lock:
                # Re-check membership: a concurrent remove_replica already
                # released the pin, and acknowledging an unregistered
                # replica would raise out of the whole polling round.
                pinned = (
                    self._pinned.get(replica_id)
                    if replica_id in self._replicas
                    else None
                )
                if pinned is not None:
                    pinned.acknowledge_replica(replica_id, replica.applied_lsn)
                if replica_id in self._replicas:
                    self._publish_lag_locked(replica_id, replica)
        return applied

    def _publish_lag_locked(self, replica_id: str, replica: ReplicaServer) -> None:
        reference = self._last_known_primary_lsn
        if self._primary_alive and self._primary is not None:
            durability = self._primary.engine.durability
            if durability is not None:
                reference = max(reference, durability.wal.last_lsn)
                self._last_known_primary_lsn = reference
        lag = max(0, reference - replica.applied_lsn)
        self._metrics.set_gauge(f"replica_lag.{replica_id}", float(lag))
        self._metrics.set_gauge(
            f"replica_applied_lsn.{replica_id}", float(replica.applied_lsn)
        )

    # -- writes (primary only) -----------------------------------------------------

    def _require_primary(self) -> RetrievalService:
        if not self._primary_alive or self._primary is None:
            raise PrimaryUnavailableError(
                "no primary is alive: writes are unavailable until a "
                "replica is promoted"
            )
        return self._primary

    def index_documents(self, documents) -> None:
        """Index new documents on the primary (WAL-logged, shipped)."""
        self._require_primary().index_documents(documents)

    def index_shot(self, shot_id, features, concepts) -> None:
        """Index one new shot on the primary (WAL-logged, shipped)."""
        self._require_primary().index_shot(shot_id, features, concepts)

    def delete_document(self, document_id) -> None:
        """Delete a document on the primary (WAL-logged, shipped)."""
        self._require_primary().delete_document(document_id)

    def update_document(self, document_id, text) -> None:
        """Re-index a document on the primary (WAL-logged, shipped)."""
        self._require_primary().update_document(document_id, text)

    def delete_shot(self, shot_id) -> None:
        """Delete a shot on the primary (WAL-logged, shipped)."""
        self._require_primary().delete_shot(shot_id)

    def submit_feedback(self, batch):
        """Route session feedback to the primary."""
        return self._require_primary().submit_feedback(batch)

    def open_session(self, *args, **kwargs):
        """Open an adaptive session on the primary."""
        return self._require_primary().open_session(*args, **kwargs)

    def search_text(self, *args, **kwargs):
        """Session-ful search on the primary (adaptive state lives there)."""
        return self._require_primary().search_text(*args, **kwargs)

    # -- reads (replica fan-out) ---------------------------------------------------

    def search_ranked(
        self,
        text: str,
        limit: Optional[int] = None,
        topic_id: Optional[str] = None,
    ) -> ResultList:
        """One stateless ranked read, fanned across the replica set.

        Tries up to ``1 + read_retries`` distinct healthy replicas in
        round-robin order, each behind the configured staleness bounds
        (with the primary's last allocated LSN as the lag reference),
        sleeping the linear backoff between attempts.  When every attempt
        fails the read falls through to the primary; with the primary
        dead too, raises :class:`NoReplicaAvailableError` carrying the
        last replica error as its cause.
        """
        reference = self.primary_lsn()
        with self._lock:
            candidates = [
                (replica_id, replica)
                for replica_id, replica in self._replicas.items()
                if not replica.closed
            ]
            if candidates:
                start = self._rotation % len(candidates)
                self._rotation += 1
                candidates = candidates[start:] + candidates[:start]
        attempts = min(len(candidates), 1 + self._replication.read_retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            replica_id, replica = candidates[attempt]
            if attempt > 0:
                self._metrics.increment("replica_read_retries")
                backoff = attempt * self._replication.retry_backoff_seconds
                if backoff > 0:
                    self._sleep(backoff)
            try:
                # The router's bounds govern routed reads (a replica's own
                # config only applies to reads addressed to it directly).
                results = replica.search(
                    text,
                    limit=limit,
                    topic_id=topic_id,
                    primary_lsn=reference,
                    max_lag_lsn=self._replication.max_lag_lsn,
                    max_lag_seconds=self._replication.max_lag_seconds,
                )
            except ReplicationError as error:
                last_error = error
                with self._lock:
                    self._failures[replica_id] = (
                        self._failures.get(replica_id, 0) + 1
                    )
                if isinstance(error, ReplicaLaggingError):
                    self._metrics.increment("replica_read_stale")
                else:
                    self._metrics.increment("replica_read_errors")
                continue
            self._metrics.increment("replica_reads")
            return results
        if self._primary_alive and self._primary is not None:
            self._metrics.increment("primary_reads")
            return self._primary.engine.search_text(
                text, limit=limit, topic_id=topic_id
            )
        raise NoReplicaAvailableError(
            f"all {attempts} replica read attempt(s) failed and no primary "
            f"is alive"
        ) from last_error

    # -- failover ------------------------------------------------------------------

    def kill_primary(self) -> int:
        """Simulate a primary crash; returns its last allocated LSN.

        The service object is **abandoned, not closed** — nothing is
        flushed, snapshotted or repaired, exactly the disk state a
        SIGKILL leaves behind.  Writes raise until :meth:`promote`.
        """
        with self._lock:
            primary = self._require_primary()
            durability = primary.engine.durability
            if durability is not None:
                self._last_known_primary_lsn = max(
                    self._last_known_primary_lsn, durability.wal.last_lsn
                )
            self._primary = None
            self._primary_alive = False
            return self._last_known_primary_lsn

    def promote(self, replica_id: Optional[str] = None) -> PromotionResult:
        """Elect and promote a replica into the new writable primary.

        With no explicit ``replica_id`` the freshest replica wins (one
        final poll each, then highest applied LSN, ties broken by
        registration order — fully deterministic).  The promoted service
        replaces the primary and every surviving replica is re-registered
        with its replication guard; the promoted replica itself leaves
        the read rotation (its engine became the primary's).
        """
        with self._lock:
            if self._primary_alive:
                raise ReplicationError(
                    "cannot promote while a primary is alive: kill or "
                    "close it first"
                )
            if not self._replicas:
                raise NoReplicaAvailableError("no replicas to promote")
            if replica_id is None:
                freshest: Optional[str] = None
                freshest_lsn = -1
                for candidate_id, candidate in self._replicas.items():
                    if candidate.closed:
                        continue
                    try:
                        candidate.catch_up()
                    except ReplicationError:
                        continue
                    if candidate.applied_lsn > freshest_lsn:
                        freshest, freshest_lsn = candidate_id, candidate.applied_lsn
                if freshest is None:
                    raise NoReplicaAvailableError(
                        "every replica is closed or failed to catch up"
                    )
                replica_id = freshest
            replica = self._replicas.pop(replica_id, None)
            self._failures.pop(replica_id, None)
            self._pinned.pop(replica_id, None)
            if replica is None:
                raise ReplicationError(
                    f"no replica registered as {replica_id!r}"
                )
            result = replica.promote()
            self._primary = result.service
            self._primary_alive = True
            self._last_known_primary_lsn = result.promoted_lsn
            durability = result.service.engine.durability
            if durability is not None:
                for survivor_id, survivor in self._replicas.items():
                    durability.register_replica(
                        survivor_id, survivor.applied_lsn
                    )
                    # Survivor pins now live in the promoted primary's
                    # manager; the old (dead) manager's pins are moot.
                    self._pinned[survivor_id] = durability
            self._metrics.increment("promotions")
            self._metrics.set_gauge(
                "promoted_lsn", float(result.promoted_lsn)
            )
            return result

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        """Close every replica and (when alive) the primary."""
        with self._lock:
            replicas = list(self._replicas.values())
            self._replicas.clear()
            self._failures.clear()
            self._pinned.clear()
            primary = self._primary if self._primary_alive else None
            self._primary = None
            self._primary_alive = False
        for replica in replicas:
            replica.close()
        if primary is not None:
            primary.close()

    def __enter__(self) -> "ReplicatedService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
