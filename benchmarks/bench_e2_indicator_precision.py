"""E2 — Which implicit indicators are positive indicators of relevance? (RQ1)

The paper's first research question: "Which implicit feedback a user provides
can be considered as a positive indicator of relevance?"  We run a simulated
desktop user study, collect the interaction logs, and measure — for every
indicator — how often its firings land on shots that are truly relevant to
the session's topic (indicator precision), exactly the log-file analysis the
methodology section proposes.
"""

from __future__ import annotations

from _common import print_table

from repro.core import baseline_policy
from repro.evaluation import ExperimentCondition, LogAnalyser
from repro.simulation import shot_durations_from_collection

USERS = 10
TOPICS_PER_USER = 2


def run_experiment(bench_runner, bench_corpus):
    condition = ExperimentCondition(
        name="log_study", policy=baseline_policy(), user_count=USERS,
        topics_per_user=TOPICS_PER_USER, seed=202,
    )
    result = bench_runner.run_condition(condition)
    logs = result.session_logs()
    analyser = LogAnalyser(
        shot_durations=shot_durations_from_collection(bench_corpus.collection)
    )
    report = analyser.analyse(logs, qrels=bench_corpus.qrels)
    rows = [
        {"indicator": indicator, "precision": precision, "firings": firings}
        for indicator, precision, firings in report.indicator_precision_table()
    ]
    return rows, report


def test_e2_indicator_precision(benchmark, bench_runner, bench_corpus):
    rows, report = benchmark.pedantic(
        run_experiment, args=(bench_runner, bench_corpus), rounds=1, iterations=1
    )
    print_table("E2: per-indicator precision of inferred relevance (desktop)", rows)
    print(
        f"sessions: {report.session_count}, "
        f"implicit events/session: {report.implicit_events_per_session:.1f}, "
        f"explicit events/session: {report.explicit_events_per_session:.1f}"
    )
    by_name = {row["indicator"]: row["precision"] for row in rows}
    # Expected shape: committed engagement actions (playlist / explicit marks /
    # completed plays) are high-precision; passive browsing is weak.
    strong = [by_name[name] for name in ("playlist", "explicit_positive", "play_complete")
              if name in by_name]
    assert strong and min(strong) > 0.5
    if "browse" in by_name and strong:
        assert by_name["browse"] < max(strong)
