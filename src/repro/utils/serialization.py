"""JSON-lines serialization helpers for logs, runs and collection snapshots.

The library persists three kinds of artefacts:

* interaction log files (one JSON object per event line),
* TREC-style run and qrel files (whitespace-separated text), and
* collection snapshots (JSON).

Only the generic JSON-lines plumbing lives here; format-specific code lives
next to the objects it serialises (``repro.interfaces.logging``,
``repro.evaluation.trec``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

PathLike = Union[str, Path]


def write_jsonl(path: PathLike, records: Iterable[Dict[str, Any]]) -> int:
    """Write an iterable of dictionaries to ``path`` as JSON lines.

    Returns the number of records written.  Parent directories are created
    on demand so callers can write straight into experiment output trees.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Yield dictionaries from a JSON-lines file, skipping blank lines."""
    target = Path(path)
    with target.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield json.loads(line)


def read_jsonl_list(path: PathLike) -> List[Dict[str, Any]]:
    """Read an entire JSON-lines file into a list."""
    return list(read_jsonl(path))


def write_json(path: PathLike, payload: Any, indent: int = 2) -> None:
    """Write a JSON document, creating parent directories as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")


def read_json(path: PathLike) -> Any:
    """Read a JSON document."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
