"""The public service facade: multi-user adaptive retrieval behind typed requests.

This package is the supported way to *use* the reproduction: construct a
:class:`RetrievalService` over a corpus, open per-user sessions, and talk to
it through the frozen request/response values.  The lower layers
(:mod:`repro.core`, :mod:`repro.retrieval`, ...) remain importable as the
engine room, but new code should not wire them together by hand.
"""

from repro.service.config import ServiceConfig
from repro.service.registry import (
    POLICY_REGISTRY,
    SCORER_REGISTRY,
    WEIGHTING_SCHEME_REGISTRY,
    ComponentRegistry,
    UnknownComponentError,
    available_policies,
    available_scorers,
    available_weighting_schemes,
    create_policy,
    create_scorer,
    create_weighting_scheme,
    register_policy,
    register_scorer,
    register_weighting_scheme,
)
from repro.service.service import RetrievalService
from repro.service.sessions import (
    ManagedSession,
    SessionExpiredError,
    SessionManager,
    SessionNotFoundError,
)
from repro.service.types import (
    FeedbackBatch,
    SearchHit,
    SearchRequest,
    SearchResponse,
    SessionInfo,
)

__all__ = [
    "ServiceConfig",
    "POLICY_REGISTRY",
    "SCORER_REGISTRY",
    "WEIGHTING_SCHEME_REGISTRY",
    "ComponentRegistry",
    "UnknownComponentError",
    "available_policies",
    "available_scorers",
    "available_weighting_schemes",
    "create_policy",
    "create_scorer",
    "create_weighting_scheme",
    "register_policy",
    "register_scorer",
    "register_weighting_scheme",
    "RetrievalService",
    "ManagedSession",
    "SessionExpiredError",
    "SessionManager",
    "SessionNotFoundError",
    "FeedbackBatch",
    "SearchHit",
    "SearchRequest",
    "SearchResponse",
    "SessionInfo",
]
