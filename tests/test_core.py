"""Tests for the adaptive retrieval core: ostensive model, policies, feedback
model, evidence combination and the adaptive session itself."""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptationPolicy,
    AdaptiveVideoRetrievalSystem,
    CombinationConfig,
    EvidenceCombiner,
    ImplicitFeedbackModel,
    OstensiveAccumulator,
    baseline_policy,
    combined_policy,
    compare_profiles,
    explicit_policy,
    exponential_discount,
    implicit_only_policy,
    linear_discount,
    make_discount,
    profile_only_policy,
    reciprocal_discount,
    standard_policies,
    uniform_discount,
)
from repro.feedback import EventKind, InteractionEvent, heuristic_scheme
from repro.index import InvertedIndex, VisualIndex
from repro.profiles import UserProfile
from repro.retrieval import VideoRetrievalEngine


class TestOstensiveDiscounts:
    def test_uniform(self):
        assert uniform_discount(0) == uniform_discount(5) == 1.0

    def test_exponential_decreasing(self):
        assert exponential_discount(0) == 1.0
        assert exponential_discount(1) > exponential_discount(2)

    def test_reciprocal(self):
        assert reciprocal_discount(0) == 1.0
        assert reciprocal_discount(3) == pytest.approx(0.25)

    def test_linear_hits_zero(self):
        assert linear_discount(6, horizon=6) == 0.0
        assert linear_discount(3, horizon=6) == pytest.approx(0.5)

    def test_negative_age_rejected(self):
        for function in (uniform_discount, reciprocal_discount):
            with pytest.raises(ValueError):
                function(-1)

    def test_make_discount(self):
        assert make_discount("exponential", base=0.5)(1) == 0.5
        assert make_discount("uniform")(10) == 1.0
        with pytest.raises(ValueError):
            make_discount("quadratic")

    def test_ostensive_accumulator_recency_weighting(self):
        accumulator = OstensiveAccumulator(discount=make_discount("exponential", base=0.5))
        accumulator.observe_iteration({"old": 1.0})
        accumulator.observe_iteration({"new": 1.0})
        evidence = accumulator.weighted_evidence()
        assert evidence["new"] == 1.0
        assert evidence["old"] == 0.5
        assert accumulator.iteration_count == 2

    def test_compare_profiles_shapes(self):
        history = [{"a": 1.0}, {"b": 1.0}, {"b": 1.0}]
        results = compare_profiles(history)
        assert set(results) == {"uniform", "exponential", "reciprocal", "linear"}
        assert results["uniform"]["a"] == 1.0
        assert results["exponential"]["a"] < results["uniform"]["a"]


class TestPolicies:
    def test_presets_flags(self):
        assert not baseline_policy().use_profile and not baseline_policy().use_implicit
        assert profile_only_policy().use_profile
        assert implicit_only_policy().use_implicit
        assert combined_policy().use_profile and combined_policy().use_implicit
        assert explicit_policy().use_explicit

    def test_standard_policies_unique_names(self):
        names = [policy.name for policy in standard_policies()]
        assert len(names) == len(set(names)) == 4

    def test_with_overrides(self):
        policy = combined_policy().with_overrides(implicit_weight=0.5)
        assert policy.implicit_weight == 0.5
        assert policy.use_profile

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptationPolicy(name="x", profile_weight=1.5)
        with pytest.raises(ValueError):
            AdaptationPolicy(name="x", expansion_terms=-1)

    def test_describe(self):
        description = combined_policy().describe()
        assert description["name"] == "combined"
        assert description["use_implicit"] is True


class TestImplicitFeedbackModel:
    def test_expansion_terms_from_positive_evidence(self, small_corpus):
        index = InvertedIndex.from_collection(small_corpus.collection)
        model = ImplicitFeedbackModel(index, expansion_terms=5)
        topic = small_corpus.topics.topics()[0]
        relevant = sorted(small_corpus.qrels.relevant_shots(topic.topic_id))[:3]
        terms = model.expansion_term_weights({shot_id: 1.0 for shot_id in relevant})
        assert 0 < len(terms) <= 5
        assert max(terms.values()) <= 1.0

    def test_no_positive_evidence_no_expansion(self, small_corpus):
        index = InvertedIndex.from_collection(small_corpus.collection)
        model = ImplicitFeedbackModel(index)
        assert model.expansion_term_weights({"s": -1.0}) == {}
        assert ImplicitFeedbackModel(index, expansion_terms=0).expansion_term_weights(
            {"s": 1.0}
        ) == {}

    def test_rerank_scores_propagate_to_similar_shots(self, small_corpus):
        index = InvertedIndex.from_collection(small_corpus.collection)
        visual = VisualIndex.from_collection(small_corpus.collection)
        model = ImplicitFeedbackModel(index, visual_index=visual, visual_propagation=0.5)
        shot_id = small_corpus.collection.shot_ids()[0]
        scores = model.rerank_scores({shot_id: 1.0})
        assert scores[shot_id] >= 1.0
        assert len(scores) > 1  # neighbours received propagated evidence

    def test_negative_evidence_not_propagated(self, small_corpus):
        index = InvertedIndex.from_collection(small_corpus.collection)
        visual = VisualIndex.from_collection(small_corpus.collection)
        model = ImplicitFeedbackModel(index, visual_index=visual, visual_propagation=0.5)
        shot_id = small_corpus.collection.shot_ids()[0]
        scores = model.rerank_scores({shot_id: -1.0})
        assert list(scores) == [shot_id]

    def test_no_visual_index_no_propagation(self, small_corpus):
        index = InvertedIndex.from_collection(small_corpus.collection)
        model = ImplicitFeedbackModel(index)
        shot_id = small_corpus.collection.shot_ids()[0]
        assert list(model.rerank_scores({shot_id: 1.0})) == [shot_id]


class TestEvidenceCombiner:
    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            CombinationConfig(strategy="magic")

    def test_linear_combination(self):
        combiner = EvidenceCombiner(CombinationConfig(strategy="linear",
                                                      profile_weight=0.5,
                                                      implicit_weight=0.5))
        combined = combiner.combine({"a": 1.0}, {"b": 1.0})
        assert combined["a"] == pytest.approx(0.5)
        assert combined["b"] == pytest.approx(0.5)

    def test_cold_start_shifts_with_evidence_mass(self):
        combiner = EvidenceCombiner(CombinationConfig(strategy="cold_start",
                                                      cold_start_evidence_scale=2.0))
        sparse = combiner.combine({"p": 1.0}, {"i": 0.1})
        rich = combiner.combine({"p": 1.0}, {"i": 20.0})
        # With little implicit evidence the profile dominates; with a lot the
        # implicit side does.
        assert sparse["p"] > sparse["i"]
        assert rich["i"] > rich["p"]

    def test_profile_gate_scales_implicit_by_category_interest(self, small_corpus):
        collection = small_corpus.collection
        sports_shot = next(s for s in collection.shots() if s.category == "sports")
        other_shot = next(s for s in collection.shots() if s.category != "sports")
        profile = UserProfile.single_interest("u", "sports", 1.0)
        combiner = EvidenceCombiner(CombinationConfig(strategy="profile_gate",
                                                      gate_floor=0.1))
        combined = combiner.combine(
            {},
            {sports_shot.shot_id: 1.0, other_shot.shot_id: 1.0},
            collection=collection,
            profile=profile,
        )
        assert combined[sports_shot.shot_id] > combined[other_shot.shot_id]

    def test_profile_affinity_helper(self, small_corpus):
        collection = small_corpus.collection
        profile = UserProfile.single_interest("u", "sports", 1.0)
        sports_ids = [s.shot_id for s in collection.shots_in_category("sports")[:3]]
        affinity = EvidenceCombiner.profile_affinity(profile, collection, sports_ids)
        assert all(value > 0 for value in affinity.values())


class TestAdaptiveSession:
    def _play_events(self, shot_ids, session_id="s"):
        events = []
        for index, shot_id in enumerate(shot_ids):
            events.append(InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=float(index),
                                           shot_id=shot_id, session_id=session_id))
            events.append(InteractionEvent(kind=EventKind.PLAY_COMPLETE,
                                           timestamp=float(index) + 0.5,
                                           shot_id=shot_id, session_id=session_id))
        return events

    def test_baseline_session_matches_plain_engine(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        session = adaptive_system.create_session(policy=baseline_policy(),
                                                 topic_id=topic.topic_id)
        query_text = " ".join(topic.query_terms[:2])
        adapted = session.submit_query(query_text)
        plain = adaptive_system.engine.search_text(query_text, limit=50)
        assert adapted.shot_ids() == plain.shot_ids()

    def test_baseline_ignores_feedback(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        session = adaptive_system.create_session(policy=baseline_policy(),
                                                 topic_id=topic.topic_id)
        query_text = " ".join(topic.query_terms[:2])
        first = session.submit_query(query_text)
        session.observe(self._play_events(first.shot_ids()[:3]))
        second = session.submit_query(query_text)
        assert first.shot_ids() == second.shot_ids()
        assert session.implicit_evidence() == {}

    def test_implicit_feedback_changes_ranking(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        session = adaptive_system.create_session(policy=implicit_only_policy(),
                                                 topic_id=topic.topic_id)
        query_text = topic.query_terms[0]
        first = session.submit_query(query_text)
        session.observe(self._play_events(relevant[:4]))
        second = session.submit_query(query_text)
        assert first.shot_ids() != second.shot_ids()
        assert session.implicit_evidence()

    def test_implicit_feedback_on_relevant_shots_improves_ranking(
        self, medium_corpus, adaptive_system
    ):
        from repro.evaluation import average_precision

        topic = medium_corpus.topics.topics()[2]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        judgements = medium_corpus.qrels.judgements_for(topic.topic_id)
        query_text = topic.query_terms[0]

        baseline_session = adaptive_system.create_session(policy=baseline_policy(),
                                                          topic_id=topic.topic_id)
        baseline_ap = average_precision(
            baseline_session.submit_query(query_text).shot_ids(), judgements
        )

        session = adaptive_system.create_session(policy=implicit_only_policy(),
                                                 topic_id=topic.topic_id)
        session.submit_query(query_text)
        session.observe(self._play_events(relevant[:5]))
        adapted_ap = average_precision(
            session.submit_query(query_text).shot_ids(), judgements
        )
        assert adapted_ap >= baseline_ap

    def test_profile_only_session_promotes_profile_category(
        self, medium_corpus, adaptive_system
    ):
        topic = medium_corpus.topics.topics()[0]
        profile = UserProfile.single_interest("u", topic.category, 1.0)
        session = adaptive_system.create_session(
            profile=profile, policy=profile_only_policy(), topic_id=topic.topic_id
        )
        results = session.submit_query(topic.query_terms[0])
        assert len(results) > 0
        top_categories = [
            medium_corpus.collection.shot(item.shot_id).category
            for item in results.top(5)
        ]
        assert top_categories.count(topic.category) >= 3

    def test_explicit_policy_uses_judgements(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[1]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        session = adaptive_system.create_session(policy=explicit_policy(),
                                                 topic_id=topic.topic_id)
        first = session.submit_query(topic.query_terms[0])
        events = [
            InteractionEvent(kind=EventKind.MARK_RELEVANT, timestamp=1.0, shot_id=shot_id)
            for shot_id in relevant[:3]
        ]
        session.observe(events)
        assert session.explicit_store().judgement_count() == 3
        second = session.submit_query(topic.query_terms[0])
        assert second.shot_ids() != first.shot_ids()

    def test_recommendations_from_evidence(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        session = adaptive_system.create_session(policy=implicit_only_policy(),
                                                 topic_id=topic.topic_id)
        session.submit_query(topic.query_terms[0])
        session.observe(self._play_events(relevant[:3]))
        recommendations = session.recommendations(limit=5)
        assert len(recommendations) > 0
        # Recommendations exclude the shots the user already saw.
        assert not set(recommendations.shot_ids()) & set(relevant[:3])

    def test_recommendations_empty_without_evidence(self, adaptive_system):
        session = adaptive_system.create_session(policy=implicit_only_policy())
        assert len(session.recommendations()) == 0

    def test_refresh_requires_query(self, adaptive_system):
        session = adaptive_system.create_session(policy=baseline_policy())
        with pytest.raises(RuntimeError):
            session.refresh_results()

    def test_iterations_recorded(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        session = adaptive_system.create_session(policy=implicit_only_policy(),
                                                 topic_id=topic.topic_id)
        session.submit_query(topic.query_terms[0])
        session.submit_query(" ".join(topic.query_terms[:2]))
        assert session.iteration_count == 2
        assert session.iterations[0].iteration == 1
        assert session.iterations[1].query_text == " ".join(topic.query_terms[:2])

    def test_seen_shots_tracked(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        session = adaptive_system.create_session(policy=implicit_only_policy(),
                                                 topic_id=topic.topic_id)
        session.submit_query(topic.query_terms[0])
        session.observe(self._play_events(["X1", "X2"]))
        assert session.seen_shots() == ["X1", "X2"]
