"""Retrieval effectiveness metrics.

Standard TREC-style metrics over ranked lists and graded judgements:
precision@k, recall@k, average precision, MAP, nDCG, reciprocal rank and
simple set-based measures.  All functions accept a ranked list of document
ids plus either a set of relevant ids or a ``{doc_id: grade}`` mapping, so
they work directly with :class:`~repro.collection.qrels.Qrels` output.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Union

Relevance = Union[Set[str], Mapping[str, int]]


def _relevant_set(relevance: Relevance) -> Set[str]:
    if isinstance(relevance, Mapping):
        return {doc_id for doc_id, grade in relevance.items() if grade > 0}
    return set(relevance)


def _grade(relevance: Relevance, doc_id: str) -> int:
    if isinstance(relevance, Mapping):
        return int(relevance.get(doc_id, 0))
    return 1 if doc_id in relevance else 0


def precision_at_k(ranking: Sequence[str], relevance: Relevance, k: int) -> float:
    """Fraction of the top ``k`` results that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not ranking:
        return 0.0
    relevant = _relevant_set(relevance)
    top = ranking[:k]
    return sum(1 for doc_id in top if doc_id in relevant) / k


def recall_at_k(ranking: Sequence[str], relevance: Relevance, k: int) -> float:
    """Fraction of all relevant documents retrieved in the top ``k``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant = _relevant_set(relevance)
    if not relevant:
        return 0.0
    top = ranking[:k]
    return sum(1 for doc_id in top if doc_id in relevant) / len(relevant)


def average_precision(ranking: Sequence[str], relevance: Relevance) -> float:
    """Average precision of one ranking."""
    relevant = _relevant_set(relevance)
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for rank, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant)


def reciprocal_rank(ranking: Sequence[str], relevance: Relevance) -> float:
    """1 / rank of the first relevant result (0 if none retrieved)."""
    relevant = _relevant_set(relevance)
    for rank, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant:
            return 1.0 / rank
    return 0.0


def dcg_at_k(ranking: Sequence[str], relevance: Relevance, k: int) -> float:
    """Discounted cumulative gain with graded relevance (gain = 2^grade - 1)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    total = 0.0
    for rank, doc_id in enumerate(ranking[:k], start=1):
        grade = _grade(relevance, doc_id)
        if grade > 0:
            total += (2 ** grade - 1) / math.log2(rank + 1)
    return total


def ndcg_at_k(ranking: Sequence[str], relevance: Relevance, k: int) -> float:
    """Normalised DCG at ``k``."""
    if isinstance(relevance, Mapping):
        grades = sorted(
            (grade for grade in relevance.values() if grade > 0), reverse=True
        )
    else:
        grades = [1] * len(_relevant_set(relevance))
    ideal = 0.0
    for rank, grade in enumerate(grades[:k], start=1):
        ideal += (2 ** grade - 1) / math.log2(rank + 1)
    if ideal == 0.0:
        return 0.0
    return dcg_at_k(ranking, relevance, k) / ideal


def success_at_k(ranking: Sequence[str], relevance: Relevance, k: int) -> float:
    """1.0 if any relevant document appears in the top ``k``, else 0.0."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant = _relevant_set(relevance)
    return 1.0 if any(doc_id in relevant for doc_id in ranking[:k]) else 0.0


def mean_metric(values: Iterable[float]) -> float:
    """Arithmetic mean (0 for an empty iterable)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def mean_average_precision(
    rankings: Mapping[str, Sequence[str]], judgements: Mapping[str, Relevance]
) -> float:
    """MAP over ``{topic_id: ranking}`` and ``{topic_id: relevance}``.

    Topics missing from ``judgements`` (or with no relevant documents)
    contribute zero, matching trec_eval behaviour when judged topics are
    fixed in advance.
    """
    if not rankings:
        return 0.0
    scores = [
        average_precision(ranking, judgements.get(topic_id, set()))
        for topic_id, ranking in rankings.items()
    ]
    return mean_metric(scores)


def evaluate_ranking(
    ranking: Sequence[str],
    relevance: Relevance,
    cutoffs: Sequence[int] = (5, 10, 20),
) -> Dict[str, float]:
    """A standard bundle of metrics for one ranking."""
    metrics: Dict[str, float] = {
        "average_precision": average_precision(ranking, relevance),
        "reciprocal_rank": reciprocal_rank(ranking, relevance),
    }
    for cutoff in cutoffs:
        metrics[f"precision@{cutoff}"] = precision_at_k(ranking, relevance, cutoff)
        metrics[f"recall@{cutoff}"] = recall_at_k(ranking, relevance, cutoff)
        metrics[f"ndcg@{cutoff}"] = ndcg_at_k(ranking, relevance, cutoff)
    return metrics


def relative_improvement(baseline: float, treatment: float) -> float:
    """Relative improvement of ``treatment`` over ``baseline`` (0 if baseline is 0)."""
    if baseline == 0:
        return 0.0
    return (treatment - baseline) / baseline
