"""Tokenisation and light normalisation for transcripts and queries.

The same tokenizer must be used at indexing and query time, so it is a small
standalone object that both the inverted index and the retrieval engine hold
a reference to.  Stemming is a light suffix-stripping pass (an "s-stemmer"),
which is all the synthetic vocabulary needs; the interface mirrors what a
Porter stemmer would provide so a real one can be slotted in.
"""

from __future__ import annotations

import re
from collections import Counter
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.collection.vocabulary import STOPWORDS

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

_STEM_SUFFIXES = ("ings", "ing", "ies", "es", "s")


@lru_cache(maxsize=65536)
def _light_stem(token: str) -> str:
    """Suffix-strip one token (memoised — the vocabulary is small and terms
    repeat constantly across documents and queries)."""
    for suffix in _STEM_SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            return token[: -len(suffix)]
    return token


class Tokenizer:
    """Lower-cases, splits, removes stopwords and applies light stemming."""

    def __init__(
        self,
        stopwords: Iterable[str] = STOPWORDS,
        remove_stopwords: bool = True,
        stem: bool = True,
        min_token_length: int = 2,
    ) -> None:
        self._stopwords: FrozenSet[str] = frozenset(word.lower() for word in stopwords)
        self._remove_stopwords = remove_stopwords
        self._stem = stem
        self._min_length = max(1, int(min_token_length))

    @property
    def stopwords(self) -> FrozenSet[str]:
        """The stopword set in use."""
        return self._stopwords

    def stem_token(self, token: str) -> str:
        """Light suffix stripping: plural and gerund endings (memoised)."""
        if not self._stem:
            return token
        return _light_stem(token)

    def tokenize(self, text: str) -> List[str]:
        """Tokenise a text into normalised index terms."""
        if not text:
            return []
        stem = _light_stem if self._stem else None
        min_length = self._min_length
        remove_stopwords = self._remove_stopwords
        stopwords = self._stopwords
        tokens: List[str] = []
        append = tokens.append
        for token in _TOKEN_PATTERN.findall(text.lower()):
            if len(token) < min_length:
                continue
            if remove_stopwords and token in stopwords:
                continue
            append(stem(token) if stem is not None else token)
        return tokens

    def term_frequencies(self, text: str) -> Dict[str, int]:
        """Bag-of-words term frequencies for a text.

        ``Counter`` counts in C and preserves first-occurrence order, exactly
        like the dictionary loop it replaces.
        """
        return dict(Counter(self.tokenize(text)))

    def tokenize_many(self, texts: Sequence[str]) -> List[List[str]]:
        """Tokenise a batch of texts."""
        return [self.tokenize(text) for text in texts]
