"""Differential test: corpus save/load round-trip under sharding.

``save_corpus`` / ``load_corpus`` were written long before the sharded
engine existed; this suite pins that a reloaded corpus is a perfect
substitute for the original **at every shard count** — same shard
assignment, same dense interning, same scores — and that the reloaded
corpus preserves the mono/sharded equivalence contract.

Carries the ``shard`` marker alongside the sharding equivalence suite.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.analysis import analyse_collection
from repro.collection import load_corpus, save_corpus
from repro.durability import engine_state_digest
from repro.retrieval import Query, VideoRetrievalEngine
from repro.service import RetrievalService, ServiceConfig

pytestmark = pytest.mark.shard

SHARD_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def reloaded_corpus(sharding_corpus, tmp_path_factory):
    directory = save_corpus(
        sharding_corpus, tmp_path_factory.mktemp("corpus") / "saved"
    )
    stored = load_corpus(directory)
    # Snapshots are analysis-agnostic by design: features and concept
    # scores are re-derived (deterministically, from the stored latent
    # signals) rather than persisted.
    analyse_collection(stored.collection)
    return stored


def _service(collection, num_shards: int) -> RetrievalService:
    return RetrievalService(
        collection,
        config=ServiceConfig(num_shards=num_shards, result_cache_size=0),
    )


def assert_identical_rankings(
    expected_engine: VideoRetrievalEngine,
    actual_engine: VideoRetrievalEngine,
    queries: List[Query],
) -> None:
    for query in queries:
        expected = expected_engine.search(query, limit=None)
        actual = actual_engine.search(query, limit=None)
        assert expected.shot_ids() == actual.shot_ids(), query
        assert [item.score for item in expected.items] == [
            item.score for item in actual.items
        ], query
        assert [item.rank for item in expected.items] == [
            item.rank for item in actual.items
        ], query


class TestShardedCorpusRoundTrip:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_reloaded_corpus_ranks_identically(
        self, sharding_corpus, reloaded_corpus, make_random_queries, num_shards
    ):
        queries = make_random_queries(sharding_corpus, seed=880 + num_shards, count=12)
        original = _service(sharding_corpus.collection, num_shards)
        reloaded = _service(reloaded_corpus.collection, num_shards)
        try:
            assert engine_state_digest(original.engine) == engine_state_digest(
                reloaded.engine
            )
            assert_identical_rankings(original.engine, reloaded.engine, queries)
        finally:
            original.close()
            reloaded.close()

    def test_reloaded_corpus_preserves_mono_sharded_equivalence(
        self, sharding_corpus, reloaded_corpus, make_random_queries
    ):
        # The reloaded corpus must not only match the original per shard
        # count — it must itself still satisfy the scatter-gather
        # contract: monolithic vs sharded over the *reloaded* collection.
        queries = make_random_queries(sharding_corpus, seed=990, count=12)
        mono = _service(reloaded_corpus.collection, 1)
        sharded = _service(reloaded_corpus.collection, 4)
        try:
            assert_identical_rankings(mono.engine, sharded.engine, queries)
        finally:
            mono.close()
            sharded.close()

    def test_round_trip_preserves_relevance_metadata(
        self, sharding_corpus, reloaded_corpus
    ):
        assert reloaded_corpus.seed == sharding_corpus.seed
        original_topics = {
            topic.topic_id for topic in sharding_corpus.topics.topics()
        }
        reloaded_topics = {
            topic.topic_id for topic in reloaded_corpus.topics.topics()
        }
        assert reloaded_topics == original_topics
        for topic_id in sorted(original_topics):
            assert reloaded_corpus.qrels.relevant_shots(
                topic_id
            ) == sharding_corpus.qrels.relevant_shots(topic_id)
