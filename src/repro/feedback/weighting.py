"""Indicator weighting schemes (the paper's second research question).

Given per-shot indicator strengths, a weighting scheme turns them into a
single relevance-evidence score per shot.  The paper asks "how these
features have to be weighted to increase retrieval performance — it is not
clear which features are stronger and which are weaker indicators of
relevance".  Experiment E3 sweeps the schemes below; the learned scheme
additionally shows how weights can be fitted from logged sessions plus
qrels, which is exactly the simulation-based tuning methodology of
Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.collection.qrels import Qrels
from repro.feedback.indicators import INDICATOR_NAMES

#: Indicators that carry negative evidence; their weights are applied with a
#: minus sign by every scheme.
NEGATIVE_INDICATORS = frozenset({"explicit_negative", "skip"})


@dataclass(frozen=True)
class WeightingScheme:
    """A named assignment of weights to implicit indicators."""

    name: str
    weights: Mapping[str, float] = field(default_factory=dict)
    description: str = ""

    def weight(self, indicator: str) -> float:
        """The (non-negative) weight of an indicator under this scheme."""
        return float(self.weights.get(indicator, 0.0))

    def evidence_for_shot(self, indicator_strengths: Mapping[str, float]) -> float:
        """Combine one shot's indicator strengths into a single evidence score.

        Positive indicators add ``weight * strength``; negative indicators
        subtract it.  The result can be negative (net disinterest).
        """
        evidence = 0.0
        for indicator, strength in indicator_strengths.items():
            weight = self.weight(indicator)
            if weight == 0.0:
                continue
            if indicator in NEGATIVE_INDICATORS:
                evidence -= weight * strength
            else:
                evidence += weight * strength
        return evidence

    def evidence_map(
        self, per_shot_strengths: Mapping[str, Mapping[str, float]]
    ) -> Dict[str, float]:
        """Evidence scores for every shot in an indicator-strength map."""
        return {
            shot_id: self.evidence_for_shot(strengths)
            for shot_id, strengths in per_shot_strengths.items()
        }


def uniform_scheme() -> WeightingScheme:
    """Every implicit indicator counts the same (explicit ones too)."""
    return WeightingScheme(
        name="uniform",
        weights={name: 1.0 for name in INDICATOR_NAMES},
        description="all indicators weighted equally",
    )


def binary_click_scheme() -> WeightingScheme:
    """Only the click-to-play indicator counts (the web-search-style baseline)."""
    return WeightingScheme(
        name="binary_click",
        weights={"play_click": 1.0},
        description="click-through only",
    )


def heuristic_scheme() -> WeightingScheme:
    """Hand-tuned weights reflecting the interaction-cost intuition.

    Actions that cost the user more effort (adding to a playlist, expanding
    metadata, watching a clip to its end) are stronger indicators than cheap
    incidental actions (browsing, hovering), mirroring the ordering prior
    work found in the text domain.
    """
    return WeightingScheme(
        name="heuristic",
        weights={
            "play_click": 0.4,
            "play_duration": 0.9,
            "play_complete": 1.0,
            "browse": 0.05,
            "hover": 0.15,
            "seek": 0.5,
            "metadata": 0.6,
            "playlist": 1.0,
            "select": 0.4,
            "explicit_positive": 1.2,
            "explicit_negative": 1.2,
            "skip": 0.4,
        },
        description="effort-weighted hand-tuned scheme",
    )


def explicit_only_scheme() -> WeightingScheme:
    """Only explicit judgements count (the classic relevance-feedback baseline)."""
    return WeightingScheme(
        name="explicit_only",
        weights={"explicit_positive": 1.0, "explicit_negative": 1.0},
        description="explicit feedback only",
    )


def dwell_only_scheme() -> WeightingScheme:
    """Only viewing time counts (for the dwell-time reliability experiment)."""
    return WeightingScheme(
        name="dwell_only",
        weights={"play_duration": 1.0, "play_complete": 1.0},
        description="viewing time only",
    )


def default_schemes() -> Tuple[WeightingScheme, ...]:
    """The scheme sweep used by experiment E3."""
    return (
        binary_click_scheme(),
        uniform_scheme(),
        heuristic_scheme(),
        dwell_only_scheme(),
        explicit_only_scheme(),
    )


class IndicatorWeightLearner:
    """Learns indicator weights from logged sessions and relevance judgements.

    For each indicator the learner computes its *precision*: among the shots
    on which the indicator fired, the (strength-weighted) fraction that were
    truly relevant to the topic of the session in which they fired.  The
    learned weight is ``max(0, 2 * precision - 1)`` — an indicator that fires
    on relevant and non-relevant shots alike (precision 0.5) gets weight 0,
    one that only fires on relevant shots gets weight 1.  Negative indicators
    are learned against *non*-relevance instead.

    This simple estimator is intentionally transparent: the point of the
    reproduction is to show that weights fitted from simulation logs beat
    uniform weighting, not to ship the best possible learning-to-rank model.
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self._smoothing = smoothing

    def indicator_precisions(
        self,
        observations: Iterable[Tuple[str, Mapping[str, Mapping[str, float]]]],
        qrels: Qrels,
    ) -> Dict[str, float]:
        """Per-indicator precision over ``(topic_id, per_shot_strengths)`` pairs."""
        hits: Dict[str, float] = {name: 0.0 for name in INDICATOR_NAMES}
        mass: Dict[str, float] = {name: 0.0 for name in INDICATOR_NAMES}
        for topic_id, per_shot in observations:
            for shot_id, strengths in per_shot.items():
                relevant = qrels.is_relevant(topic_id, shot_id)
                for indicator, strength in strengths.items():
                    if strength <= 0:
                        continue
                    mass[indicator] = mass.get(indicator, 0.0) + strength
                    target_is_relevance = indicator not in NEGATIVE_INDICATORS
                    if relevant == target_is_relevance:
                        hits[indicator] = hits.get(indicator, 0.0) + strength
        precisions: Dict[str, float] = {}
        for indicator in set(hits) | set(mass):
            denominator = mass.get(indicator, 0.0) + 2 * self._smoothing
            precisions[indicator] = (
                (hits.get(indicator, 0.0) + self._smoothing) / denominator
                if denominator > 0
                else 0.5
            )
        return precisions

    def learn(
        self,
        observations: Iterable[Tuple[str, Mapping[str, Mapping[str, float]]]],
        qrels: Qrels,
        name: str = "learned",
    ) -> WeightingScheme:
        """Fit a weighting scheme from logged observations and qrels."""
        precisions = self.indicator_precisions(observations, qrels)
        weights = {
            indicator: max(0.0, 2.0 * precision - 1.0)
            for indicator, precision in precisions.items()
        }
        return WeightingScheme(
            name=name,
            weights=weights,
            description="weights fitted from simulated session logs",
        )
