"""repro: reproduction of "Studying Interaction Methodologies in Video Retrieval".

The package implements an adaptive news-video retrieval system with implicit
relevance feedback, static user profiles and a simulated-user evaluation
framework, together with every substrate those pieces depend on (synthetic
TRECVID-like collection, video analysis, text/visual indexing, interface
models and an evaluation harness).

Typical entry points:

>>> from repro import generate_corpus, VideoRetrievalEngine
>>> corpus = generate_corpus(seed=7)
>>> engine = VideoRetrievalEngine(corpus.collection)
>>> results = engine.search_text(corpus.topics.topics()[0].title)
"""

from repro.collection import (
    Collection,
    CollectionConfig,
    CollectionGenerator,
    Qrels,
    SyntheticCorpus,
    Topic,
    TopicSet,
    generate_corpus,
)
from repro.retrieval import Query, ResultList, VideoRetrievalEngine

__version__ = "1.0.0"

__all__ = [
    "Collection",
    "CollectionConfig",
    "CollectionGenerator",
    "Qrels",
    "SyntheticCorpus",
    "Topic",
    "TopicSet",
    "generate_corpus",
    "Query",
    "ResultList",
    "VideoRetrievalEngine",
    "__version__",
]
