"""Static user profiles: ontology, profile model, learning and re-ranking."""

from repro.profiles.learning import ProfileLearner, build_profile_for_topics
from repro.profiles.ontology import InterestOntology, OntologyNode
from repro.profiles.profile import Demographics, UserProfile
from repro.profiles.reranker import ProfileReranker
from repro.profiles.store import ProfileStore

__all__ = [
    "ProfileLearner",
    "build_profile_for_topics",
    "InterestOntology",
    "OntologyNode",
    "Demographics",
    "UserProfile",
    "ProfileReranker",
    "ProfileStore",
]
