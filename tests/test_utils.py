"""Tests for repro.utils: RNG determinism, validation helpers, serialization."""

from __future__ import annotations

import pytest

from repro.utils import (
    RandomSource,
    derive_seed,
    ensure_in_range,
    ensure_non_empty,
    ensure_positive,
    ensure_probability,
    ensure_type,
    read_json,
    read_jsonl_list,
    spawn_rng,
    write_json,
    write_jsonl,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_different_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_base_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        seed = derive_seed(999, "x", "y", 3)
        assert 0 <= seed < 2 ** 63

    def test_spawn_rng_reproducible(self):
        assert spawn_rng(5, "k").random() == spawn_rng(5, "k").random()


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_spawn_independent_of_parent_consumption(self):
        a = RandomSource(7)
        a.random()  # consume from the parent
        child_after = a.spawn("child").random()
        child_fresh = RandomSource(7).spawn("child").random()
        assert child_after == child_fresh

    def test_spawn_distinct_labels_give_distinct_streams(self):
        src = RandomSource(7)
        assert src.spawn("a").random() != src.spawn("b").random()

    def test_randint_within_bounds(self):
        src = RandomSource(3)
        values = [src.randint(1, 6) for _ in range(200)]
        assert all(1 <= v <= 6 for v in values)
        assert len(set(values)) > 1

    def test_boolean_probability_extremes(self):
        src = RandomSource(3)
        assert all(src.boolean(1.0) for _ in range(20))
        assert not any(src.boolean(0.0) for _ in range(20))

    def test_choice_and_sample(self):
        src = RandomSource(3)
        items = ["a", "b", "c", "d"]
        assert src.choice(items) in items
        sampled = src.sample(items, 2)
        assert len(sampled) == 2
        assert len(set(sampled)) == 2

    def test_shuffled_preserves_elements(self):
        src = RandomSource(3)
        items = list(range(10))
        shuffled = src.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched

    def test_poisson_zero_lambda(self):
        assert RandomSource(3).poisson(0) == 0

    def test_poisson_negative_raises(self):
        with pytest.raises(ValueError):
            RandomSource(3).poisson(-1)

    def test_poisson_mean_roughly_lambda(self):
        src = RandomSource(3)
        values = [src.poisson(4.0) for _ in range(400)]
        mean = sum(values) / len(values)
        assert 3.0 < mean < 5.0

    def test_zipf_index_bounds_and_bias(self):
        src = RandomSource(3)
        values = [src.zipf_index(10) for _ in range(500)]
        assert all(0 <= v < 10 for v in values)
        # Lower indices should be more common under a Zipf distribution.
        assert values.count(0) > values.count(9)

    def test_zipf_index_invalid(self):
        with pytest.raises(ValueError):
            RandomSource(3).zipf_index(0)

    def test_lognormal_positive(self):
        src = RandomSource(3)
        assert all(src.lognormal(1.0, 0.5) > 0 for _ in range(50))


class TestValidation:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(2.5, "x") == 2.5

    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            ensure_positive(0, "x")

    def test_ensure_probability_bounds(self):
        assert ensure_probability(0.0, "p") == 0.0
        assert ensure_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            ensure_probability(1.5, "p")

    def test_ensure_in_range(self):
        assert ensure_in_range(5, 0, 10, "v") == 5
        with pytest.raises(ValueError):
            ensure_in_range(11, 0, 10, "v")

    def test_ensure_non_empty(self):
        assert ensure_non_empty([1], "items") == [1]
        with pytest.raises(ValueError):
            ensure_non_empty([], "items")

    def test_ensure_type(self):
        assert ensure_type("abc", str, "s") == "abc"
        with pytest.raises(TypeError):
            ensure_type(1, str, "s")


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        records = [{"a": 1}, {"b": [1, 2, 3]}, {"c": {"nested": True}}]
        path = tmp_path / "out" / "records.jsonl"
        count = write_jsonl(path, records)
        assert count == 3
        assert read_jsonl_list(path) == records

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl_list(path) == [{"a": 1}, {"b": 2}]

    def test_json_round_trip(self, tmp_path):
        payload = {"name": "run", "values": [0.1, 0.2]}
        path = tmp_path / "deep" / "doc.json"
        write_json(path, payload)
        assert read_json(path) == payload
