"""Offline integrity verification of a durability directory.

``repro verify DIR`` (and the chaos harness) need a read-only answer to
"how much of this directory is trustworthy?" without building an engine:

* every WAL segment is scanned through the same checksummed-frame reader
  recovery uses, so torn or corrupt tails are found exactly where replay
  would stop;
* the snapshot manifest chain is walked root-to-tip and its delta files
  are loaded, so a missing link or a non-dense sequence is reported
  rather than discovered at recovery time;
* the merged LSN stream is checked for holes above the snapshot
  watermark, and the **maximal gap-free LSN** — the point recovery (and a
  tailing replica) would stop at — is reported.

Verification never writes: it is safe against a live primary's directory
(it may observe a checkpoint mid-flight, in which case a re-run converges)
and against directories whose damage would make recovery refuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.durability.recovery import RecoveryError, read_header
from repro.durability.snapshots import SnapshotError, SnapshotStore
from repro.durability.wal import WriteAheadLog
from repro.utils.serialization import PathLike


@dataclass
class SegmentReport:
    """One WAL segment's scan result."""

    name: str
    records: int
    last_lsn: int
    tail_error: Optional[str] = None


@dataclass
class VerifyReport:
    """Everything :func:`verify_directory` established about a directory.

    ``problems`` is the damage list; an empty list means every byte the
    durability contract relies on checked out.  ``max_gap_free_lsn`` is
    the LSN recovery would restore through — snapshot watermark plus the
    longest contiguous WAL run above it.
    """

    directory: str
    num_shards: int = 0
    checkpoint_ids: List[int] = field(default_factory=list)
    snapshot_wal_lsn: int = 0
    snapshot_documents: int = 0
    snapshot_shots: int = 0
    segments: List[SegmentReport] = field(default_factory=list)
    records_below_watermark: int = 0
    records_in_prefix: int = 0
    records_beyond_prefix: int = 0
    max_gap_free_lsn: int = 0
    gap: Optional[Tuple[int, int]] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no damage was found."""
        return not self.problems

    def lines(self) -> List[str]:
        """A human-readable report, one string per output line."""
        out = [f"verify {self.directory}: {self.num_shards} shard(s)"]
        if self.checkpoint_ids:
            out.append(
                f"snapshot chain: checkpoints "
                f"{self.checkpoint_ids[0]}..{self.checkpoint_ids[-1]} "
                f"({len(self.checkpoint_ids)} manifests), watermark lsn "
                f"{self.snapshot_wal_lsn}, {self.snapshot_documents} "
                f"documents + {self.snapshot_shots} shots restored"
            )
        else:
            out.append("snapshot chain: empty (no checkpoints)")
        for segment in self.segments:
            note = f", TORN TAIL: {segment.tail_error}" if segment.tail_error else ""
            out.append(
                f"segment {segment.name}: {segment.records} records, "
                f"last lsn {segment.last_lsn}{note}"
            )
        out.append(
            f"WAL: {self.records_in_prefix} records in the gap-free prefix, "
            f"{self.records_below_watermark} already covered by the "
            f"snapshot, {self.records_beyond_prefix} beyond the prefix"
        )
        if self.gap is not None:
            out.append(
                f"gap: expected lsn {self.gap[0]}, found {self.gap[1]} — "
                f"the durable prefix ends before the hole"
            )
        out.append(f"max-gap-free-lsn: {self.max_gap_free_lsn}")
        for problem in self.problems:
            out.append(f"PROBLEM: {problem}")
        out.append(f"integrity: {'ok' if self.ok else 'DAMAGED'}")
        return out


def verify_directory(directory: PathLike) -> VerifyReport:
    """Check a durability directory's integrity without recovering it."""
    report = VerifyReport(directory=str(directory))
    try:
        header = read_header(directory)
    except RecoveryError as error:
        report.problems.append(str(error))
        return report
    report.num_shards = int(header["num_shards"])

    store = SnapshotStore(directory, report.num_shards)
    report.checkpoint_ids = store.manifest_ids()
    try:
        base = store.load_base()
        report.snapshot_wal_lsn = base.wal_lsn
        report.snapshot_documents = base.text_count
        report.snapshot_shots = base.shot_count
    except SnapshotError as error:
        report.problems.append(f"snapshot chain: {error}")
        # The WAL can still be scanned; gap analysis below treats the
        # watermark as 0, which is conservative (more records flagged).

    wal = WriteAheadLog(Path(directory), report.num_shards)
    try:
        merged = []
        for segment in wal.segments():
            records, tail_error = segment.scan()
            last_lsn = int(records[-1]["lsn"]) if records else 0
            report.segments.append(
                SegmentReport(
                    name=segment.path.name,
                    records=len(records),
                    last_lsn=last_lsn,
                    tail_error=str(tail_error) if tail_error is not None else None,
                )
            )
            if tail_error is not None:
                report.problems.append(
                    f"torn/corrupt tail on {segment.path.name}: {tail_error}"
                )
            merged.extend(records)
    finally:
        wal.close()

    merged.sort(key=lambda record: int(record["lsn"]))
    watermark = report.snapshot_wal_lsn
    report.max_gap_free_lsn = watermark
    seen = set()
    expected = watermark + 1
    for record in merged:
        lsn = int(record["lsn"])
        if lsn in seen:
            report.problems.append(f"duplicate WAL record at lsn {lsn}")
            continue
        seen.add(lsn)
        if lsn <= watermark:
            # Compaction holdback (e.g. the replication guard) or a crash
            # between manifest rename and truncation; recovery skips these
            # idempotently, so they are not damage.
            report.records_below_watermark += 1
        elif report.gap is None and lsn == expected:
            report.records_in_prefix += 1
            report.max_gap_free_lsn = lsn
            expected += 1
        else:
            if report.gap is None:
                report.gap = (expected, lsn)
                report.problems.append(
                    f"hole in the WAL LSN stream: expected lsn {expected}, "
                    f"found {lsn} — records past the hole are beyond the "
                    f"durable prefix"
                )
            report.records_beyond_prefix += 1
    return report
