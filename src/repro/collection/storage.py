"""Persisting collections, topics and qrels to disk.

A generated corpus can be saved once and reloaded by later experiments (or
shipped to another machine) without re-running the generator.  The snapshot
is a directory of JSON files:

``collection.json``
    Videos, stories and shots (including transcripts, latent signals,
    ground-truth concepts and topic relevance).
``topics.json``
    The search topics.
``qrels.txt``
    TREC-format relevance judgements.
``manifest.json``
    Seed, generation parameters and format version.

Derived artefacts (features, concept scores) are *not* stored: they are
cheap to recompute and depend on the analysis configuration, so snapshots
stay analysis-agnostic.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.collection.documents import Collection, Keyframe, NewsStory, Shot, Video
from repro.collection.qrels import Qrels
from repro.collection.topics import Topic, TopicSet
from repro.utils.serialization import read_json, write_json

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _shot_to_dict(shot: Shot) -> Dict[str, object]:
    return {
        "shot_id": shot.shot_id,
        "video_id": shot.video_id,
        "story_id": shot.story_id,
        "start_seconds": shot.start_seconds,
        "end_seconds": shot.end_seconds,
        "transcript": shot.transcript,
        "category": shot.category,
        "concepts": list(shot.concepts),
        "topic_relevance": dict(shot.topic_relevance),
        "keyframe": {
            "keyframe_id": shot.keyframe.keyframe_id,
            "latent_signal": list(shot.keyframe.latent_signal),
            "timestamp": shot.keyframe.timestamp,
        },
    }


def _shot_from_dict(record: Dict[str, object]) -> Shot:
    keyframe_record = dict(record["keyframe"])
    shot_id = str(record["shot_id"])
    return Shot(
        shot_id=shot_id,
        video_id=str(record["video_id"]),
        story_id=str(record["story_id"]),
        start_seconds=float(record["start_seconds"]),
        end_seconds=float(record["end_seconds"]),
        transcript=str(record["transcript"]),
        category=str(record["category"]),
        concepts=tuple(record.get("concepts", ())),
        topic_relevance={
            str(topic): int(grade)
            for topic, grade in dict(record.get("topic_relevance", {})).items()
        },
        keyframe=Keyframe(
            keyframe_id=str(keyframe_record["keyframe_id"]),
            shot_id=shot_id,
            latent_signal=tuple(float(v) for v in keyframe_record["latent_signal"]),
            timestamp=float(keyframe_record.get("timestamp", 0.0)),
        ),
    )


def save_collection(collection: Collection, path: PathLike) -> None:
    """Write a collection snapshot to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "collection",
        "name": collection.name,
        "videos": [
            {
                "video_id": video.video_id,
                "broadcast_date": video.broadcast_date,
                "story_ids": list(video.story_ids),
                "duration_seconds": video.duration_seconds,
                "channel": video.channel,
            }
            for video in collection.videos()
        ],
        "stories": [
            {
                "story_id": story.story_id,
                "video_id": story.video_id,
                "category": story.category,
                "headline": story.headline,
                "shot_ids": list(story.shot_ids),
                "search_topic_id": story.search_topic_id,
                "summary": story.summary,
            }
            for story in collection.stories()
        ],
        "shots": [_shot_to_dict(shot) for shot in collection.shots()],
    }
    write_json(path, payload)


def load_collection(path: PathLike) -> Collection:
    """Read a collection snapshot written by :func:`save_collection`."""
    payload = read_json(path)
    if payload.get("kind") != "collection":
        raise ValueError(f"{path} does not contain a collection snapshot")
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported collection format version {payload.get('format_version')}"
        )
    videos = [
        Video(
            video_id=str(record["video_id"]),
            broadcast_date=str(record["broadcast_date"]),
            story_ids=list(record.get("story_ids", [])),
            duration_seconds=float(record.get("duration_seconds", 0.0)),
            channel=str(record.get("channel", "synthetic-news")),
        )
        for record in payload["videos"]
    ]
    stories = [
        NewsStory(
            story_id=str(record["story_id"]),
            video_id=str(record["video_id"]),
            category=str(record["category"]),
            headline=str(record["headline"]),
            shot_ids=list(record.get("shot_ids", [])),
            search_topic_id=record.get("search_topic_id"),
            summary=str(record.get("summary", "")),
        )
        for record in payload["stories"]
    ]
    shots = [_shot_from_dict(record) for record in payload["shots"]]
    return Collection(videos, stories, shots, name=str(payload.get("name", "collection")))


def save_topics(topics: TopicSet, path: PathLike) -> None:
    """Write a topic set to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "topics",
        "topics": [
            {
                "topic_id": topic.topic_id,
                "title": topic.title,
                "description": topic.description,
                "category": topic.category,
                "query_terms": list(topic.query_terms),
            }
            for topic in topics
        ],
    }
    write_json(path, payload)


def load_topics(path: PathLike) -> TopicSet:
    """Read a topic set written by :func:`save_topics`."""
    payload = read_json(path)
    if payload.get("kind") != "topics":
        raise ValueError(f"{path} does not contain a topic snapshot")
    return TopicSet(
        [
            Topic(
                topic_id=str(record["topic_id"]),
                title=str(record["title"]),
                description=str(record["description"]),
                category=str(record["category"]),
                query_terms=list(record.get("query_terms", [])),
            )
            for record in payload["topics"]
        ]
    )


def save_corpus(corpus, directory: PathLike) -> Path:
    """Save a :class:`~repro.collection.generator.SyntheticCorpus` to a directory.

    Returns the directory path.  The vocabulary and centroids are not stored;
    they are regenerable from the manifest's seed and configuration and are
    only needed to *extend* a collection, not to search it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_collection(corpus.collection, directory / "collection.json")
    save_topics(corpus.topics, directory / "topics.json")
    corpus.qrels.save(directory / "qrels.txt")
    write_json(
        directory / "manifest.json",
        {
            "format_version": _FORMAT_VERSION,
            "kind": "corpus-manifest",
            "seed": corpus.seed,
            "config": {
                "days": corpus.config.days,
                "stories_per_day": corpus.config.stories_per_day,
                "topic_count": corpus.config.topic_count,
                "categories": list(corpus.config.categories),
            },
        },
    )
    return directory


class StoredCorpus:
    """A corpus reloaded from disk: collection, topics and qrels."""

    def __init__(self, collection: Collection, topics: TopicSet, qrels: Qrels,
                 manifest: Dict[str, object]) -> None:
        self.collection = collection
        self.topics = topics
        self.qrels = qrels
        self.manifest = manifest

    @property
    def seed(self) -> int:
        """The seed recorded in the manifest."""
        return int(self.manifest.get("seed", -1))


def load_corpus(directory: PathLike) -> StoredCorpus:
    """Load a corpus saved by :func:`save_corpus`."""
    directory = Path(directory)
    manifest = read_json(directory / "manifest.json")
    if manifest.get("kind") != "corpus-manifest":
        raise ValueError(f"{directory} does not contain a corpus manifest")
    return StoredCorpus(
        collection=load_collection(directory / "collection.json"),
        topics=load_topics(directory / "topics.json"),
        qrels=Qrels.load(directory / "qrels.txt"),
        manifest=manifest,
    )
