"""Shared fixtures: a small synthetic corpus and the engines built on it.

The corpus fixtures are session-scoped because generation and indexing are
the slowest steps; tests must treat them as read-only (mutating tests build
their own corpus).

The module also hosts the seeded randomized (property-style) generators
shared by the sharding-equivalence and concurrency suites:
:func:`random_queries` draws multimodal queries from a corpus's own
vocabulary / shots / concepts, and :func:`random_documents` fabricates
transcript documents for interleaved-write tests.  Both are pure functions
of ``(corpus, seed)`` through labelled RNG streams, so failures replay
exactly from the seed printed in the test id.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.analysis import analyse_collection
from repro.collection import CollectionConfig, SyntheticCorpus, generate_corpus
from repro.core import AdaptiveVideoRetrievalSystem
from repro.retrieval import Query, VideoRetrievalEngine
from repro.utils.rng import RandomSource


def random_queries(
    corpus: SyntheticCorpus,
    seed: int,
    count: int,
    include_visual: bool = True,
) -> List[Query]:
    """Seeded multimodal queries sampled from the corpus itself.

    Roughly half the queries are plain keyword searches; the rest mix in
    weighted terms, example shots (query-by-example) and concept weights,
    so a differential run sweeps every fusion mode the engine supports.
    Deterministic per ``(corpus, seed)``: each query draws from its own
    labelled RNG substream.
    """
    root = RandomSource(seed).spawn("random-queries")
    shots = list(corpus.collection.iter_shots())
    words = sorted(
        {
            word
            for shot in shots
            for word in shot.transcript.lower().split()
            if len(word) > 3
        }
    )
    concepts = sorted(
        {concept for shot in shots for concept in (shot.concept_scores or {})}
    )
    queries: List[Query] = []
    for index in range(count):
        rng = root.spawn(index)
        text = " ".join(rng.choices(words, k=rng.randint(1, 4)))
        term_weights: Dict[str, float] = {}
        if rng.boolean(0.4):
            for term in rng.sample(words, rng.randint(1, 3)):
                term_weights[term] = round(rng.uniform(0.25, 2.5), 3)
        example_shot_ids: List[str] = []
        concept_weights: Dict[str, float] = {}
        if include_visual:
            if shots and rng.boolean(0.35):
                example_shot_ids = [
                    shot.shot_id for shot in rng.sample(shots, rng.randint(1, 2))
                ]
            if concepts and rng.boolean(0.35):
                concept_weights = {
                    concept: round(rng.uniform(0.2, 1.0), 3)
                    for concept in rng.sample(
                        concepts, min(len(concepts), rng.randint(1, 3))
                    )
                }
        queries.append(
            Query(
                text=text,
                term_weights=term_weights,
                example_shot_ids=example_shot_ids,
                concept_weights=concept_weights,
            )
        )
    return queries


def random_documents(
    corpus: SyntheticCorpus, seed: int, count: int, prefix: str = "extra"
) -> Dict[str, str]:
    """Seeded synthetic transcript documents in the corpus's vocabulary.

    Used by interleaved-write tests: feeding the same mapping to a sharded
    and an unsharded engine must leave both ranking identically.  Ids embed
    the seed so successive batches never collide.
    """
    root = RandomSource(seed).spawn("random-documents")
    words = sorted(
        {
            word
            for shot in corpus.collection.iter_shots()
            for word in shot.transcript.lower().split()
            if len(word) > 3
        }
    )
    documents: Dict[str, str] = {}
    for index in range(count):
        rng = root.spawn(index)
        documents[f"{prefix}-{seed}-{index:03d}"] = " ".join(
            rng.choices(words, k=rng.randint(6, 30))
        )
    return documents


@pytest.fixture(scope="session")
def small_corpus() -> SyntheticCorpus:
    """A small, fully generated corpus shared by read-only tests."""
    return generate_corpus(seed=41, config=CollectionConfig.small())


@pytest.fixture(scope="session")
def medium_corpus() -> SyntheticCorpus:
    """A medium corpus for simulation and experiment tests."""
    return generate_corpus(
        seed=17,
        config=CollectionConfig(days=8, stories_per_day=7, topic_count=8),
    )


@pytest.fixture(scope="session")
def analysed_corpus() -> SyntheticCorpus:
    """A small corpus with features and concept scores filled in."""
    corpus = generate_corpus(seed=43, config=CollectionConfig.small())
    analyse_collection(corpus.collection)
    return corpus


@pytest.fixture(scope="session")
def make_random_queries():
    """The seeded query generator as a fixture.

    Handed out as a fixture (rather than imported from ``conftest``)
    because the benchmarks directory carries its own ``conftest`` module;
    importing by module name would be ambiguous in a whole-repo run.
    """
    return random_queries


@pytest.fixture(scope="session")
def make_random_documents():
    """The seeded document generator as a fixture (see above)."""
    return random_documents


@pytest.fixture(scope="session")
def sharding_corpus() -> SyntheticCorpus:
    """An analysed corpus for the sharding differential suites.

    Analysis fills in features and concept scores, so randomized queries
    can exercise the visual and concept fusion paths; session-scoped and
    read-only (write tests copy documents out, never mutate it).
    """
    corpus = generate_corpus(
        seed=2026, config=CollectionConfig(days=5, stories_per_day=5, topic_count=6)
    )
    analyse_collection(corpus.collection)
    return corpus


@pytest.fixture(scope="session")
def engine(small_corpus: SyntheticCorpus) -> VideoRetrievalEngine:
    """A retrieval engine over the small corpus."""
    return VideoRetrievalEngine(small_corpus.collection)


@pytest.fixture(scope="session")
def medium_engine(medium_corpus: SyntheticCorpus) -> VideoRetrievalEngine:
    """A retrieval engine over the medium corpus."""
    return VideoRetrievalEngine(medium_corpus.collection)


@pytest.fixture(scope="session")
def adaptive_system(medium_engine: VideoRetrievalEngine) -> AdaptiveVideoRetrievalSystem:
    """An adaptive system over the medium corpus."""
    return AdaptiveVideoRetrievalSystem(medium_engine)
