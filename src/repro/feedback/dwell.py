"""Dwell-time (display time) modelling.

Claypool et al. found time-on-page to be a useful implicit indicator in the
web domain; Kelly & Belkin cast doubt on it because viewing time depends on
the task and topic, not only on relevance.  This module provides the pieces
experiment E6 needs to reproduce that tension:

* :class:`DwellTimeModel` — generates viewing durations for simulated users,
  with separate distributions for relevant and non-relevant shots and an
  optional *task effect* that shifts both distributions per task; and
* :class:`DwellTimeClassifier` — the naive "long dwell means relevant" rule
  whose precision collapses once task effects are switched on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class DwellTimeModel:
    """Log-normal viewing-time model with an optional per-task multiplier.

    ``relevant_median`` / ``non_relevant_median`` are the median viewing
    times (seconds) for relevant and non-relevant shots under a neutral
    task.  ``sigma`` is the log-space spread.  ``task_multipliers`` maps a
    task label to a factor applied to *both* medians — e.g. a background
    research task where users watch everything for a while versus a known-
    item task where everything is skimmed.  It is exactly this task factor
    that breaks the naive dwell-time rule.
    """

    relevant_median: float = 20.0
    non_relevant_median: float = 6.0
    sigma: float = 0.5
    task_multipliers: Mapping[str, float] = None

    def __post_init__(self) -> None:
        ensure_positive(self.relevant_median, "relevant_median")
        ensure_positive(self.non_relevant_median, "non_relevant_median")
        ensure_positive(self.sigma, "sigma")
        if self.task_multipliers is None:
            object.__setattr__(self, "task_multipliers", {})

    def multiplier_for_task(self, task: Optional[str]) -> float:
        """The viewing-time multiplier for a task (1.0 if unknown)."""
        if task is None:
            return 1.0
        return float(self.task_multipliers.get(task, 1.0))

    def sample_duration(
        self,
        rng: RandomSource,
        relevant: bool,
        task: Optional[str] = None,
        shot_duration: Optional[float] = None,
    ) -> float:
        """Sample a viewing duration for one shot.

        The sample is capped at the shot's duration when it is known (one
        cannot watch more of a shot than exists).
        """
        import math

        median = self.relevant_median if relevant else self.non_relevant_median
        median *= self.multiplier_for_task(task)
        duration = rng.lognormal(math.log(median), self.sigma)
        if shot_duration is not None and shot_duration > 0:
            duration = min(duration, shot_duration)
        return max(0.1, duration)

    @classmethod
    def with_task_effects(cls) -> "DwellTimeModel":
        """The task-dependent variant used by experiment E6.

        The multipliers follow Kelly & Belkin's observation that display
        time varies more across tasks than across relevance levels: a
        leisurely background-browsing task trebles viewing times while a
        deadline-driven fact-check task quarters them.
        """
        return cls(
            task_multipliers={
                "background_browsing": 3.0,
                "topic_monitoring": 1.5,
                "known_item_search": 0.5,
                "fact_check": 0.25,
            }
        )


@dataclass(frozen=True)
class DwellObservation:
    """One observed viewing duration with its hidden ground truth."""

    shot_id: str
    duration: float
    relevant: bool
    task: Optional[str] = None


class DwellTimeClassifier:
    """The naive rule: a shot is relevant if it was viewed long enough."""

    def __init__(self, threshold_seconds: float = 12.0) -> None:
        ensure_positive(threshold_seconds, "threshold_seconds")
        self._threshold = threshold_seconds

    @property
    def threshold(self) -> float:
        """The decision threshold in seconds."""
        return self._threshold

    def predict(self, duration: float) -> bool:
        """Predict relevance from a single viewing duration."""
        return duration >= self._threshold

    def evaluate(self, observations: Iterable[DwellObservation]) -> Dict[str, float]:
        """Precision / recall / accuracy of the rule over observations."""
        true_positive = false_positive = true_negative = false_negative = 0
        for observation in observations:
            predicted = self.predict(observation.duration)
            if predicted and observation.relevant:
                true_positive += 1
            elif predicted and not observation.relevant:
                false_positive += 1
            elif not predicted and observation.relevant:
                false_negative += 1
            else:
                true_negative += 1
        total = true_positive + false_positive + true_negative + false_negative
        precision = (
            true_positive / (true_positive + false_positive)
            if true_positive + false_positive > 0
            else 0.0
        )
        recall = (
            true_positive / (true_positive + false_negative)
            if true_positive + false_negative > 0
            else 0.0
        )
        accuracy = (true_positive + true_negative) / total if total else 0.0
        return {
            "precision": precision,
            "recall": recall,
            "accuracy": accuracy,
            "observations": float(total),
        }

    def best_threshold(
        self, observations: List[DwellObservation], candidates: Iterable[float]
    ) -> Tuple[float, float]:
        """The candidate threshold with the best accuracy (and that accuracy)."""
        best = (self._threshold, 0.0)
        for candidate in candidates:
            classifier = DwellTimeClassifier(candidate)
            accuracy = classifier.evaluate(observations)["accuracy"]
            if accuracy > best[1]:
                best = (candidate, accuracy)
        return best
