"""Low-level visual feature extraction (simulated).

Real video retrieval systems extract colour histograms, edge-direction
histograms and texture statistics from keyframes.  Our keyframes carry a
*latent visual signal* (a point in a latent space positioned by the
collection generator so that shots about the same topic are close together).
The extractors below turn that latent signal into feature vectors with the
same shape and statistical behaviour as the real thing: deterministic given
the keyframe, bounded, and noisy projections of the underlying content.

Downstream code (visual index, fusion, concept detection) only ever sees the
feature vectors, so swapping these simulated extractors for real ones is a
drop-in change.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.collection.documents import Keyframe
from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_positive


def _sigmoid(value: float) -> float:
    return 1.0 / (1.0 + math.exp(-value))


@dataclass(frozen=True)
class FeatureConfig:
    """Configuration of the simulated feature extractors."""

    colour_bins: int = 16
    edge_bins: int = 8
    texture_bins: int = 8
    noise_sigma: float = 0.05

    def __post_init__(self) -> None:
        ensure_positive(self.colour_bins, "colour_bins")
        ensure_positive(self.edge_bins, "edge_bins")
        ensure_positive(self.texture_bins, "texture_bins")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    @property
    def dimensions(self) -> int:
        """Total dimensionality of the concatenated feature vector."""
        return self.colour_bins + self.edge_bins + self.texture_bins


class FeatureExtractor:
    """Extracts a fixed-length feature vector from a keyframe.

    The extractor applies a deterministic random projection of the latent
    signal into each feature family's space, squashes to ``[0, 1]`` and adds
    a small amount of per-keyframe noise (extraction error), then L1
    normalises each family as a histogram would be.
    """

    def __init__(self, config: FeatureConfig = FeatureConfig(), seed: int = 97) -> None:
        self._config = config
        self._seed = int(seed)
        self._projections: Dict[str, List[Tuple[float, ...]]] = {}

    @property
    def config(self) -> FeatureConfig:
        """The extractor configuration."""
        return self._config

    def _projection(self, family: str, bins: int, input_dim: int) -> List[Tuple[float, ...]]:
        key = f"{family}:{bins}:{input_dim}"
        if key not in self._projections:
            rng = RandomSource(self._seed).spawn("projection", family, bins, input_dim)
            self._projections[key] = [
                tuple(rng.gauss(0.0, 1.0 / math.sqrt(input_dim)) for _ in range(input_dim))
                for _ in range(bins)
            ]
        return self._projections[key]

    def _family_histogram(
        self, family: str, bins: int, signal: Sequence[float], noise_rng: RandomSource
    ) -> List[float]:
        projection = self._projection(family, bins, len(signal))
        raw = []
        for row in projection:
            value = sum(weight * component for weight, component in zip(row, signal))
            value = _sigmoid(value)
            if self._config.noise_sigma > 0:
                value += noise_rng.gauss(0.0, self._config.noise_sigma)
            raw.append(max(0.0, value))
        total = sum(raw)
        if total <= 0:
            return [1.0 / bins] * bins
        return [value / total for value in raw]

    def extract(self, keyframe: Keyframe) -> Tuple[float, ...]:
        """Extract the concatenated colour/edge/texture feature vector."""
        noise_rng = RandomSource(self._seed).spawn("noise", keyframe.keyframe_id)
        signal = keyframe.latent_signal
        colour = self._family_histogram("colour", self._config.colour_bins, signal, noise_rng)
        edge = self._family_histogram("edge", self._config.edge_bins, signal, noise_rng)
        texture = self._family_histogram(
            "texture", self._config.texture_bins, signal, noise_rng
        )
        return tuple(colour + edge + texture)

    def extract_many(self, keyframes: Sequence[Keyframe]) -> List[Tuple[float, ...]]:
        """Extract features for a batch of keyframes."""
        return [self.extract(keyframe) for keyframe in keyframes]


def cosine_similarity(left: Sequence[float], right: Sequence[float]) -> float:
    """Cosine similarity between two feature vectors (0 for zero vectors).

    The ``map(operator.mul, ...)`` form adds the same products in the same
    order as a generator expression would, without per-element bytecode.
    """
    if len(left) != len(right):
        raise ValueError(
            f"vectors must have equal length, got {len(left)} and {len(right)}"
        )
    dot = sum(map(operator.mul, left, right))
    norm_left = math.sqrt(sum(map(operator.mul, left, left)))
    norm_right = math.sqrt(sum(map(operator.mul, right, right)))
    if norm_left == 0 or norm_right == 0:
        return 0.0
    return dot / (norm_left * norm_right)


def euclidean_distance(left: Sequence[float], right: Sequence[float]) -> float:
    """Euclidean distance between two feature vectors."""
    if len(left) != len(right):
        raise ValueError(
            f"vectors must have equal length, got {len(left)} and {len(right)}"
        )
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(left, right)))


def histogram_intersection(left: Sequence[float], right: Sequence[float]) -> float:
    """Histogram intersection similarity (common for colour histograms)."""
    if len(left) != len(right):
        raise ValueError(
            f"vectors must have equal length, got {len(left)} and {len(right)}"
        )
    return sum(min(a, b) for a, b in zip(left, right))
