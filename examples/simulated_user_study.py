#!/usr/bin/env python
"""A simulated user study: the paper's proposed methodology end to end.

This example reproduces, in miniature, the study design of Section 3:

* a population of simulated users with different personas and static
  profiles searches TRECVID-style topics on the desktop interface;
* every session is executed against four system configurations — no
  adaptation, profile-only, implicit-only and the combined adaptive model;
* interaction log files are written to disk, read back, and analysed for
  per-indicator relevance precision (the paper's "which interface features
  are generalisable indicators of relevance?" question); and
* indicator weights are learned from the logs and compared with the
  hand-tuned scheme.

Run with:  python examples/simulated_user_study.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import CollectionConfig, generate_corpus
from repro.core import (
    baseline_policy,
    combined_policy,
    implicit_only_policy,
    profile_only_policy,
)
from repro.evaluation import (
    ExperimentCondition,
    ExperimentRunner,
    LogAnalyser,
    compare_per_topic,
)
from repro.feedback import IndicatorWeightLearner
from repro.interfaces import InteractionLogger
from repro.simulation import (
    indicator_observations_from_logs,
    shot_durations_from_collection,
)

USERS = 8
TOPICS_PER_USER = 2


def main(output_dir: Path) -> None:
    print("generating the synthetic news collection ...")
    corpus = generate_corpus(
        seed=42, config=CollectionConfig(days=16, stories_per_day=8, topic_count=12)
    )
    runner = ExperimentRunner(corpus)

    print(f"running {USERS} simulated users x {TOPICS_PER_USER} topics "
          f"through four system configurations ...")
    conditions = [
        ExperimentCondition(name="baseline", policy=baseline_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=1),
        ExperimentCondition(name="profile_only", policy=profile_only_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=1),
        ExperimentCondition(name="implicit_only", policy=implicit_only_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=1),
        ExperimentCondition(name="combined", policy=combined_policy(),
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=1),
    ]
    results = runner.run_conditions(conditions)

    print("\nsystem comparison (mean over sessions):")
    print(f"  {'system':<15} {'MAP':>7} {'P@10':>7} {'relevant found':>15}")
    for condition in conditions:
        summary = results[condition.name].summary()
        print(f"  {condition.name:<15} {summary['map']:>7.3f} "
              f"{summary['precision@10']:>7.3f} {summary['relevant_found']:>15.1f}")

    significance = compare_per_topic(
        results["baseline"].per_session_metric("average_precision"),
        results["combined"].per_session_metric("average_precision"),
    )
    print(f"\ncombined vs baseline: mean AP difference "
          f"{significance.mean_difference:+.3f}, p = {significance.p_value:.4f}")

    # --- the log-file analysis the paper proposes -----------------------------
    log_dir = output_dir / "session_logs"
    logger = InteractionLogger()
    logs = results["combined"].session_logs()
    logger.write_sessions(logs, log_dir)
    print(f"\nwrote {len(logs)} interaction log files to {log_dir}")

    restored = logger.read_sessions(log_dir)
    durations = shot_durations_from_collection(corpus.collection)
    report = LogAnalyser(shot_durations=durations).analyse(restored, qrels=corpus.qrels)
    print(f"\nlog analysis over {report.session_count} sessions "
          f"({report.events_per_session:.1f} events/session):")
    print(f"  {'indicator':<20} {'precision':>10} {'firings':>9}")
    for indicator, precision, firings in report.indicator_precision_table():
        print(f"  {indicator:<20} {precision:>10.3f} {firings:>9}")

    observations = indicator_observations_from_logs(restored, durations)
    learned = IndicatorWeightLearner().learn(observations, corpus.qrels)
    print("\nindicator weights learned from the logs:")
    for indicator, weight in sorted(learned.weights.items(), key=lambda kv: -kv[1]):
        if weight > 0:
            print(f"  {indicator:<20} {weight:.3f}")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(
        prefix="repro_user_study_"
    ))
    main(target)
