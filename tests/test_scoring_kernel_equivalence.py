"""Ranking-equivalence tests for the array-backed scoring kernel.

The kernel in :mod:`repro.index.scoring` / :mod:`repro.index.language_model`
/ :mod:`repro.index.visual` restructures the index's memory layout for
speed; :mod:`repro.index.reference` retains the original per-posting loops.
These property-style tests assert the two produce identical
``(document_id, score)`` rankings — same ids, same order, scores equal to
within 1e-9 (unit-weight queries are bit-identical by construction) — across
scorers, weighted multimodal fusion and query-by-example, over randomly
generated corpora and queries.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import analyse_collection
from repro.collection import CollectionConfig, generate_corpus
from repro.index import (
    Bm25Scorer,
    DirichletLanguageModelScorer,
    InvertedIndex,
    JelinekMercerLanguageModelScorer,
    TfIdfScorer,
    top_documents,
    weighted_fusion,
)
from repro.index.reference import (
    ReferenceBm25Scorer,
    ReferenceDirichletScorer,
    ReferenceJelinekMercerScorer,
    ReferenceTfIdfScorer,
    reference_score_by_concepts,
    reference_similar_to_vector,
    reference_top_documents,
)
from repro.index.visual import VisualIndex
from repro.retrieval import EngineConfig, Query, VideoRetrievalEngine

SEED = 20080731


def ranking(scores, limit=None):
    """Deterministic ranked (id, score) list: score desc, id asc."""
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit] if limit is not None else ranked


def assert_equivalent(kernel_scores, reference_scores, tolerance=1e-9):
    assert set(kernel_scores) == set(reference_scores)
    kernel_ranked = ranking(kernel_scores)
    reference_ranked = ranking(reference_scores)
    assert [doc for doc, _ in kernel_ranked] == [doc for doc, _ in reference_ranked]
    for (_, kernel_score), (_, reference_score) in zip(kernel_ranked, reference_ranked):
        assert kernel_score == pytest.approx(reference_score, abs=tolerance)


@pytest.fixture(scope="module")
def corpus():
    generated = generate_corpus(
        seed=SEED,
        config=CollectionConfig(days=6, stories_per_day=6, topic_count=8),
    )
    analyse_collection(generated.collection)
    return generated


@pytest.fixture(scope="module")
def index(corpus):
    return InvertedIndex.from_collection(corpus.collection)


@pytest.fixture(scope="module")
def visual_index(corpus):
    return VisualIndex.from_collection(corpus.collection)


def _random_queries(index, rng, count=25):
    """A mix of plain, repeated-term and weighted queries over real terms."""
    terms = sorted(index.terms())
    queries = []
    for _ in range(count):
        size = rng.randint(1, 6)
        chosen = rng.sample(terms, size)
        kind = rng.random()
        if kind < 0.4:
            queries.append(chosen)
        elif kind < 0.6:
            # Repeats exercise the sequence-counting path.
            queries.append(chosen + chosen[: rng.randint(0, size)])
        else:
            queries.append(
                {term: rng.choice([0.25, 0.5, 1.0, 1.5, 2.0, 3.75]) for term in chosen}
            )
    # Unknown terms must be ignored identically.
    queries.append(["zzz-not-a-term"])
    queries.append({"zzz-not-a-term": 2.0, terms[0]: 1.0})
    return queries


SCORER_PAIRS = [
    ("bm25", lambda index: Bm25Scorer(index), lambda index: ReferenceBm25Scorer(index)),
    (
        "bm25-tuned",
        lambda index: Bm25Scorer(index, k1=0.9, b=0.3),
        lambda index: ReferenceBm25Scorer(index, k1=0.9, b=0.3),
    ),
    ("tfidf", lambda index: TfIdfScorer(index), lambda index: ReferenceTfIdfScorer(index)),
    (
        "lm-dirichlet",
        lambda index: DirichletLanguageModelScorer(index, mu=250.0),
        lambda index: ReferenceDirichletScorer(index, mu=250.0),
    ),
    (
        "lm-jm",
        lambda index: JelinekMercerLanguageModelScorer(index, lambda_=0.6),
        lambda index: ReferenceJelinekMercerScorer(index, lambda_=0.6),
    ),
]


class TestScorerEquivalence:
    @pytest.mark.parametrize("name,kernel_factory,reference_factory", SCORER_PAIRS)
    def test_random_queries(self, index, name, kernel_factory, reference_factory):
        rng = random.Random(SEED)
        kernel = kernel_factory(index)
        reference = reference_factory(index)
        for query in _random_queries(index, rng):
            assert_equivalent(kernel.score(query), reference.score(query))

    @pytest.mark.parametrize("name,kernel_factory,reference_factory", SCORER_PAIRS)
    def test_after_incremental_add(self, name, kernel_factory, reference_factory):
        """Cached statistics must be invalidated by add_document."""
        index = InvertedIndex()
        index.add_documents(
            {
                "d1": "football match stadium goal goal",
                "d2": "football politics debate parliament",
                "d3": "weather rain cloud forecast",
            }
        )
        kernel = kernel_factory(index)
        reference = reference_factory(index)
        query = ["football", "goal", "stadium"]
        assert_equivalent(kernel.score(query), reference.score(query))
        # Mutate the index: every cached IDF, norm table and contribution
        # column is now stale and must be recomputed.
        index.add_document("d4", "stadium crowd goal celebration football goal")
        assert_equivalent(kernel.score(query), reference.score(query))
        assert index.collection_frequency("goal") == 4

    def test_unit_weight_queries_bit_identical(self, index):
        """Plain keyword queries must match the reference bit-for-bit."""
        rng = random.Random(SEED + 1)
        terms = sorted(index.terms())
        kernel = Bm25Scorer(index)
        reference = ReferenceBm25Scorer(index)
        for _ in range(10):
            query = rng.sample(terms, rng.randint(1, 5))
            kernel_scores = kernel.score(query)
            reference_scores = reference.score(query)
            assert kernel_scores == reference_scores  # exact float equality


class TestVisualEquivalence:
    def test_similar_to_vector(self, visual_index):
        rng = random.Random(SEED + 2)
        shot_ids = visual_index.shot_ids()
        for _ in range(10):
            probe = visual_index.features_of(rng.choice(shot_ids))
            kernel = visual_index.similar_to_vector(probe, limit=20)
            reference = reference_similar_to_vector(visual_index, probe, limit=20)
            assert kernel == reference

    def test_similar_to_shot_excludes_query(self, visual_index):
        shot_id = visual_index.shot_ids()[0]
        results = visual_index.similar_to_shot(shot_id, limit=10)
        assert all(candidate != shot_id for candidate, _ in results)

    def test_score_by_concepts(self, visual_index):
        rng = random.Random(SEED + 3)
        concepts = sorted(
            {
                concept
                for shot_id in visual_index.shot_ids()
                for concept in visual_index.concept_scores_of(shot_id)
            }
        )
        assert concepts, "corpus should carry concept scores"
        for _ in range(10):
            chosen = rng.sample(concepts, min(len(concepts), rng.randint(1, 4)))
            weights = {concept: rng.choice([0.5, 1.0, 2.0, -1.0]) for concept in chosen}
            kernel = visual_index.score_by_concepts(weights)
            reference = reference_score_by_concepts(visual_index, weights)
            assert kernel == reference


class TestSelectionEquivalence:
    def test_top_documents_matches_full_sort(self):
        rng = random.Random(SEED + 4)
        scores = {f"shot_{i:04d}": rng.choice([0.0, 0.5, 1.0, rng.random()]) for i in range(500)}
        for limit in (1, 7, 100, 499, 500, 1000):
            assert top_documents(scores, limit) == reference_top_documents(scores, limit)


class TestEndToEndEquivalence:
    """The engine pipeline (scorer -> fusion -> result list) must rank like
    a from-scratch reference computation."""

    @pytest.mark.parametrize("scorer_name", ["bm25", "tfidf", "lm"])
    def test_search_matches_reference_pipeline(self, corpus, scorer_name):
        engine = VideoRetrievalEngine(
            corpus.collection,
            config=EngineConfig(
                scorer=scorer_name, visual_weight=0.0, concept_weight=0.0
            ),
        )
        index = engine.inverted_index
        reference_factory = {
            "bm25": ReferenceBm25Scorer,
            "tfidf": ReferenceTfIdfScorer,
            "lm": ReferenceDirichletScorer,
        }[scorer_name]
        kwargs = {"mu": 300.0} if scorer_name == "lm" else {}
        reference_scorer = reference_factory(index, **kwargs)
        for topic in corpus.topics:
            query_text = " ".join(topic.query_terms)
            results = engine.search_text(query_text, limit=50)
            term_weights = {}
            for token in engine.tokenizer.tokenize(query_text):
                term_weights[token] = term_weights.get(token, 0.0) + 1.0
            raw = reference_scorer.score(term_weights)
            fused = weighted_fusion([raw], [engine.config.text_weight])
            expected = ranking(fused, limit=50)
            assert results.shot_ids() == [doc for doc, _ in expected]
            for item, (_, score) in zip(results, expected):
                assert item.score == pytest.approx(score, abs=1e-9)

    def test_multimodal_fusion_ranking(self, corpus):
        engine = VideoRetrievalEngine(corpus.collection)
        reference_scorer = ReferenceBm25Scorer(engine.inverted_index)
        for topic in list(corpus.topics)[:4]:
            relevant = sorted(corpus.qrels.relevant_shots(topic.topic_id))
            query = Query(
                text=" ".join(topic.query_terms),
                example_shot_ids=relevant[:1],
            )
            results = engine.search(query, limit=50)
            # Reference computation of the same fusion.
            term_weights = {}
            for token in engine.tokenizer.tokenize(query.text):
                term_weights[token] = term_weights.get(token, 0.0) + 1.0
            text = reference_scorer.score(term_weights)
            visual = {}
            for shot_id in query.example_shot_ids:
                for candidate, similarity in reference_similar_to_vector(
                    engine.visual_index,
                    engine.visual_index.features_of(shot_id),
                    limit=engine.config.result_limit,
                    exclude=(shot_id,),
                ):
                    visual[candidate] = max(visual.get(candidate, 0.0), similarity)
            maps, weights = [text], [engine.config.text_weight]
            if visual:
                maps.append(visual)
                weights.append(engine.config.visual_weight)
            fused = weighted_fusion(maps, weights)
            expected = ranking(fused, limit=50)
            assert results.shot_ids() == [doc for doc, _ in expected]
            for item, (_, score) in zip(results, expected):
                assert item.score == pytest.approx(score, abs=1e-9)

    def test_more_like_this_consistent_with_cache_disabled(self, corpus):
        cached = VideoRetrievalEngine(corpus.collection)
        uncached = VideoRetrievalEngine(
            corpus.collection, config=EngineConfig(result_cache_size=0)
        )
        shot_id = corpus.collection.shot_ids()[0]
        first = cached.more_like_this(shot_id, limit=10)
        second = cached.more_like_this(shot_id, limit=10)  # served via cache
        fresh = uncached.more_like_this(shot_id, limit=10)
        assert first.shot_ids() == second.shot_ids() == fresh.shot_ids()
        assert [item.score for item in first] == [item.score for item in fresh]

    def test_result_cache_invalidated_on_index_mutation(self, corpus):
        engine = VideoRetrievalEngine(corpus.collection)
        query_text = " ".join(list(corpus.topics)[0].query_terms)
        before = engine.search_text(query_text, limit=10)
        assert engine.search_text(query_text, limit=10).shot_ids() == before.shot_ids()
        # Mutating the index must drop cached results and change statistics.
        engine.inverted_index.add_document("extra-doc", query_text)
        after = engine.search_text(query_text, limit=10)
        assert "extra-doc" in after.scores() or after.shot_ids() != []

    def test_fast_item_construction_matches_dataclass(self, corpus):
        from repro.retrieval.results import ResultItem, ResultList

        scores = {"a": 1.0, "b": 0.5}
        shot_id = corpus.collection.shot_ids()[0]
        scores[shot_id] = 2.0
        results = ResultList.from_scores(
            "q", scores, collection=corpus.collection, limit=10
        )
        top = results[0]
        assert isinstance(top, ResultItem)
        shot = corpus.collection.shot(shot_id)
        story = corpus.collection.story(shot.story_id)
        rebuilt = ResultItem(
            shot_id=shot_id,
            score=2.0,
            rank=1,
            story_id=shot.story_id,
            video_id=shot.video_id,
            headline=story.headline,
            category=shot.category,
            duration_seconds=shot.duration,
        )
        assert top == rebuilt
        assert top.as_dict() == rebuilt.as_dict()
