"""News video framework: broadcast capture, story segmentation, recommendation."""

from repro.newsframework.broadcast import BroadcastRecorder, RecordedBulletin
from repro.newsframework.pipeline import IngestReport, NewsVideoFramework
from repro.newsframework.recommender import (
    NewsRecommender,
    RecommendationWeights,
    StoryRecommendation,
)
from repro.newsframework.segmentation import SegmentationResult, StorySegmenter

__all__ = [
    "BroadcastRecorder",
    "RecordedBulletin",
    "IngestReport",
    "NewsVideoFramework",
    "NewsRecommender",
    "RecommendationWeights",
    "StoryRecommendation",
    "SegmentationResult",
    "StorySegmenter",
]
