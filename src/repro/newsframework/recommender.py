"""Personalised news-story recommendation.

"The idea of this scenario is to automatically identify news stories which
are of interest for the user and to recommend them to him."  The recommender
ranks the stories of a bulletin (or a date range) for one user by combining
three evidence sources, any of which may be absent:

* the user's static profile (category and concept interests),
* the user's own accumulated implicit evidence (shots they engaged with,
  propagated to the stories containing similar material), and
* the community implicit graph built from other users' past sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.collection.documents import Collection, NewsStory
from repro.core.feedback_model import ImplicitFeedbackModel
from repro.feedback.graph import ImplicitGraph
from repro.index.fusion import min_max_normalise
from repro.profiles.profile import UserProfile
from repro.retrieval.reranking import story_scores_from_shots
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class RecommendationWeights:
    """Relative weights of the three evidence sources."""

    profile: float = 0.4
    personal_implicit: float = 0.4
    community: float = 0.2

    def __post_init__(self) -> None:
        for name in ("profile", "personal_implicit", "community"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be non-negative")
        if self.profile + self.personal_implicit + self.community == 0:
            raise ValueError("at least one evidence weight must be positive")


@dataclass(frozen=True)
class StoryRecommendation:
    """One recommended story with its score and provenance."""

    story_id: str
    score: float
    rank: int
    category: str
    headline: str
    video_id: str


class NewsRecommender:
    """Ranks news stories for a user."""

    def __init__(
        self,
        collection: Collection,
        feedback_model: Optional[ImplicitFeedbackModel] = None,
        implicit_graph: Optional[ImplicitGraph] = None,
        weights: RecommendationWeights = RecommendationWeights(),
    ) -> None:
        self._collection = collection
        self._feedback_model = feedback_model
        self._graph = implicit_graph
        self._weights = weights

    @property
    def weights(self) -> RecommendationWeights:
        """The evidence weights."""
        return self._weights

    # -- evidence ------------------------------------------------------------------

    def _profile_story_scores(
        self, profile: UserProfile, stories: Sequence[NewsStory]
    ) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        for story in stories:
            affinity = profile.interest_in_category(story.category)
            concept_bonus = 0.0
            shot_count = 0
            for shot in self._collection.shots_of_story(story.story_id):
                shot_count += 1
                for concept in shot.concepts:
                    concept_bonus += profile.interest_in_concept(concept)
            if shot_count:
                affinity += 0.25 * concept_bonus / shot_count
            if affinity > 0:
                scores[story.story_id] = affinity
        return scores

    def _personal_story_scores(
        self, shot_evidence: Mapping[str, float], stories: Sequence[NewsStory]
    ) -> Dict[str, float]:
        if not shot_evidence:
            return {}
        if self._feedback_model is not None:
            # Uncached on purpose: the evidence mapping is rebuilt per call,
            # so memoising it would churn one-shot keys through the model's
            # shared LRU without ever hitting.
            shot_scores = self._feedback_model.rerank_scores_uncached(shot_evidence)
        else:
            shot_scores = dict(shot_evidence)
        story_scores = story_scores_from_shots(
            shot_scores, self._collection, aggregation="max"
        )
        wanted = {story.story_id for story in stories}
        return {
            story_id: score
            for story_id, score in story_scores.items()
            if story_id in wanted and score > 0
        }

    def _community_story_scores(
        self,
        shot_evidence: Mapping[str, float],
        stories: Sequence[NewsStory],
        recent_queries: Sequence[str],
    ) -> Dict[str, float]:
        if self._graph is None:
            return {}
        query_text = recent_queries[-1] if recent_queries else ""
        shot_scores = self._graph.recommendation_scores(
            query_text=query_text, session_shot_evidence=dict(shot_evidence)
        )
        if not shot_scores:
            return {}
        story_scores = story_scores_from_shots(
            shot_scores, self._collection, aggregation="max"
        )
        wanted = {story.story_id for story in stories}
        return {
            story_id: score
            for story_id, score in story_scores.items()
            if story_id in wanted
        }

    # -- recommendation --------------------------------------------------------------

    def recommend(
        self,
        profile: UserProfile,
        stories: Optional[Sequence[NewsStory]] = None,
        shot_evidence: Optional[Mapping[str, float]] = None,
        recent_queries: Sequence[str] = (),
        limit: int = 10,
        exclude_story_ids: Sequence[str] = (),
    ) -> List[StoryRecommendation]:
        """Rank candidate stories for a user.

        ``stories`` defaults to every story in the collection; restrict it
        to one bulletin's stories to build a personalised "today's news"
        rundown.  ``shot_evidence`` is the user's own implicit evidence (may
        be empty for a brand-new user, in which case the profile and the
        community graph carry the recommendation).
        """
        ensure_positive(limit, "limit")
        candidates = list(stories) if stories is not None else self._collection.stories()
        excluded = set(exclude_story_ids)
        candidates = [story for story in candidates if story.story_id not in excluded]
        if not candidates:
            return []
        shot_evidence = dict(shot_evidence or {})

        profile_scores = min_max_normalise(
            self._profile_story_scores(profile, candidates)
        )
        personal_scores = min_max_normalise(
            self._personal_story_scores(shot_evidence, candidates)
        )
        community_scores = min_max_normalise(
            self._community_story_scores(shot_evidence, candidates, recent_queries)
        )

        combined: Dict[str, float] = {}
        for story in candidates:
            score = (
                self._weights.profile * profile_scores.get(story.story_id, 0.0)
                + self._weights.personal_implicit
                * personal_scores.get(story.story_id, 0.0)
                + self._weights.community * community_scores.get(story.story_id, 0.0)
            )
            if score > 0:
                combined[story.story_id] = score

        ranked = sorted(combined.items(), key=lambda item: (-item[1], item[0]))[:limit]
        recommendations: List[StoryRecommendation] = []
        for rank, (story_id, score) in enumerate(ranked, start=1):
            story = self._collection.story(story_id)
            recommendations.append(
                StoryRecommendation(
                    story_id=story_id,
                    score=score,
                    rank=rank,
                    category=story.category,
                    headline=story.headline,
                    video_id=story.video_id,
                )
            )
        return recommendations

    def recommend_for_date(
        self,
        profile: UserProfile,
        broadcast_date: str,
        shot_evidence: Optional[Mapping[str, float]] = None,
        limit: int = 10,
    ) -> List[StoryRecommendation]:
        """Recommend from the stories broadcast on one date."""
        stories: List[NewsStory] = []
        for video in self._collection.videos():
            if video.broadcast_date == broadcast_date:
                stories.extend(self._collection.stories_of_video(video.video_id))
        return self.recommend(
            profile, stories=stories, shot_evidence=shot_evidence, limit=limit
        )
