"""A process-backed scatter executor with the ``ScatterGather`` map contract.

:class:`ProcessScatterGather` runs scatter tasks on long-lived worker
processes instead of threads, which is what actually breaks the GIL floor
for pure-CPU shard scoring.  Workers are plain ``multiprocessing.Process``
children (the ``fork`` start method where available — cheap, and parent
registry/scorer registrations are inherited; ``spawn`` otherwise), each
connected by its own duplex pipe.  Three messages flow parent → worker:

* ``("load", descriptor)`` — attach/refresh one export in the worker's
  :data:`~repro.multiproc.state.STATE` registry;
* ``("run", seq, task, item)`` — execute ``task(item)`` and reply
  ``("ok", seq, result)`` or ``("err", seq, error)``;
* ``("exit",)`` — drain and terminate.

Because each pipe is FIFO, a ``load`` published before a ``run`` is always
applied first — :meth:`publish` needs no acknowledgement round-trip, and
generation refresh piggybacks on the next scatter.

The executor mirrors :class:`~repro.utils.concurrency.ScatterGather`'s
guarantees: results gather in **item order**, the first failing sub-task's
exception is re-raised, ``close()`` is idempotent and safe against
concurrent ``map()`` calls (a dispatch lock serialises publish/map/close
batches), and maps after close — or single-item maps — run **inline** in
the parent against the same published state.  A worker that dies (crash,
``kill -9``) is detected by its broken pipe, respawned, replayed every
current export, and handed its unacknowledged items again; if the respawn
fails too, those items fall back to inline execution so a scatter still
returns correct results.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.multiproc import state as state_module
from repro.utils.validation import ensure_positive

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Distinguishes export keys of executors living in the same parent process.
_EXECUTOR_IDS = itertools.count(1)


def _worker_main(connection) -> None:
    """Worker process loop: apply loads, run tasks, reply in FIFO order."""
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "exit":
            break
        if kind == "load":
            descriptor = message[1]
            try:
                state_module.load_state(descriptor)
            except BaseException as error:  # surfaced by the next run
                state_module.record_load_failure(descriptor.key, error)
            continue
        if kind == "run":
            _, seq, task, item = message
            try:
                reply = ("ok", seq, task(item))
            except BaseException as error:
                reply = ("err", seq, error)
            try:
                connection.send(reply)
            except (BrokenPipeError, OSError):
                break
            except Exception as error:  # unpicklable result/exception
                connection.send(("err", seq, RuntimeError(repr(error))))
    try:
        connection.close()
    except OSError:  # pragma: no cover - defensive
        pass


@dataclass
class _Export:
    """One published state: generation clock + descriptor + owned shm block."""

    generation: int
    descriptor: object
    shm: object = None


def _abandoned_executor_cleanup(workers, exports) -> None:
    """Last-resort cleanup for an executor dropped without ``close()``.

    Runs via ``weakref.finalize`` on GC or at interpreter exit.  Unlike
    :meth:`ProcessScatterGather.close` it does not preserve inline
    usability — the executor is garbage — it only prevents the two
    shutdown failure modes of an abandoned executor: ``BufferError`` from
    ``SharedMemory.__del__`` racing scorer views that still hold exported
    pointers, and resource-tracker "leaked shared_memory" warnings for
    blocks nobody unlinked.  Views are dropped first, then blocks
    released; workers are told to exit and reaped on a short leash
    (they are daemons — the OS would collect them anyway).
    """
    for worker in list(workers):
        if worker is None:
            continue
        try:
            worker.connection.send(("exit",))
        except Exception:
            pass
    for worker in list(workers):
        if worker is None:
            continue
        try:
            worker.process.join(timeout=0.2)
            if worker.process.is_alive():
                worker.process.terminate()
            worker.connection.close()
        except Exception:
            pass
    for export in exports.values():
        if export.shm is not None:
            try:
                state_module.drop_state(export.descriptor.key)
                state_module.release_shared_block(export.shm)
            except Exception:
                pass
            export.shm = None


@dataclass
class _Worker:
    """A live worker process and its parent-side pipe end."""

    process: multiprocessing.Process
    connection: object
    slot: int

    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessScatterGather:
    """Scatter a picklable task over items on long-lived worker processes.

    Same ``map(task, items) -> results-in-item-order`` contract as
    :class:`~repro.utils.concurrency.ScatterGather`.  State exports reach
    workers through :meth:`publish`, which skips re-shipping anything whose
    generation has not moved.
    """

    def __init__(
        self,
        max_workers: int,
        start_method: Optional[str] = None,
        use_shared_memory: bool = True,
    ) -> None:
        ensure_positive(max_workers, "max_workers")
        self._max_workers = max_workers
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable; have {methods}"
            )
        self._context = multiprocessing.get_context(start_method)
        self._use_shared_memory = (
            use_shared_memory and state_module.shared_memory_available()
        )
        self._uid = f"psg{next(_EXECUTOR_IDS)}"
        # Serialises publish/map/close batches: within one map the shards run
        # in parallel across workers, but whole scatters are serialised, so a
        # close can never observe a half-dispatched batch.
        self._lock = threading.RLock()
        self._closed = False
        self._exports: Dict[str, _Export] = {}  # insertion order = replay order
        self._workers: List[Optional[_Worker]] = [None] * max_workers
        if max_workers > 1:
            # Eager spawn: fork before the caller ramps up request threads.
            for slot in range(max_workers):
                self._workers[slot] = self._spawn(slot)
        # Safety net for executors dropped without close(): release views
        # before their shm blocks so interpreter shutdown stays silent.
        # Captures the mutable containers, never self (which would leak).
        self._finalizer = weakref.finalize(
            self, _abandoned_executor_cleanup, self._workers, self._exports
        )

    # -- introspection -----------------------------------------------------------

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrent worker processes."""
        return self._max_workers

    @property
    def uid(self) -> str:
        """Namespace for this executor's export keys."""
        return self._uid

    @property
    def start_method(self) -> str:
        """The multiprocessing start method in use."""
        return self._context.get_start_method()

    @property
    def uses_shared_memory(self) -> bool:
        """Whether exports travel via shm blocks (vs inline payload bytes)."""
        return self._use_shared_memory

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (maps then run inline)."""
        with self._lock:
            return self._closed

    @property
    def worker_processes(self) -> List[multiprocessing.Process]:
        """Live worker processes (fault-injection hooks for tests)."""
        with self._lock:
            return [worker.process for worker in self._workers if worker is not None]

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, slot: int) -> Optional[_Worker]:
        """Start one worker and replay every current export to it."""
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_end,),
            name=f"{self._uid}-worker-{slot}",
            daemon=True,
        )
        try:
            process.start()
        except OSError:  # pragma: no cover - fork failure (resource limits)
            parent_end.close()
            child_end.close()
            return None
        child_end.close()
        worker = _Worker(process=process, connection=parent_end, slot=slot)
        for export in self._exports.values():
            if not self._send(worker, ("load", export.descriptor)):
                return None
        return worker

    def _send(self, worker: _Worker, message) -> bool:
        """Send one message, retiring the worker if its pipe is broken."""
        try:
            worker.connection.send(message)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._retire(worker)
            return False

    def _retire(self, worker: _Worker) -> None:
        """Tear one dead/dying worker down and free its slot."""
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if worker.process.is_alive():  # pragma: no cover - kill stragglers
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if self._workers[worker.slot] is worker:
            self._workers[worker.slot] = None

    def _live_workers(self) -> List[_Worker]:
        """Current workers, respawning any dead slots (rebuild-on-death)."""
        workers: List[_Worker] = []
        for slot in range(self._max_workers):
            worker = self._workers[slot]
            if worker is not None and not worker.alive():
                self._retire(worker)
                worker = None
            if worker is None:
                worker = self._spawn(slot)
                self._workers[slot] = worker
            if worker is not None:
                workers.append(worker)
        return workers

    # -- state publication -------------------------------------------------------

    def publish(
        self, key: str, generation: int, builder: Callable[[bool], tuple]
    ) -> bool:
        """Ensure every process holds ``key`` at ``generation``.

        ``builder(use_shared_memory)`` is invoked only when the stored
        generation differs (or the key is new) and must return
        ``(descriptor, shm_block_or_None)``.  The descriptor is broadcast to
        all workers and loaded into the parent's own registry (inline
        execution path); a superseded export's shm block is unlinked —
        existing mappings stay valid, so in-flight attachments are unharmed.
        Returns True when a new export was actually published.
        """
        with self._lock:
            export = self._exports.get(key)
            if export is not None and export.generation == generation:
                return False
            use_shm = self._use_shared_memory and not self._closed
            descriptor, shm = builder(use_shm)
            for worker in list(self._workers):
                if worker is not None:
                    self._send(worker, ("load", descriptor))
            # The parent loads the same state for inline execution, viewing
            # the export's own mapping rather than attaching a second one.
            state_module.load_state(
                descriptor, buffer=shm.buf if shm is not None else None
            )
            if export is not None:
                state_module.release_shared_block(export.shm)
            self._exports[key] = _Export(
                generation=generation, descriptor=descriptor, shm=shm
            )
            return True

    # -- scatter -----------------------------------------------------------------

    def map(
        self, task: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """``[task(item) for item in items]`` across worker processes.

        Results come back in item order; the first failing sub-task's
        exception is re-raised.  Runs inline when closed, single-item, or
        single-worker — matching :class:`ScatterGather`.
        """
        items = list(items)
        with self._lock:
            if self._closed or len(items) <= 1 or self._max_workers <= 1:
                return [task(item) for item in items]
            workers = self._live_workers()
            if not workers:  # pragma: no cover - all respawns failed
                return [task(item) for item in items]
            return self._scatter(task, items, workers)

    def _scatter(
        self, task, items: List[ItemT], workers: List[_Worker]
    ) -> List[ResultT]:
        """Dispatch items round-robin and gather; recover dead workers."""
        results: List[ResultT] = [None] * len(items)  # type: ignore[list-item]
        errors: Dict[int, BaseException] = {}
        retried_slots: set = set()
        assignments: Dict[int, List[int]] = {}  # worker slot -> item seqs
        by_slot: Dict[int, _Worker] = {worker.slot: worker for worker in workers}
        for seq in range(len(items)):
            worker = workers[seq % len(workers)]
            assignments.setdefault(worker.slot, []).append(seq)

        pending = dict(assignments)
        while pending:
            # Send every pending item; a failed send leaves the batch queued
            # for the retry round below.
            dispatched: Dict[int, List[int]] = {}
            for slot, seqs in pending.items():
                worker = by_slot.get(slot)
                if worker is None:
                    continue
                sent: List[int] = []
                for seq in seqs:
                    if not self._send(worker, ("run", seq, task, items[seq])):
                        by_slot.pop(slot, None)
                        break
                    sent.append(seq)
                if sent:
                    dispatched[slot] = sent

            # Gather replies per worker (FIFO per pipe).
            for slot, seqs in dispatched.items():
                worker = by_slot.get(slot)
                if worker is None:
                    continue
                remaining = pending[slot]
                for _ in range(len(seqs)):
                    try:
                        reply = worker.connection.recv()
                    except (EOFError, ConnectionResetError, OSError):
                        self._retire(worker)
                        by_slot.pop(slot, None)
                        break
                    kind, seq, value = reply
                    remaining.remove(seq)
                    if kind == "ok":
                        results[seq] = value
                    else:
                        errors[seq] = value
                if not remaining:
                    pending.pop(slot, None)

            # Anything still pending sat on a dead worker: respawn and retry
            # once per slot per scatter, then fall back to inline execution
            # so the scatter always completes (a task that reliably kills its
            # worker must not respawn forever).
            for slot in list(pending):
                worker = by_slot.get(slot)
                if worker is not None:
                    continue
                seqs = pending.pop(slot)
                replacement = None
                if slot not in retried_slots:
                    retried_slots.add(slot)
                    replacement = self._workers[slot]
                    if replacement is None or not replacement.alive():
                        if replacement is not None:
                            self._retire(replacement)
                        replacement = self._spawn(slot)
                        self._workers[slot] = replacement
                if replacement is not None:
                    by_slot[slot] = replacement
                    pending[slot] = seqs
                else:
                    for seq in seqs:
                        try:
                            results[seq] = task(items[seq])
                        except BaseException as error:
                            errors[seq] = error

        if errors:
            raise errors[min(errors)]
        return results

    # -- shutdown ----------------------------------------------------------------

    def close(self) -> None:
        """Stop all workers and unlink exported blocks (idempotent).

        Parent-side attachments stay loaded, so maps after close still run
        inline against correct state; publishes after close fall back to
        inline payloads (there is nobody left to share memory with).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = [worker for worker in self._workers if worker is not None]
            # In-place: the abandoned-executor finalizer holds this list.
            self._workers[:] = [None] * self._max_workers
            for worker in workers:
                self._send_quietly(worker, ("exit",))
            for worker in workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover - stragglers
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                try:
                    worker.connection.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            for export in self._exports.values():
                if export.shm is not None:
                    # Re-load the parent's copy from an inline payload before
                    # unlinking, so post-close inline maps keep working and
                    # no view holds pointers into the block being released.
                    descriptor = export.descriptor
                    inline = dataclasses.replace(
                        descriptor,
                        shm_name=None,
                        payload=bytes(export.shm.buf[: descriptor.payload_size]),
                    )
                    state_module.load_state(inline)
                    export.descriptor = inline
                    state_module.release_shared_block(export.shm)
                    export.shm = None
            # Everything is released; the abandoned-executor net is moot.
            self._finalizer.detach()

    @staticmethod
    def _send_quietly(worker: _Worker, message) -> None:
        try:
            worker.connection.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
