"""Structured serving metrics: counters, latency quantiles, fan-out timings.

Latency distributions are tracked per endpoint with the P² (P-square)
streaming quantile estimator of Jain & Chlamtac — O(1) memory per tracked
quantile, no sampling and no RNG, so snapshots are deterministic for a
deterministic observation sequence.  For small streams (at most
:data:`_EXACT_LIMIT` observations) the sketch answers from its exact
sorted buffer instead, so short test runs and smokes see true quantiles
rather than extrapolations.

Everything here is thread-safe: observations arrive from executor worker
threads and from the event loop, snapshots from whoever asks.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Dict, List, Optional

#: Observation count up to which quantiles are answered exactly from a
#: sorted buffer; past it the P² markers take over.
_EXACT_LIMIT = 64

#: The quantiles every latency track estimates.
TRACKED_QUANTILES = (0.5, 0.95, 0.99)


class P2Quantile:
    """One streaming quantile via the P² algorithm (5 markers, O(1) memory).

    Not thread-safe on its own; :class:`LatencyTrack` serialises access.
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self._q = quantile
        self._heights: List[float] = []
        # Marker positions (1-based, as in the paper) and their desired
        # positions; only meaningful once 5 observations have arrived.
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0, 1.0, 1.0, 1.0]
        self._increments = [
            0.0,
            quantile / 2.0,
            quantile,
            (1.0 + quantile) / 2.0,
            1.0,
        ]
        self._count = 0

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._count

    def observe(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            insort(heights, value)
            if self._count == 5:
                q = self._q
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return
        # Locate the cell the new observation falls into and bump markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        positions = self._positions
        for index in range(cell + 1, 5):
            positions[index] += 1
        desired = self._desired
        for index in range(5):
            desired[index] += self._increments[index]
        # Adjust the three interior markers toward their desired positions
        # with the piecewise-parabolic (hence "P²") height update.
        for index in range(1, 4):
            drift = desired[index] - positions[index]
            if (drift >= 1.0 and positions[index + 1] - positions[index] > 1) or (
                drift <= -1.0 and positions[index - 1] - positions[index] < -1
            ):
                step = 1 if drift >= 1.0 else -1
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: int) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + step / (
            positions[index + 1] - positions[index - 1]
        ) * (
            (positions[index] - positions[index - 1] + step)
            * (heights[index + 1] - heights[index])
            / (positions[index + 1] - positions[index])
            + (positions[index + 1] - positions[index] - step)
            * (heights[index] - heights[index - 1])
            / (positions[index] - positions[index - 1])
        )

    def _linear(self, index: int, step: int) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + step * (
            heights[index + step] - heights[index]
        ) / (positions[index + step] - positions[index])

    def value(self) -> Optional[float]:
        """The current quantile estimate (``None`` before any observation)."""
        if self._count == 0:
            return None
        if self._count <= 5:
            return _exact_quantile(self._heights, self._q)
        return self._heights[2]


def _exact_quantile(sorted_values: List[float], quantile: float) -> float:
    """Nearest-rank-with-interpolation quantile of a sorted buffer."""
    if not sorted_values:
        raise ValueError("no observations")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = quantile * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class LatencyTrack:
    """Latency distribution of one endpoint: count/mean/max + quantiles.

    Exact (sorted buffer) up to :data:`_EXACT_LIMIT` observations, P²
    estimates beyond.  Thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sketches = [P2Quantile(q) for q in TRACKED_QUANTILES]
        self._exact: List[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Absorb one latency observation (in seconds)."""
        seconds = float(seconds)
        with self._lock:
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._exact) < _EXACT_LIMIT:
                insort(self._exact, seconds)
            for sketch in self._sketches:
                sketch.observe(seconds)

    def snapshot(self) -> Dict[str, float]:
        """Count, mean, max and the tracked quantiles, as a plain dict."""
        with self._lock:
            if self._count == 0:
                return {"count": 0.0}
            out: Dict[str, float] = {
                "count": float(self._count),
                "mean": self._total / self._count,
                "max": self._max,
            }
            exact = self._count <= len(self._exact)
            for quantile, sketch in zip(TRACKED_QUANTILES, self._sketches):
                key = f"p{int(quantile * 100)}"
                if exact:
                    out[key] = _exact_quantile(self._exact, quantile)
                else:
                    estimate = sketch.value()
                    out[key] = estimate if estimate is not None else 0.0
            return out


class MetricsRegistry:
    """All serving metrics behind one snapshot.

    * ``observe_latency(endpoint, seconds, tenant=None)`` — per-endpoint
      latency distributions (p50/p95/p99 via :class:`LatencyTrack`), with
      an optional per-tenant breakdown of the same distributions.
    * ``increment(counter)`` — admission/rejection/outcome counters.
    * ``observe_queue_wait(seconds)`` / ``observe_fanout(seconds, shards)``
      — dedicated tracks for admission-queue wait and shard fan-out time.
    * ``set_gauge(name, value)`` — instantaneous values (queue depth,
      in-flight count) sampled at snapshot time by the frontend.

    :meth:`snapshot` returns one nested plain-``dict``/``float`` structure
    (JSON-serialisable as-is) so the CLI and tests can consume it directly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyTrack] = {}
        self._tenant_latency: Dict[str, Dict[str, LatencyTrack]] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._queue_wait = LatencyTrack()
        self._fanout = LatencyTrack()
        self._fanout_shards = 0

    def observe_latency(
        self, endpoint: str, seconds: float, tenant: Optional[str] = None
    ) -> None:
        """Record one completed request's latency for an endpoint.

        With ``tenant`` set the observation additionally lands in that
        tenant's per-endpoint track, so :meth:`snapshot` can break the
        same distributions down per tenant.
        """
        with self._lock:
            track = self._latency.get(endpoint)
            if track is None:
                track = self._latency[endpoint] = LatencyTrack()
            tenant_track = None
            if tenant is not None:
                by_endpoint = self._tenant_latency.setdefault(tenant, {})
                tenant_track = by_endpoint.get(endpoint)
                if tenant_track is None:
                    tenant_track = by_endpoint[endpoint] = LatencyTrack()
        track.observe(seconds)
        if tenant_track is not None:
            tenant_track.observe(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        """Record how long one admitted request waited for a slot."""
        self._queue_wait.observe(seconds)

    def observe_fanout(self, seconds: float, num_shards: int) -> None:
        """Record one completed scatter-gather fan-out."""
        self._fanout.observe(seconds)
        with self._lock:
            self._fanout_shards = int(num_shards)

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous gauge value."""
        with self._lock:
            self._gauges[name] = float(value)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable view of every metric."""
        with self._lock:
            latency_tracks = dict(self._latency)
            tenant_tracks = {
                tenant: dict(by_endpoint)
                for tenant, by_endpoint in self._tenant_latency.items()
            }
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            fanout_shards = self._fanout_shards
        fanout = self._fanout.snapshot()
        if fanout["count"]:
            fanout["num_shards"] = float(fanout_shards)
        return {
            "endpoints": {
                name: track.snapshot() for name, track in sorted(latency_tracks.items())
            },
            "tenants": {
                tenant: {
                    name: track.snapshot()
                    for name, track in sorted(by_endpoint.items())
                }
                for tenant, by_endpoint in sorted(tenant_tracks.items())
            },
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "queue_wait": self._queue_wait.snapshot(),
            "shard_fanout": fanout,
        }
