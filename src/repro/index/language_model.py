"""Query-likelihood language-model retrieval with Dirichlet smoothing.

Language-model scoring is the third text scorer (alongside TF-IDF and BM25)
so that substrate benchmark E10 can compare ranking functions, and so the
adaptive model can use smoothed term distributions when building feedback
models from watched shots.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.index.inverted_index import InvertedIndex
from repro.index.scoring import QueryTerms, TextScorer, normalise_query
from repro.utils.validation import ensure_positive


class DirichletLanguageModelScorer(TextScorer):
    """Query likelihood with Dirichlet-prior smoothing.

    Scores are log-probabilities shifted so that they are comparable across
    documents for the same query (constant query-dependent terms are
    retained; only documents containing at least one query term are scored,
    as is conventional for inverted-index evaluation).
    """

    def __init__(self, index: InvertedIndex, mu: float = 300.0) -> None:
        self._index = index
        self._mu = ensure_positive(mu, "mu")

    @property
    def mu(self) -> float:
        """The Dirichlet smoothing parameter."""
        return self._mu

    def _collection_probability(self, term: str) -> float:
        total = self._index.total_terms
        if total == 0:
            return 0.0
        return self._index.collection_frequency(term) / total

    def score(self, query_terms: QueryTerms) -> Dict[str, float]:
        """Smoothed query log-likelihood for all matching documents."""
        weights = normalise_query(query_terms)
        candidate_documents: Dict[str, Dict[str, int]] = {}
        for term in weights:
            for posting in self._index.postings(term):
                document_terms = candidate_documents.setdefault(posting.document_id, {})
                document_terms[term] = posting.term_frequency

        scores: Dict[str, float] = {}
        for document_id, term_frequencies in candidate_documents.items():
            length = self._index.document_length(document_id)
            log_likelihood = 0.0
            for term, query_weight in weights.items():
                collection_probability = self._collection_probability(term)
                if collection_probability == 0.0:
                    continue
                frequency = term_frequencies.get(term, 0)
                smoothed = (frequency + self._mu * collection_probability) / (
                    length + self._mu
                )
                log_likelihood += query_weight * math.log(smoothed)
            scores[document_id] = log_likelihood
        return scores


class JelinekMercerLanguageModelScorer(TextScorer):
    """Query likelihood with Jelinek-Mercer (linear) smoothing.

    Included as an alternative smoothing strategy for the smoothing ablation
    bench; ``lambda_`` is the weight on the document model.
    """

    def __init__(self, index: InvertedIndex, lambda_: float = 0.7) -> None:
        if not 0.0 < lambda_ < 1.0:
            raise ValueError(f"lambda_ must be in (0, 1), got {lambda_}")
        self._index = index
        self._lambda = lambda_

    @property
    def lambda_(self) -> float:
        """Weight on the document model (1 - weight on the collection model)."""
        return self._lambda

    def score(self, query_terms: QueryTerms) -> Dict[str, float]:
        """Smoothed query log-likelihood for all matching documents."""
        weights = normalise_query(query_terms)
        total_terms = max(1, self._index.total_terms)
        candidate_documents: Dict[str, Dict[str, int]] = {}
        for term in weights:
            for posting in self._index.postings(term):
                document_terms = candidate_documents.setdefault(posting.document_id, {})
                document_terms[term] = posting.term_frequency

        scores: Dict[str, float] = {}
        for document_id, term_frequencies in candidate_documents.items():
            length = max(1, self._index.document_length(document_id))
            log_likelihood = 0.0
            for term, query_weight in weights.items():
                collection_probability = self._index.collection_frequency(term) / total_terms
                document_probability = term_frequencies.get(term, 0) / length
                mixed = (
                    self._lambda * document_probability
                    + (1.0 - self._lambda) * collection_probability
                )
                if mixed <= 0.0:
                    continue
                log_likelihood += query_weight * math.log(mixed)
            scores[document_id] = log_likelihood
        return scores
