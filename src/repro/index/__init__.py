"""Retrieval substrate: tokenisation, inverted index, scorers, visual index, fusion."""

from repro.index.fusion import (
    comb_mnz,
    comb_sum,
    interpolate,
    min_max_normalise,
    reciprocal_rank_fusion,
    top_documents,
    weighted_fusion,
)
from repro.index.inverted_index import InvertedIndex, Posting
from repro.index.language_model import (
    DirichletLanguageModelScorer,
    JelinekMercerLanguageModelScorer,
)
from repro.index.scoring import Bm25Scorer, TextScorer, TfIdfScorer, normalise_query
from repro.index.storage import (
    load_inverted_index,
    load_visual_index,
    save_inverted_index,
    save_visual_index,
)
from repro.index.tokenizer import Tokenizer
from repro.index.visual import VisualIndex

__all__ = [
    "comb_mnz",
    "comb_sum",
    "interpolate",
    "min_max_normalise",
    "reciprocal_rank_fusion",
    "top_documents",
    "weighted_fusion",
    "InvertedIndex",
    "Posting",
    "DirichletLanguageModelScorer",
    "JelinekMercerLanguageModelScorer",
    "Bm25Scorer",
    "TextScorer",
    "TfIdfScorer",
    "normalise_query",
    "load_inverted_index",
    "load_visual_index",
    "save_inverted_index",
    "save_visual_index",
    "Tokenizer",
    "VisualIndex",
]
