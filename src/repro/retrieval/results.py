"""Ranked result lists returned by the retrieval engine.

A :class:`ResultList` is what the interface layer renders and what the
evaluation metrics score.  Each :class:`ResultItem` carries enough metadata
(keyframe, story headline, duration) for a simulated user to decide whether
to interact with it without dereferencing the collection.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.collection.documents import Collection


@dataclass(frozen=True)
class ResultItem:
    """One entry in a ranked result list."""

    shot_id: str
    score: float
    rank: int
    story_id: str = ""
    video_id: str = ""
    headline: str = ""
    category: str = ""
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for logging."""
        return {
            "shot_id": self.shot_id,
            "score": self.score,
            "rank": self.rank,
            "story_id": self.story_id,
            "video_id": self.video_id,
            "headline": self.headline,
            "category": self.category,
            "duration_seconds": self.duration_seconds,
        }


# Fast construction path for the result-list hot loop: installing a complete
# field dictionary on a bare instance skips the frozen-dataclass __init__
# (eight guarded object.__setattr__ calls per item).  Equivalence with normal
# construction is pinned by the kernel-equivalence tests.
_NEW_ITEM = ResultItem.__new__
_SET_ATTRIBUTE = object.__setattr__


@dataclass
class ResultList:
    """A ranked list of shots for one query."""

    query_text: str
    items: List[ResultItem] = field(default_factory=list)
    topic_id: Optional[str] = None

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ResultItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> ResultItem:
        return self.items[index]

    def shot_ids(self) -> List[str]:
        """The ranked shot ids."""
        return [item.shot_id for item in self.items]

    def scores(self) -> Dict[str, float]:
        """A ``{shot_id: score}`` view of the list."""
        return {item.shot_id: item.score for item in self.items}

    def top(self, count: int) -> List[ResultItem]:
        """The first ``count`` items."""
        return self.items[:count]

    def rank_of(self, shot_id: str) -> Optional[int]:
        """1-based rank of a shot, or ``None`` if absent."""
        for item in self.items:
            if item.shot_id == shot_id:
                return item.rank
        return None

    def contains(self, shot_id: str) -> bool:
        """True if the shot appears anywhere in the list."""
        return any(item.shot_id == shot_id for item in self.items)

    @classmethod
    def from_scores(
        cls,
        query_text: str,
        scores: Dict[str, float],
        collection: Optional[Collection] = None,
        limit: int = 100,
        topic_id: Optional[str] = None,
    ) -> "ResultList":
        """Build a ranked list from a score map.

        Ties are broken by shot id so rankings are deterministic.  Selection
        negates scores into ``(-score, shot_id)`` tuples so the sort runs on
        C tuple comparisons (no per-element key function); only the top
        ``limit`` survive.  When a collection is supplied, presentation
        metadata is filled in from the collection's cached per-shot
        prototype records.
        """
        return cls.from_decorated(
            query_text,
            [(-score, shot_id) for shot_id, score in scores.items()],
            collection=collection,
            limit=limit,
            topic_id=topic_id,
        )

    @classmethod
    def from_decorated(
        cls,
        query_text: str,
        decorated: List[tuple],
        collection: Optional[Collection] = None,
        limit: int = 100,
        topic_id: Optional[str] = None,
    ) -> "ResultList":
        """Build a ranked list from pre-negated ``(-score, shot_id)`` tuples.

        The kernel-facing variant of :meth:`from_scores`: callers that
        already hold scores in decorated form (the engine's single-source
        fusion fast path) avoid materialising an intermediate score map.
        ``decorated`` is consumed destructively (sorted in place).
        """
        if len(decorated) > 4 * limit:
            decorated = heapq.nsmallest(limit, decorated)
        else:
            decorated.sort()
            decorated = decorated[:limit]
        records = collection.presentation_records() if collection is not None else {}
        records_get = records.get
        items: List[ResultItem] = []
        append = items.append
        new_item = _NEW_ITEM
        set_attribute = _SET_ATTRIBUTE
        copy_record = dict
        item_type = ResultItem
        for rank, (negated_score, shot_id) in enumerate(decorated, start=1):
            record = records_get(shot_id)
            if record is not None:
                fields = copy_record(record)
                fields["score"] = -negated_score
                fields["rank"] = rank
                item = new_item(item_type)
                set_attribute(item, "__dict__", fields)
                append(item)
            else:
                append(ResultItem(shot_id=shot_id, score=-negated_score, rank=rank))
        return cls(query_text=query_text, items=items, topic_id=topic_id)


def merge_result_lists(
    lists: Sequence[ResultList], limit: int = 100, query_text: str = ""
) -> ResultList:
    """Merge several result lists by best score per shot (used by recommenders)."""
    best: Dict[str, ResultItem] = {}
    for result_list in lists:
        for item in result_list:
            current = best.get(item.shot_id)
            if current is None or item.score > current.score:
                best[item.shot_id] = item
    ranked = heapq.nsmallest(
        limit, best.values(), key=lambda item: (-item.score, item.shot_id)
    )
    items = [
        ResultItem(
            shot_id=item.shot_id,
            score=item.score,
            rank=rank,
            story_id=item.story_id,
            video_id=item.video_id,
            headline=item.headline,
            category=item.category,
            duration_seconds=item.duration_seconds,
        )
        for rank, item in enumerate(ranked, start=1)
    ]
    return ResultList(query_text=query_text, items=items)
