"""Durability tier: write-ahead log, incremental snapshots, crash recovery.

The in-memory engine stays the system of record for serving; this package
makes its *writes* durable.  Every mutating operation is appended to a
checksummed :class:`~repro.durability.wal.WriteAheadLog` before it is
applied, per-shard incremental snapshots (:class:`~repro.durability.
snapshots.SnapshotStore`) bound replay time and compact the log, and
:class:`~repro.durability.recovery.RecoveryManager` restores the exact
pre-crash index state — byte-identical under the canonical state digest in
:mod:`repro.durability.digest`.
"""

from repro.durability.digest import engine_state_digest, state_digest
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import RecoveredState, RecoveryError, RecoveryManager
from repro.durability.snapshots import SnapshotError, SnapshotStore
from repro.durability.verify import SegmentReport, VerifyReport, verify_directory
from repro.durability.wal import FSYNC_POLICIES, WalError, WriteAheadLog

__all__ = [
    "DurabilityManager",
    "FSYNC_POLICIES",
    "RecoveredState",
    "RecoveryError",
    "RecoveryManager",
    "SegmentReport",
    "SnapshotError",
    "SnapshotStore",
    "VerifyReport",
    "WalError",
    "WriteAheadLog",
    "engine_state_digest",
    "state_digest",
    "verify_directory",
]
