"""Tests for collection/corpus persistence."""

from __future__ import annotations

import pytest

from repro.collection import (
    load_collection,
    load_corpus,
    load_topics,
    save_collection,
    save_corpus,
    save_topics,
)
from repro.index import InvertedIndex
from repro.retrieval import VideoRetrievalEngine


class TestCollectionSnapshot:
    def test_round_trip_structure(self, tmp_path, small_corpus):
        path = tmp_path / "collection.json"
        save_collection(small_corpus.collection, path)
        loaded = load_collection(path)
        assert loaded.video_count == small_corpus.collection.video_count
        assert loaded.story_count == small_corpus.collection.story_count
        assert loaded.shot_count == small_corpus.collection.shot_count
        assert loaded.shot_ids() == small_corpus.collection.shot_ids()

    def test_round_trip_preserves_shot_content(self, tmp_path, small_corpus):
        path = tmp_path / "collection.json"
        save_collection(small_corpus.collection, path)
        loaded = load_collection(path)
        original = small_corpus.collection.shots()[5]
        restored = loaded.shot(original.shot_id)
        assert restored.transcript == original.transcript
        assert restored.category == original.category
        assert restored.concepts == original.concepts
        assert restored.topic_relevance == original.topic_relevance
        assert restored.keyframe.latent_signal == pytest.approx(
            original.keyframe.latent_signal
        )
        assert restored.duration == pytest.approx(original.duration)

    def test_round_trip_preserves_retrieval_behaviour(self, tmp_path, small_corpus):
        path = tmp_path / "collection.json"
        save_collection(small_corpus.collection, path)
        loaded = load_collection(path)
        topic = small_corpus.topics.topics()[0]
        query = " ".join(topic.query_terms)
        original_ranking = VideoRetrievalEngine(small_corpus.collection).search_text(
            query
        ).shot_ids()
        restored_ranking = VideoRetrievalEngine(loaded).search_text(query).shot_ids()
        assert original_ranking == restored_ranking

    def test_wrong_kind_rejected(self, tmp_path, small_corpus):
        path = tmp_path / "topics.json"
        save_topics(small_corpus.topics, path)
        with pytest.raises(ValueError):
            load_collection(path)


class TestTopicSnapshot:
    def test_round_trip(self, tmp_path, small_corpus):
        path = tmp_path / "topics.json"
        save_topics(small_corpus.topics, path)
        loaded = load_topics(path)
        assert loaded.topic_ids() == small_corpus.topics.topic_ids()
        first = small_corpus.topics.topics()[0]
        assert loaded.topic(first.topic_id).query_terms == first.query_terms
        assert loaded.topic(first.topic_id).category == first.category


class TestCorpusSnapshot:
    def test_round_trip(self, tmp_path, small_corpus):
        directory = save_corpus(small_corpus, tmp_path / "corpus")
        stored = load_corpus(directory)
        assert stored.seed == small_corpus.seed
        assert stored.collection.shot_count == small_corpus.collection.shot_count
        assert stored.topics.topic_ids() == small_corpus.topics.topic_ids()
        assert list(stored.qrels.items()) == list(small_corpus.qrels.items())

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path / "empty")

    def test_index_built_from_stored_corpus_matches(self, tmp_path, small_corpus):
        directory = save_corpus(small_corpus, tmp_path / "corpus")
        stored = load_corpus(directory)
        original_index = InvertedIndex.from_collection(small_corpus.collection)
        restored_index = InvertedIndex.from_collection(stored.collection)
        assert restored_index.document_count == original_index.document_count
        assert restored_index.total_terms == original_index.total_terms
