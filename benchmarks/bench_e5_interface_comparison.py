"""E5 — Desktop vs. interactive-TV interaction environments.

Section 3 of the paper argues that the interaction environment shapes which
and how much feedback users give: desktops afford plentiful implicit
feedback, while the iTV remote control makes querying painful but explicit
single-button ratings cheap.  We run the same users and topics through both
interface models and compare feedback volume, feedback mix, query counts and
retrieval quality, plus the per-indicator precision on each interface
(checking that the indicator ranking of E2 is broadly stable).
"""

from __future__ import annotations

from _common import print_table

from repro.core import combined_policy
from repro.evaluation import ExperimentCondition, LogAnalyser
from repro.simulation import shot_durations_from_collection

USERS = 8
TOPICS_PER_USER = 2


def run_experiment(bench_runner, bench_corpus):
    conditions = [
        ExperimentCondition(name="desktop", policy=combined_policy(), interface="desktop",
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=505),
        ExperimentCondition(name="itv", policy=combined_policy(), interface="itv",
                            user_count=USERS, topics_per_user=TOPICS_PER_USER, seed=505),
    ]
    results = bench_runner.run_conditions(conditions)
    analyser = LogAnalyser(
        shot_durations=shot_durations_from_collection(bench_corpus.collection)
    )
    rows = []
    indicator_tables = {}
    for condition in conditions:
        result = results[condition.name]
        logs = result.session_logs()
        report = analyser.analyse(logs, qrels=bench_corpus.qrels)
        explicit = report.explicit_events_per_session
        implicit = report.implicit_events_per_session
        rows.append(
            {
                "interface": condition.name,
                "map": result.mean_average_precision,
                "implicit_per_session": implicit,
                "explicit_per_session": explicit,
                "explicit_share": explicit / max(1e-9, implicit + explicit),
                "queries_per_session": report.queries_per_session,
                "relevant_found": result.mean_relevant_found(),
            }
        )
        indicator_tables[condition.name] = report.indicator_precision_table()
    return rows, indicator_tables


def test_e5_interface_comparison(benchmark, bench_runner, bench_corpus):
    rows, indicator_tables = benchmark.pedantic(
        run_experiment, args=(bench_runner, bench_corpus), rounds=1, iterations=1
    )
    print_table("E5: desktop vs iTV interaction environments", rows)
    for interface, table in indicator_tables.items():
        print_table(
            f"E5: indicator precision on {interface}",
            [{"indicator": name, "precision": precision, "firings": firings}
             for name, precision, firings in table],
        )
    desktop = next(row for row in rows if row["interface"] == "desktop")
    itv = next(row for row in rows if row["interface"] == "itv")
    # Expected shape: the desktop yields several times more implicit feedback;
    # the iTV mix is far more explicit; iTV users issue fewer queries.
    assert desktop["implicit_per_session"] > 2.0 * itv["implicit_per_session"]
    assert itv["explicit_share"] > desktop["explicit_share"]
    assert itv["queries_per_session"] <= desktop["queries_per_session"]
