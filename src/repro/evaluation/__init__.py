"""Evaluation harness: metrics, TREC runs, experiments, log analysis, significance."""

from repro.evaluation.experiment import (
    ConditionResult,
    ExperimentCondition,
    ExperimentRunner,
    SessionRecord,
    comparison_table,
    default_query_strategy,
    make_interface,
)
from repro.evaluation.loganalysis import (
    IndicatorReliability,
    LogAnalyser,
    LogAnalysisReport,
)
from repro.evaluation.metrics import (
    average_precision,
    dcg_at_k,
    evaluate_ranking,
    mean_average_precision,
    mean_metric,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    relative_improvement,
    success_at_k,
)
from repro.evaluation.reporting import (
    condition_summary_rows,
    indicator_rows,
    markdown_table,
    per_session_rows,
    write_csv,
    write_study_report,
)
from repro.evaluation.significance import (
    TestResult,
    compare_per_topic,
    paired_t_test,
    randomisation_test,
)
from repro.evaluation.trec import Run, RunEvaluation, compare_runs, evaluate_run

__all__ = [
    "ConditionResult",
    "ExperimentCondition",
    "ExperimentRunner",
    "SessionRecord",
    "comparison_table",
    "default_query_strategy",
    "make_interface",
    "IndicatorReliability",
    "LogAnalyser",
    "LogAnalysisReport",
    "average_precision",
    "dcg_at_k",
    "evaluate_ranking",
    "mean_average_precision",
    "mean_metric",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "relative_improvement",
    "success_at_k",
    "condition_summary_rows",
    "indicator_rows",
    "markdown_table",
    "per_session_rows",
    "write_csv",
    "write_study_report",
    "TestResult",
    "compare_per_topic",
    "paired_t_test",
    "randomisation_test",
    "Run",
    "RunEvaluation",
    "compare_runs",
    "evaluate_run",
]
