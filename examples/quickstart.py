#!/usr/bin/env python
"""Quickstart: build a collection, search it, and adapt with implicit feedback.

This walks through the core loop of the library in a few dozen lines:

1. generate a synthetic TRECVID-like news collection (the stand-in for the
   broadcast-news data the paper's proposed system records),
2. build the multimodal retrieval engine over it,
3. run a plain keyword search for one of the collection's search topics,
4. pretend the user clicked and watched a couple of the relevant results, and
5. re-run the query through the adaptive model and watch the ranking improve.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CollectionConfig, generate_corpus
from repro.core import AdaptiveVideoRetrievalSystem, implicit_only_policy
from repro.evaluation import average_precision
from repro.feedback import EventKind, InteractionEvent
from repro.retrieval import VideoRetrievalEngine


def main() -> None:
    # 1. A small synthetic news collection: bulletins -> stories -> shots,
    #    with ASR-like transcripts, search topics and relevance judgements.
    corpus = generate_corpus(seed=7, config=CollectionConfig(days=10, stories_per_day=8,
                                                             topic_count=8))
    stats = corpus.summary()
    print("collection:",
          f"{stats['videos']:.0f} bulletins, {stats['stories']:.0f} stories,",
          f"{stats['shots']:.0f} shots, {stats['topics']:.0f} search topics")

    # 2. The retrieval engine (BM25 text + visual + concept fusion).
    engine = VideoRetrievalEngine(corpus.collection)
    system = AdaptiveVideoRetrievalSystem(engine)

    # 3. Pick a topic and issue a deliberately vague two-term query for it.
    topic = corpus.topics.topics()[0]
    judgements = corpus.qrels.judgements_for(topic.topic_id)
    query = " ".join(topic.query_terms[:1])
    print(f"\ntopic {topic.topic_id} ({topic.category}): {topic.description}")
    print(f"user query: {query!r}")

    session = system.create_session(policy=implicit_only_policy(),
                                    topic_id=topic.topic_id)
    before = session.submit_query(query)
    print(f"\ninitial ranking   AP = {average_precision(before.shot_ids(), judgements):.3f}")
    for item in before.top(5):
        marker = "*" if corpus.qrels.is_relevant(topic.topic_id, item.shot_id) else " "
        print(f"  {marker} #{item.rank:<3} {item.shot_id}  [{item.category}] {item.headline}")

    # 4. The user clicks two relevant-looking results and watches them through.
    watched = [item for item in before.top(10)
               if corpus.qrels.is_relevant(topic.topic_id, item.shot_id)][:2]
    events = []
    clock = 0.0
    for item in watched:
        clock += 2.0
        events.append(InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=clock,
                                       shot_id=item.shot_id, rank=item.rank))
        clock += item.duration_seconds
        events.append(InteractionEvent(kind=EventKind.PLAY_COMPLETE, timestamp=clock,
                                       shot_id=item.shot_id, rank=item.rank))
    session.observe(events)
    print(f"\nuser played {len(watched)} shots to the end "
          f"({', '.join(item.shot_id for item in watched)})")

    # 5. The same query, now adapted with the implicit evidence.
    after = session.submit_query(query)
    print(f"\nadapted ranking   AP = {average_precision(after.shot_ids(), judgements):.3f}")
    for item in after.top(5):
        marker = "*" if corpus.qrels.is_relevant(topic.topic_id, item.shot_id) else " "
        print(f"  {marker} #{item.rank:<3} {item.shot_id}  [{item.category}] {item.headline}")

    print("\n(* = shot judged relevant for the topic)")


if __name__ == "__main__":
    main()
