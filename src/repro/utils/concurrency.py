"""Concurrency primitives for the read-mostly serving path.

The service's hot path is overwhelmingly reads: many user sessions searching
one shared, rarely-mutated index.  :class:`ReadWriteLock` encodes that
discipline — any number of readers proceed together without blocking each
other, while a writer (corpus/index mutation) waits for in-flight readers to
drain and then runs exclusively.  Writers are preferred once waiting, so a
steady stream of searches cannot starve an index update.

:class:`ScatterGather` is the fan-out side of the same serving story: a
partitioned operation (one sub-task per index shard) runs every sub-task on
a small persistent thread pool and collects the results back in sub-task
order, so callers see a deterministic gather regardless of completion
order.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, List, Sequence, TypeVar

from repro.utils.validation import ensure_positive

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Readers acquire the shared side (:meth:`read_locked`): they never block
    one another, only a live or waiting writer.  Writers acquire the
    exclusive side (:meth:`write_locked`): they wait for current readers to
    finish and block new readers from entering while waiting, so mutation
    latency is bounded by the longest in-flight read, not by the arrival
    rate of new reads.

    The read side is reentrant per thread: a thread already holding it may
    acquire it again (e.g. a service request holding the read side calls
    into ``engine.search``, which takes it as well) without deadlocking
    against a waiting writer.  The write side is not reentrant, and a
    thread must not acquire the write side while holding the read side.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._local = threading.local()

    def acquire_read(self) -> None:
        """Enter the shared (reader) side (reentrant per thread)."""
        depth = getattr(self._local, "read_depth", 0)
        if depth:
            self._local.read_depth = depth + 1
            return
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        self._local.read_depth = 1

    def release_read(self) -> None:
        """Leave the shared (reader) side."""
        depth = getattr(self._local, "read_depth", 0)
        if depth > 1:
            self._local.read_depth = depth - 1
            return
        self._local.read_depth = 0
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        """Enter the exclusive (writer) side."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave the exclusive (writer) side."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` scope holding the shared side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` scope holding the exclusive side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def active_readers(self) -> int:
        """Number of threads currently holding the shared side."""
        with self._condition:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        """Whether a thread currently holds the exclusive side."""
        with self._condition:
            return self._writer_active


class ScatterGather:
    """Scatter one callable over a list of items and gather results in order.

    Built for per-shard fan-out on the search path: the pool is created
    lazily and reused across calls (a search must not pay thread start-up
    costs), results come back in **item order** (never completion order, so
    merges are deterministic), and the first sub-task exception propagates
    to the caller unchanged.  With ``max_workers`` of 1 — or a single item —
    everything runs inline on the calling thread, which keeps the
    one-shard configuration free of any threading overhead.

    Worker threads never take engine locks (shard sub-tasks are pure reads
    over the shard's own structures), so scattering from inside the
    engine's shared read scope cannot deadlock against a waiting writer.
    """

    def __init__(self, max_workers: int, thread_name_prefix: str = "scatter") -> None:
        ensure_positive(max_workers, "max_workers")
        self._max_workers = max_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool: "ThreadPoolExecutor | None" = None
        self._closed = False
        self._pool_lock = threading.Lock()
        # Maps currently scattering on the pool.  close() racing a map must
        # never shut the pool down underneath it (ThreadPoolExecutor raises
        # "cannot schedule new futures after shutdown"); the shutdown is
        # deferred to whichever party — close() or the last in-flight map —
        # observes the pool unused last.
        self._inflight = 0

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrent sub-tasks."""
        return self._max_workers

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (maps then run inline)."""
        with self._pool_lock:
            return self._closed

    def _acquire_pool(self) -> "ThreadPoolExecutor | None":
        """The pool to scatter on, or ``None`` to run inline.

        Checked and (lazily) created under the lock so a ``map`` racing
        :meth:`close` can never resurrect a pool after shutdown — once
        closed, every map runs inline, permanently.  A returned pool is
        pinned (in-flight count) until the matching :meth:`_release_pool`,
        so a concurrent close cannot hand this map a dead pool.
        """
        with self._pool_lock:
            if self._closed or self._max_workers <= 1:
                return None
            pool = self._pool
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=self._thread_name_prefix,
                )
                self._pool = pool
            self._inflight += 1
            return pool

    def _release_pool(self) -> None:
        """Unpin the pool; run the shutdown a concurrent close deferred."""
        with self._pool_lock:
            self._inflight -= 1
            pool = None
            if self._closed and self._inflight == 0:
                pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map(
        self, task: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """``[task(item) for item in items]``, fanned out over the pool.

        Results are returned in item order; the first failing sub-task's
        exception is re-raised (remaining sub-tasks still run to completion
        on the pool, but their results are discarded).  Safe against a
        concurrent :meth:`close`: a map that already holds the pool finishes
        on it, later maps run inline.
        """
        items = list(items)
        pool = self._acquire_pool() if len(items) > 1 else None
        if pool is None:
            return [task(item) for item in items]
        try:
            futures = [pool.submit(task, item) for item in items]
            return [future.result() for future in futures]
        finally:
            self._release_pool()

    def close(self) -> None:
        """Shut the pool down (idempotent); subsequent maps run inline.

        Safe to call concurrently with :meth:`map` (and with other closes):
        in-flight maps complete on the pool, whose shutdown is deferred to
        the last of them; maps that arrive after this call run inline.
        """
        with self._pool_lock:
            self._closed = True
            pool = None
            if self._inflight == 0:
                pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
