"""Process-backed scatter scoring for :class:`ShardedEngine`.

:class:`ProcessShardedTextScorer` keeps the thread path's contract — the
gathered ``{doc_id: score}`` union is bit-identical, entry order included,
to what the monolithic engine computes — while running the per-shard
scoring loops in worker processes:

1. On every query it publishes (generation-checked, so usually a no-op) the
   lightweight global-statistics record plus any shard whose own generation
   moved since the last export.
2. It normalises the query **in the parent** (the tokenizer and term-weight
   pipeline never cross the process boundary) and scatters
   ``(shard_key, combined_generation, weights)`` items.
3. Workers score with persistent registry-resolved scorers over attached
   shared-memory columns and return packed ``(dense_indexes, scores)``
   bytes; the parent rebuilds each partial against its own id table and
   merges in shard order — exactly the thread path's merge.

Scatter runs under the engine's shared read lock (searches always hold it),
so generations are frozen for the duration of a map and a published export
can never be stale for the query that published it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.index.scoring import QueryTerms, TextScorer, normalise_query
from repro.multiproc.executor import ProcessScatterGather
from repro.multiproc.state import (
    export_global_stats,
    export_shard_state,
    score_shard_task,
    unpack_shard_scores,
)
from repro.sharding.engine import ShardedTextScorer
from repro.utils.concurrency import ScatterGather, checkpoint_if_cancelled


class ProcessShardedTextScorer(ShardedTextScorer):
    """A :class:`ShardedTextScorer` whose scatter phase runs in processes.

    ``shard_scorers`` (the parent-side thread scorers) are retained and
    exposed unchanged — the fault-injection suite's hooks still work, and
    they double as the inline evaluation path on a closed executor.
    """

    def __init__(
        self,
        shard_scorers: Sequence[TextScorer],
        gather: ScatterGather,
        executor: ProcessScatterGather,
        shard_indexes: Sequence[object],
        stats,
        scorer_name: str,
        scorer_config,
    ) -> None:
        super().__init__(shard_scorers, gather)
        self._executor = executor
        self._shards = list(shard_indexes)
        self._stats = stats
        self._scorer_name = scorer_name
        self._scorer_config = scorer_config
        self._global_key = f"{executor.uid}/global"
        self._shard_keys = [
            f"{executor.uid}/shard-{shard_id}" for shard_id in range(len(self._shards))
        ]

    @property
    def executor(self) -> ProcessScatterGather:
        """The process executor running the scatter phase."""
        return self._executor

    def _publish_state(self) -> None:
        """Push current-generation exports; unchanged generations are no-ops."""
        executor = self._executor
        stats = self._stats
        executor.publish(
            self._global_key,
            stats.generation,
            lambda use_shm: (export_global_stats(self._global_key, stats), None),
        )
        for shard_id, (key, shard) in enumerate(zip(self._shard_keys, self._shards)):
            executor.publish(
                key,
                shard.generation,
                lambda use_shm, key=key, shard_id=shard_id, shard=shard: (
                    export_shard_state(
                        key,
                        shard_id,
                        shard,
                        self._global_key,
                        self._scorer_name,
                        self._scorer_config,
                        use_shared_memory=use_shm,
                    )
                ),
            )

    def _scatter_and_merge(self, query_terms: QueryTerms) -> Dict[str, float]:
        """Gathered scores for all matching documents across shards.

        The process executor cannot be interrupted mid-task, so the
        cancellation checkpoint sits at entry: a request whose deadline
        already fired never publishes state or scatters to the workers.
        """
        checkpoint_if_cancelled()
        self._publish_state()
        weights = normalise_query(query_terms)
        combined_generation = self._stats.generation
        items = [
            (key, combined_generation, weights) for key in self._shard_keys
        ]
        packed: List = self._executor.map(score_shard_task, items)
        merged: Dict[str, float] = {}
        for shard, partial in zip(self._shards, packed):
            merged.update(unpack_shard_scores(shard.dense_document_ids(), partial))
        return merged
