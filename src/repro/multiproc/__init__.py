"""Multi-process scatter execution: break the GIL floor for shard scoring.

The thread-based scatter pool overlaps modelled I/O stalls but cannot
parallelise pure-CPU scoring — BENCH_e13/e15 record that honestly as a ≈1x
"GIL floor".  This package runs :class:`~repro.sharding.ShardedEngine`'s
text-scoring scatter phase across long-lived **worker processes** instead:

* :mod:`repro.multiproc.state` — freezes a shard's dense postings columns
  into picklable, ``multiprocessing.shared_memory``-mapped descriptors
  keyed by generation clocks, and provides the worker-side attached views
  that quack like a per-shard global-statistics view;
* :mod:`repro.multiproc.executor` — :class:`ProcessScatterGather`, a
  process pool with the ``ScatterGather`` map contract, generation-checked
  state refresh, and rebuild-on-worker-death;
* :mod:`repro.multiproc.scorer` — :class:`ProcessShardedTextScorer`, the
  drop-in scatter scorer wired behind ``ServiceConfig(executor="process")``
  and ``repro loadtest --procs``.

Rankings stay bit-identical to the thread and monolithic engines because
the partial score maps are still merged before fusion and every worker
scores with global collection statistics — the differential matrix in
``tests/test_multiproc.py`` pins it.
"""

from repro.multiproc.executor import ProcessScatterGather
from repro.multiproc.scorer import ProcessShardedTextScorer
from repro.multiproc.state import (
    AttachedShardIndex,
    AttachedShardState,
    GlobalStatsDescriptor,
    ShardStateDescriptor,
    StaleShardStateError,
    export_global_stats,
    export_shard_state,
    score_shard_task,
    shared_memory_available,
    unpack_shard_scores,
)

__all__ = [
    "AttachedShardIndex",
    "AttachedShardState",
    "GlobalStatsDescriptor",
    "ProcessScatterGather",
    "ProcessShardedTextScorer",
    "ShardStateDescriptor",
    "StaleShardStateError",
    "export_global_stats",
    "export_shard_state",
    "score_shard_task",
    "shared_memory_available",
    "unpack_shard_scores",
]
