"""Coverage for the thin simulation helpers: log replay and judgement noise.

``simulation/replay.py`` re-runs weighting schemes over recorded session
logs (including the round trip through the JSON-lines log files), and
``simulation/noise.py`` centralises the simulated users' noisy relevance
perception; both must be exactly reproducible under fixed seeds, because
the paper's methodology — and this repo's workload determinism guarantees —
stand on replayed logs meaning the same thing every time.
"""

from __future__ import annotations

import pytest

from repro.feedback.accumulator import EvidenceAccumulator
from repro.feedback.events import EventKind, InteractionEvent
from repro.feedback.weighting import heuristic_scheme, uniform_scheme
from repro.interfaces.logging import InteractionLogger, SessionLog
from repro.simulation import (
    JudgementModel,
    build_graph_from_logs,
    indicator_observations_from_logs,
    replay_evidence,
    shot_durations_from_collection,
)
from repro.utils.rng import RandomSource


def _event(kind: EventKind, timestamp: float, **kwargs) -> InteractionEvent:
    return InteractionEvent(kind=kind, timestamp=timestamp, user_id="u1",
                            session_id="u1-t1", **kwargs)


@pytest.fixture()
def two_iteration_log() -> SessionLog:
    """A session with two query iterations touching overlapping shots."""
    events = [
        _event(EventKind.SESSION_STARTED, 0.0),
        _event(EventKind.QUERY_SUBMITTED, 1.0, query_text="election results"),
        _event(EventKind.PLAY_CLICK, 2.0, shot_id="S1", rank=1),
        _event(EventKind.PLAY_PROGRESS, 8.0, shot_id="S1", rank=1, duration=6.0),
        _event(EventKind.HIGHLIGHT_METADATA, 9.0, shot_id="S2", rank=2),
        _event(EventKind.QUERY_SUBMITTED, 10.0, query_text="election government"),
        _event(EventKind.PLAY_CLICK, 11.0, shot_id="S3", rank=1),
        _event(EventKind.SKIP_RESULT, 12.0, shot_id="S4", rank=2),
        _event(EventKind.SESSION_ENDED, 13.0),
    ]
    return SessionLog(session_id="u1-t1", user_id="u1", interface="desktop",
                      topic_id="T1", events=events)


class TestReplayEvidence:
    def test_matches_live_accumulator_batching(self, two_iteration_log):
        """Replay splits the stream on query submissions, exactly as the
        live session observed it batch by batch."""
        replayed = replay_evidence(two_iteration_log, decay=0.5)

        live = EvidenceAccumulator(scheme=heuristic_scheme(), decay=0.5)
        events = two_iteration_log.events
        # Batches as the live system saw them: [start], [q1 + its events],
        # [q2 + its events + end] — split happens *before* each new query.
        live.observe_batch(events[0:1])
        live.observe_batch(events[1:5])
        live.observe_batch(events[5:])
        assert replayed == live.evidence()

    def test_decay_discounts_earlier_iterations(self, two_iteration_log):
        """With ostensive decay, iteration-1 evidence is weaker than an
        undecayed replay; the final iteration keeps full strength."""
        decayed = replay_evidence(two_iteration_log, decay=0.5)
        flat = replay_evidence(two_iteration_log, decay=1.0)
        assert decayed["S1"] < flat["S1"]
        assert decayed["S3"] == pytest.approx(flat["S3"])

    def test_scheme_changes_change_evidence(self, two_iteration_log):
        heuristic = replay_evidence(two_iteration_log, scheme=heuristic_scheme())
        uniform = replay_evidence(two_iteration_log, scheme=uniform_scheme())
        assert heuristic != uniform
        # Both agree on *which* shots carry evidence, though.
        assert set(heuristic) == set(uniform)

    def test_replay_is_idempotent(self, two_iteration_log):
        assert replay_evidence(two_iteration_log) == replay_evidence(two_iteration_log)


class TestLogRoundTrip:
    def test_graph_from_written_and_reread_logs_matches(
        self, two_iteration_log, tmp_path
    ):
        """The JSON-lines round trip loses nothing the graph builder uses."""
        second = SessionLog(
            session_id="u2-t1", user_id="u2", interface="desktop", topic_id="T1",
            events=[
                _event(EventKind.QUERY_SUBMITTED, 1.0, query_text="election results"),
                _event(EventKind.PLAY_CLICK, 2.0, shot_id="S1", rank=1),
                _event(EventKind.ADD_TO_PLAYLIST, 3.0, shot_id="S5", rank=3),
            ],
        )
        originals = [two_iteration_log, second]
        logger = InteractionLogger()
        logger.write_sessions(originals, tmp_path)
        reread = logger.read_sessions(tmp_path)
        assert [log.session_id for log in reread] == ["u1-t1", "u2-t1"]

        direct = build_graph_from_logs(originals)
        round_tripped = build_graph_from_logs(reread)
        assert round_tripped.session_count == direct.session_count == 2
        assert round_tripped.node_count == direct.node_count
        assert round_tripped.edge_count == direct.edge_count
        # Spot-check an edge neighbourhood survives byte-for-byte.
        for node in ("s:S1", "s:S3"):
            assert round_tripped.neighbours(node) == direct.neighbours(node)

    def test_replay_evidence_survives_round_trip(self, two_iteration_log, tmp_path):
        logger = InteractionLogger()
        path = tmp_path / "session.jsonl"
        logger.write_session(two_iteration_log, path)
        assert replay_evidence(logger.read_session(path)) == replay_evidence(
            two_iteration_log
        )

    def test_indicator_observations_skip_topicless_sessions(self, two_iteration_log):
        topicless = SessionLog(session_id="x", user_id="u3", interface="desktop",
                               topic_id=None,
                               events=[_event(EventKind.PLAY_CLICK, 1.0, shot_id="S1")])
        observations = indicator_observations_from_logs([two_iteration_log, topicless])
        assert len(observations) == 1
        topic_id, per_shot = observations[0]
        assert topic_id == "T1"
        assert "S1" in per_shot

    def test_shot_durations_cover_collection(self, small_corpus):
        durations = shot_durations_from_collection(small_corpus.collection)
        shots = list(small_corpus.collection.iter_shots())
        assert len(durations) == len(shots)
        assert all(duration > 0 for duration in durations.values())


class TestJudgementNoise:
    def test_fixed_seed_reproduces_judgements(self):
        model = JudgementModel(surrogate_error_rate=0.3, post_play_error_rate=0.1)

        def draw(seed: int):
            rng = RandomSource(seed).spawn("judge")
            surrogate = [
                model.judge_from_surrogate(rng, truly_relevant=(i % 2 == 0))
                for i in range(50)
            ]
            played = [
                model.judge_after_playing(rng, truly_relevant=(i % 3 == 0))
                for i in range(50)
            ]
            return surrogate, played

        assert draw(99) == draw(99)
        assert draw(99) != draw(100)  # different stream, different mistakes

    def test_zero_error_rates_are_truthful(self):
        model = JudgementModel(surrogate_error_rate=0.0, post_play_error_rate=0.0)
        rng = RandomSource(1).spawn("judge")
        for truly in (True, False):
            assert model.judge_from_surrogate(rng, truly) is truly
            assert model.judge_after_playing(rng, truly) is truly

    def test_certain_error_always_inverts(self):
        model = JudgementModel(surrogate_error_rate=1.0, post_play_error_rate=1.0)
        rng = RandomSource(2).spawn("judge")
        for truly in (True, False):
            assert model.judge_from_surrogate(rng, truly) is (not truly)
            assert model.judge_after_playing(rng, truly) is (not truly)

    def test_representativeness_scales_surrogate_error(self):
        """An unrepresentative keyframe pushes the error towards chance; a
        perfect one keeps the base rate.  Checked over a fixed stream."""
        model = JudgementModel(surrogate_error_rate=0.1)

        def error_rate(representativeness):
            rng = RandomSource(7).spawn("rep")
            draws = 4000
            wrong = sum(
                1
                for _ in range(draws)
                if not model.judge_from_surrogate(
                    rng, True, representativeness=representativeness
                )
            )
            return wrong / draws

        base = error_rate(1.0)
        degraded = error_rate(0.0)
        assert base == pytest.approx(0.1, abs=0.03)
        assert degraded == pytest.approx(0.5, abs=0.05)
        # Out-of-range representativeness is clamped, not an error.
        rng = RandomSource(8).spawn("clamp")
        model.judge_from_surrogate(rng, True, representativeness=1.7)
        model.judge_from_surrogate(rng, True, representativeness=-0.4)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            JudgementModel(surrogate_error_rate=1.2)
        with pytest.raises(ValueError):
            JudgementModel(post_play_error_rate=-0.1)
