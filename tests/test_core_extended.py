"""Additional adaptive-model tests: seen-shot demotion, full policy, custom
combination strategies and iteration snapshots."""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptiveVideoRetrievalSystem,
    CombinationConfig,
    combined_policy,
    full_policy,
    implicit_only_policy,
)
from repro.feedback import EventKind, InteractionEvent, uniform_scheme
from repro.profiles import UserProfile


def _play(shot_id, timestamp=0.0):
    return [
        InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=timestamp, shot_id=shot_id),
        InteractionEvent(kind=EventKind.PLAY_COMPLETE, timestamp=timestamp + 1.0,
                         shot_id=shot_id),
    ]


class TestSeenShotDemotion:
    def test_demote_seen_pushes_inspected_shots_down(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        policy = implicit_only_policy().with_overrides(demote_seen=0.8)
        session = adaptive_system.create_session(policy=policy, topic_id=topic.topic_id)
        query = " ".join(topic.query_terms[:2])
        first = session.submit_query(query)
        top_shot = first.shot_ids()[0]
        # The user plays the top result; with heavy demotion it should no
        # longer occupy the top rank on the next iteration.
        session.observe(_play(top_shot))
        second = session.submit_query(query)
        assert second.rank_of(top_shot) is None or second.rank_of(top_shot) > 1


class TestFullPolicy:
    def test_full_policy_uses_all_evidence_sources(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[1]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        profile = UserProfile.single_interest("u", topic.category, 0.8)
        session = adaptive_system.create_session(
            profile=profile, policy=full_policy(), topic_id=topic.topic_id
        )
        session.submit_query(topic.query_terms[0])
        events = _play(relevant[0]) + [
            InteractionEvent(kind=EventKind.MARK_RELEVANT, timestamp=5.0,
                             shot_id=relevant[1]),
        ]
        session.observe(events)
        assert session.implicit_evidence()
        assert session.explicit_store().judgement_count() == 1
        results = session.submit_query(topic.query_terms[0])
        assert len(results) > 0


class TestCustomCombination:
    @pytest.mark.parametrize("strategy", ["linear", "cold_start", "profile_gate"])
    def test_all_strategies_work_in_a_session(self, medium_corpus, strategy):
        system = AdaptiveVideoRetrievalSystem(
            __import__("repro.retrieval", fromlist=["VideoRetrievalEngine"])
            .VideoRetrievalEngine(medium_corpus.collection),
            combination=CombinationConfig(strategy=strategy),
        )
        topic = medium_corpus.topics.topics()[0]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        profile = UserProfile.single_interest("u", topic.category, 0.9)
        session = system.create_session(profile=profile, policy=combined_policy(),
                                        topic_id=topic.topic_id)
        session.submit_query(topic.query_terms[0])
        session.observe(_play(relevant[0]))
        results = session.submit_query(topic.query_terms[0])
        assert len(results) > 0


class TestIterationSnapshots:
    def test_evidence_snapshot_recorded_per_iteration(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        session = adaptive_system.create_session(
            policy=implicit_only_policy(), scheme=uniform_scheme(),
            topic_id=topic.topic_id,
        )
        session.submit_query(topic.query_terms[0])
        session.observe(_play(relevant[0]))
        session.submit_query(topic.query_terms[0])
        iterations = session.iterations
        assert iterations[0].evidence_snapshot == {}
        assert relevant[0] in iterations[1].evidence_snapshot

    def test_adapted_query_carries_expansion_terms(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        relevant = sorted(medium_corpus.qrels.relevant_shots(topic.topic_id))
        session = adaptive_system.create_session(
            policy=implicit_only_policy(), topic_id=topic.topic_id
        )
        session.submit_query(topic.query_terms[0])
        session.observe(_play(relevant[0]) + _play(relevant[1], timestamp=10.0))
        session.submit_query(topic.query_terms[0])
        adapted = session.iterations[-1].adapted_query
        assert adapted.term_weights  # expansion terms were added
