"""WAL-shipping read replica: tail the log, serve bounded-staleness reads.

A :class:`ReplicaServer` attaches **read-only** to a durable primary's
durability directory.  It bootstraps through the normal recovery path
(snapshot chain + gap-free WAL prefix), then tails the WAL incrementally:
each :meth:`poll` scans the segments through the same checksummed-frame
reader recovery uses and applies the maximal contiguous LSN run past its
applied position — a replica never applies past a hole, so its state is
always a true prefix of the primary's write history and therefore
bit-identical (same dense interning, same scores) to the primary at the
same applied LSN.

The replica deliberately never constructs a
:class:`~repro.durability.manager.DurabilityManager`: attaching one
repairs the WAL tail (a physical rewrite), which only the owner — or a
promotion — may do.  All replica I/O is scans.

Compaction on the primary can truncate records the replica has not read
yet.  Registered replicas pin compaction through the WAL's replication
guard; an unregistered (or lapsed) replica that finds the log truncated
in front of it **restarts cleanly from the newest snapshot** — full
re-recovery — rather than ever applying a torn view.  The ordering makes
this race-free: a poll scans the WAL *before* reading the manifest tip,
so any record missing from the scan is guaranteed to be covered by a
manifest the same poll (or the next) observes.

Failover: :meth:`promote` drains the disk prefix, then reopens the
directory as a writable :class:`~repro.service.RetrievalService` — whose
attach path repairs the WAL tail (``repair_to``) past the durable prefix
— and proves with the canonical state digest that promotion lost nothing
beyond the acknowledged gap-free prefix.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.durability.digest import engine_state_digest
from repro.durability.recovery import RecoveryManager, read_header
from repro.durability.snapshots import SnapshotStore
from repro.durability.wal import WriteAheadLog
from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    PromotionError,
    ReplicaClosedError,
    ReplicaLaggingError,
    ReplicationError,
)
from repro.retrieval.results import ResultList
from repro.service.config import ServiceConfig
from repro.service.service import RetrievalService, build_engine
from repro.utils.serialization import PathLike

#: Sentinel distinguishing "use the configured bound" from an explicit
#: ``None`` ("disable the bound for this call").
_UNSET = object()


@dataclass
class PromotionResult:
    """What a completed failover promotion established.

    ``promoted_lsn`` may exceed ``replica_lsn`` when writes raced onto
    disk between the replica's final drain and the writable reopen (the
    promoted service then holds a *longer* durable prefix — nothing the
    replica applied was lost).  ``replica_digest == promoted_digest``
    whenever the LSNs agree, which is the "promotion lost nothing beyond
    the acknowledged gap-free prefix" proof.
    """

    service: RetrievalService
    replica_id: str
    replica_lsn: int
    promoted_lsn: int
    replica_digest: str
    promoted_digest: str
    records_dropped: int

    @property
    def digests_match(self) -> bool:
        """True when the replica state and the promoted state coincide."""
        return self.replica_digest == self.promoted_digest


class ReplicaServer:
    """A read-only follower of one durability directory.

    ``collection`` decorates results exactly as on the primary; ``corpus``
    (optional, a stored/synthetic corpus) additionally lets a promotion
    hand back a fully equipped service (topics and qrels included).
    ``config`` must agree with the directory's shard count; its
    ``durability_dir``/``serving`` fields are ignored — a replica never
    owns the directory it tails.
    """

    def __init__(
        self,
        directory: PathLike,
        collection=None,
        corpus=None,
        config: Optional[ServiceConfig] = None,
        replica_id: str = "replica",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if collection is None and corpus is None:
            raise ReplicationError(
                "ReplicaServer needs the collection (or corpus) the primary "
                "serves: recovered ids decorate results through it"
            )
        if not replica_id:
            raise ReplicationError("replica_id must be non-empty")
        self._directory = Path(directory)
        header = read_header(self._directory)
        self._num_shards = int(header["num_shards"])
        if config is None:
            config = ServiceConfig(num_shards=self._num_shards)
        if config.num_shards != self._num_shards:
            raise ReplicationError(
                f"durability directory {self._directory} was written with "
                f"num_shards={self._num_shards} but the replica config asks "
                f"for num_shards={config.num_shards}"
            )
        # A replica never owns the directory (attach would repair the WAL
        # tail) and never fronts a serving edge of its own.
        self._config = config.with_overrides(durability_dir=None, serving=None)
        self._replication = config.replication or ReplicationConfig()
        self._corpus = corpus
        self._collection = collection if collection is not None else corpus.collection
        self._replica_id = replica_id
        self._clock = clock
        self._lock = threading.RLock()
        self._closed = False
        # Read-only scanner over the segments; scans read bytes directly,
        # so one long-lived instance observes every later append/rewrite.
        self._wal = WriteAheadLog(self._directory, self._num_shards)
        self._applied_lsn = 0
        self._disk_last_lsn = 0
        self._documents_seen: set = set()
        self._shots_seen: set = set()
        self._records_applied = 0
        self._feedback_batches = 0
        self._polls = 0
        self._restarts = 0
        self._engine = None
        self._rebuild_from_disk()
        self._last_poll_clock = self._clock()

    # -- bootstrap / restart -------------------------------------------------------

    def _rebuild_from_disk(self) -> None:
        """Full re-recovery: snapshot chain + gap-free WAL prefix.

        Used at construction and whenever compaction advanced past the
        replica's position (the "restart cleanly from the new snapshot"
        arm of the checkpoint-while-tailing contract).
        """
        recovered = RecoveryManager(self._directory).recover()
        engine = build_engine(self._collection, self._config, recovered=recovered)
        old_engine = self._engine
        self._engine = engine
        self._applied_lsn = recovered.applied_lsn
        self._disk_last_lsn = max(self._disk_last_lsn, recovered.applied_lsn)
        self._documents_seen = {doc_id for doc_id, _ in recovered.documents}
        self._shots_seen = {shot_id for shot_id, _, _ in recovered.shots}
        self._feedback_batches += recovered.wal_feedback_ops
        if old_engine is not None:
            old_engine.close()

    # -- accessors -----------------------------------------------------------------

    @property
    def replica_id(self) -> str:
        """The id this replica registers (and acknowledges) under."""
        return self._replica_id

    @property
    def directory(self) -> Path:
        """The durability directory being tailed."""
        return self._directory

    @property
    def engine(self):
        """The live read-only engine (for differential tests)."""
        return self._engine

    @property
    def applied_lsn(self) -> int:
        """The LSN the replica's state is current through."""
        with self._lock:
            return self._applied_lsn

    @property
    def closed(self) -> bool:
        """True once closed or promoted away."""
        return self._closed

    def statistics(self) -> Dict[str, float]:
        """Tailing counters (polls, applies, restarts, lag inputs)."""
        with self._lock:
            return {
                "applied_lsn": float(self._applied_lsn),
                "disk_last_lsn": float(self._disk_last_lsn),
                "records_applied": float(self._records_applied),
                "feedback_batches": float(self._feedback_batches),
                "polls": float(self._polls),
                "restarts": float(self._restarts),
            }

    def state_digest(self) -> str:
        """Canonical digest of the replica's current index state."""
        with self._lock:
            self._ensure_open()
            return engine_state_digest(self._engine)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReplicaClosedError(
                f"replica {self._replica_id!r} is closed"
            )

    # -- tailing -------------------------------------------------------------------

    def poll(self) -> int:
        """One tailing round: apply every contiguous new record on disk.

        Returns how many records were applied (counting a snapshot
        restart as the number of LSNs it advanced).  Never applies past a
        hole: a torn tail or a stranded record leaves the replica at the
        durable prefix, waiting for the next poll.
        """
        with self._lock:
            self._ensure_open()
            applied = self._poll_locked()
            self._last_poll_clock = self._clock()
            return applied

    def _poll_locked(self) -> int:
        self._polls += 1
        # Scan the WAL *before* reading the manifest tip: any record the
        # scan misses was truncated by a checkpoint whose manifest was
        # renamed earlier, so the tip read below is guaranteed to cover it.
        records, _tail_errors = self._wal.scan_all()
        tip_lsn = SnapshotStore(self._directory, self._num_shards).latest_wal_lsn
        if records:
            self._disk_last_lsn = max(
                self._disk_last_lsn, int(records[-1]["lsn"])
            )
        self._disk_last_lsn = max(self._disk_last_lsn, tip_lsn)
        applied = self._apply_contiguous(records)
        if applied == 0 and tip_lsn > self._applied_lsn:
            # The log in front of us was compacted away (we were not — or
            # not promptly enough — pinning compaction).  Restart cleanly
            # from the snapshot; never stitch across the truncation.
            before = self._applied_lsn
            self._rebuild_from_disk()
            self._restarts += 1
            applied = max(0, self._applied_lsn - before)
        return applied

    def _apply_contiguous(self, records: List[Dict[str, object]]) -> int:
        tail = [
            record for record in records if int(record["lsn"]) > self._applied_lsn
        ]
        if not tail or int(tail[0]["lsn"]) != self._applied_lsn + 1:
            return 0
        applied = 0
        engine = self._engine
        with engine.exclusive_writer():
            expected = self._applied_lsn + 1
            for record in tail:
                lsn = int(record["lsn"])
                if lsn != expected:
                    break  # a hole: everything past it is beyond the prefix
                self._apply_record_locked(engine, record)
                self._applied_lsn = lsn
                expected += 1
                applied += 1
                self._records_applied += 1
        return applied

    def _apply_record_locked(self, engine, record: Dict[str, object]) -> None:
        """Replay one WAL record into the live engine, idempotently.

        Mirrors the recovery replay exactly: WAL records carry tokenised
        frequencies / feature vectors, which go straight into the index
        facades (generation bumps invalidate every derived cache).
        """
        op = record.get("op")
        if op == "doc":
            document_id = str(record["id"])
            if document_id not in self._documents_seen:
                self._documents_seen.add(document_id)
                engine.inverted_index.add_document_frequencies(
                    document_id,
                    {str(t): int(f) for t, f in record["tf"].items()},
                )
        elif op == "shot":
            shot_id = str(record["id"])
            if shot_id not in self._shots_seen:
                self._shots_seen.add(shot_id)
                engine.visual_index.add_shot(
                    shot_id,
                    [float(value) for value in record["features"]],
                    {str(c): float(s) for c, s in record["concepts"].items()},
                )
        elif op == "del":
            target = str(record["id"])
            if record.get("kind") == "shot":
                if target in self._shots_seen:
                    self._shots_seen.discard(target)
                    engine.visual_index.delete_shot(target)
            elif target in self._documents_seen:
                self._documents_seen.discard(target)
                engine.inverted_index.delete_document(target)
        elif op == "upd":
            document_id = str(record["id"])
            frequencies = {str(t): int(f) for t, f in record["tf"].items()}
            if document_id in self._documents_seen:
                # Same re-interning as the primary: delete + re-add at the
                # dense tail, so live insertion order stays bit-identical.
                engine.inverted_index.update_document_frequencies(
                    document_id, frequencies
                )
            else:
                self._documents_seen.add(document_id)
                engine.inverted_index.add_document_frequencies(
                    document_id, frequencies
                )
        elif op == "feedback":
            # Not index state: counted so lag accounting covers the meta
            # segment, replayable into sessions by a future follower tier.
            self._feedback_batches += 1
        else:
            raise ReplicationError(
                f"unknown WAL op {op!r} at lsn {record.get('lsn')}"
            )

    def catch_up(
        self,
        target_lsn: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> int:
        """Poll until caught up; returns the applied LSN.

        With ``target_lsn`` the replica keeps polling (sleeping
        ``poll_interval_seconds`` between empty rounds) until its applied
        LSN reaches the target, raising :class:`ReplicaLaggingError` with
        the remaining lag when ``timeout_seconds`` (default: the config's
        ``catch_up_timeout_seconds``) expires first.  Without a target it
        drains whatever is on disk: it returns after the first round that
        neither applied records nor restarted from a snapshot.
        """
        timeout = (
            timeout_seconds
            if timeout_seconds is not None
            else self._replication.catch_up_timeout_seconds
        )
        deadline = self._clock() + timeout
        while True:
            applied = self.poll()
            with self._lock:
                reached = self._applied_lsn
            if target_lsn is not None:
                if reached >= target_lsn:
                    return reached
            elif applied == 0:
                return reached
            if self._clock() >= deadline:
                if target_lsn is None:
                    return reached
                raise ReplicaLaggingError(
                    f"replica {self._replica_id!r} did not reach lsn "
                    f"{target_lsn} within {timeout:.3f}s (applied lsn "
                    f"{reached})",
                    lag_lsn=max(0, target_lsn - reached),
                )
            if applied == 0:
                time.sleep(self._replication.poll_interval_seconds)

    # -- bounded-staleness reads ---------------------------------------------------

    def lag(self, primary_lsn: Optional[int] = None) -> int:
        """LSNs the replica trails the reference point by (never negative)."""
        with self._lock:
            reference = (
                int(primary_lsn) if primary_lsn is not None else self._disk_last_lsn
            )
            return max(0, reference - self._applied_lsn)

    def check_staleness(
        self,
        primary_lsn: Optional[int] = None,
        max_lag_lsn: object = _UNSET,
        max_lag_seconds: object = _UNSET,
    ) -> None:
        """Raise :class:`ReplicaLaggingError` when a staleness bound is violated.

        ``primary_lsn`` is the primary's last allocated LSN when the
        caller knows it (the router does); otherwise the newest LSN the
        replica has observed on disk stands in.  Bounds default to the
        replication config; pass ``None`` explicitly to disable one.
        """
        lsn_bound = (
            self._replication.max_lag_lsn if max_lag_lsn is _UNSET else max_lag_lsn
        )
        seconds_bound = (
            self._replication.max_lag_seconds
            if max_lag_seconds is _UNSET
            else max_lag_seconds
        )
        if lsn_bound is not None:
            lag = self.lag(primary_lsn)
            if lag > int(lsn_bound):
                raise ReplicaLaggingError(
                    f"replica {self._replica_id!r} lags {lag} LSNs behind "
                    f"(bound: {int(lsn_bound)})",
                    lag_lsn=lag,
                )
        if seconds_bound is not None:
            with self._lock:
                staleness = self._clock() - self._last_poll_clock
            if staleness > float(seconds_bound):
                raise ReplicaLaggingError(
                    f"replica {self._replica_id!r} last polled "
                    f"{staleness:.3f}s ago (bound: {float(seconds_bound)}s)",
                    lag_seconds=staleness,
                )

    def search(
        self,
        text: str,
        limit: Optional[int] = None,
        topic_id: Optional[str] = None,
        primary_lsn: Optional[int] = None,
        max_lag_lsn: object = _UNSET,
        max_lag_seconds: object = _UNSET,
    ) -> ResultList:
        """One stateless ranked read, bounded-staleness checked first.

        Rankings are bit-identical to the primary engine's
        ``search_text`` at the same applied LSN — the differential suite
        pins this across scorers and shard counts.
        """
        with self._lock:
            self._ensure_open()
            engine = self._engine
        self.check_staleness(
            primary_lsn=primary_lsn,
            max_lag_lsn=max_lag_lsn,
            max_lag_seconds=max_lag_seconds,
        )
        return engine.search_text(text, limit=limit, topic_id=topic_id)

    # -- failover ------------------------------------------------------------------

    def promote(self) -> PromotionResult:
        """Become the primary: drain the disk prefix, reopen writable.

        Drains the durable prefix, captures the replica's digest, then
        reopens the directory as a full :class:`RetrievalService` — whose
        attach path repairs the WAL tail past the gap-free prefix — and
        proves digest equality at equal LSN.  The replica itself is
        closed by a successful promotion (its engine's role is taken over
        by the promoted service).
        """
        with self._lock:
            self._ensure_open()
            self.catch_up()
            replica_lsn = self._applied_lsn
            replica_digest = engine_state_digest(self._engine)
            records, _ = self._wal.scan_all()
            beyond = sum(
                1 for record in records if int(record["lsn"]) > replica_lsn
            )
            self._wal.close()
            config = self._config.with_overrides(
                durability_dir=str(self._directory)
            )
            if self._corpus is not None:
                service = RetrievalService.from_corpus(self._corpus, config=config)
            else:
                service = RetrievalService(self._collection, config=config)
            promoted_lsn = service.engine.durability.wal.last_lsn
            promoted_digest = engine_state_digest(service.engine)
            if promoted_lsn < replica_lsn:
                service.close()
                raise PromotionError(
                    f"promotion of {self._replica_id!r} recovered through "
                    f"lsn {promoted_lsn}, behind the replica's applied lsn "
                    f"{replica_lsn} — the directory lost acknowledged "
                    f"records"
                )
            if promoted_lsn == replica_lsn and promoted_digest != replica_digest:
                service.close()
                raise PromotionError(
                    f"promotion of {self._replica_id!r} diverged: replica "
                    f"digest {replica_digest} != promoted digest "
                    f"{promoted_digest} at lsn {replica_lsn}"
                )
            engine, self._engine = self._engine, None
            self._closed = True
            if engine is not None:
                engine.close()
            return PromotionResult(
                service=service,
                replica_id=self._replica_id,
                replica_lsn=replica_lsn,
                promoted_lsn=promoted_lsn,
                replica_digest=replica_digest,
                promoted_digest=promoted_digest,
                records_dropped=beyond,
            )

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        """Stop tailing and release the engine (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wal.close()
            if self._engine is not None:
                self._engine.close()
                self._engine = None

    def __enter__(self) -> "ReplicaServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
