"""Recovery edge cases and the recovered-state equivalence contract.

Every test follows the same shape: build a durable service, mutate it,
close it, and check that recovery — cold ``RecoveryManager.recover()``
or a full service reopen — reproduces the **byte-identical** index state
(same canonical digest, same rankings) that an uninterrupted in-memory
run would have.  Covered edges: empty WAL, WAL-only (no post-bootstrap
checkpoint), snapshot-only (fully compacted WAL), replay after
compaction, replay-twice idempotence, feedback records, and reopening a
recovered service to continue writing.

All tests carry the ``durability`` marker (``pytest -m durability``).
"""

from __future__ import annotations

import pytest

from repro.durability import RecoveryManager, engine_state_digest
from repro.durability.digest import engine_text_items, engine_visual_items
from repro.durability.manager import _index_generations
from repro.feedback import EventKind, InteractionEvent
from repro.retrieval import Query
from repro.service import FeedbackBatch, RetrievalService, ServiceConfig
from repro.workload.ingest import (
    apply_ingest,
    service_feature_dim,
    synthetic_ingest_ops,
)

pytestmark = pytest.mark.durability


def _durable_config(directory, num_shards=1, interval=10_000) -> ServiceConfig:
    return ServiceConfig(
        num_shards=num_shards,
        durability_dir=str(directory),
        snapshot_interval_ops=interval,
        fsync_policy="never",
        result_cache_size=0,
    )


def _memory_config(num_shards=1) -> ServiceConfig:
    return ServiceConfig(num_shards=num_shards, result_cache_size=0)


def _service(corpus, config) -> RetrievalService:
    return RetrievalService(corpus.collection, config=config)


def _ingest(service, count, seed=0):
    ops = synthetic_ingest_ops(
        count, seed=seed, feature_dim=service_feature_dim(service)
    )
    apply_ingest(service, ops)


def assert_same_rankings(reference, candidate, queries):
    for query in queries:
        expected = reference.search(query, limit=None)
        actual = candidate.search(query, limit=None)
        assert expected.shot_ids() == actual.shot_ids(), query
        assert [item.score for item in expected.items] == [
            item.score for item in actual.items
        ], query


class TestRecoveryEdges:
    def test_empty_wal_recovers_bootstrap_state(self, analysed_corpus, tmp_path):
        service = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        live = engine_state_digest(service.engine)
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.applied_lsn == 0
        assert state.checkpoint_id == 0
        assert state.ingested_ops == 0
        assert state.wal_index_ops == 0
        assert state.tail_errors == {}

    def test_wal_only_recovery(self, analysed_corpus, tmp_path):
        # Interval far above the op count: nothing checkpoints after
        # bootstrap, so recovery replays the entire WAL over it.
        service = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        _ingest(service, 9)
        live = engine_state_digest(service.engine)
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.checkpoint_id == 0
        assert state.wal_index_ops == 9
        assert state.ingested_ops == 9
        assert state.wal_dropped_records == 0

    def test_snapshot_only_recovery(self, analysed_corpus, tmp_path):
        # Interval 1: every op checkpoints and compacts, so the WAL is
        # empty at close and recovery is pure snapshot restoration.
        service = _service(
            analysed_corpus, _durable_config(tmp_path / "d", interval=1)
        )
        _ingest(service, 6)
        live = engine_state_digest(service.engine)
        durability = service.engine.durability
        assert durability.wal.scan_all() == ([], {})
        assert durability.checkpoints_written >= 6
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.wal_index_ops == 0
        assert state.ingested_ops == 6

    def test_replay_after_compaction(self, analysed_corpus, tmp_path):
        # Interval 4 over 10 ops: checkpoints at op 4 and 8, then a
        # two-record WAL tail that recovery must replay on top.
        service = _service(
            analysed_corpus, _durable_config(tmp_path / "d", interval=4)
        )
        _ingest(service, 10)
        live = engine_state_digest(service.engine)
        # Three checkpoints through this manager: bootstrap + ops 4 and 8.
        assert service.engine.durability.checkpoints_written == 3
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.checkpoint_id == 2
        assert state.wal_index_ops == 2
        assert state.ingested_ops == 10

    def test_replay_twice_is_idempotent(self, analysed_corpus, tmp_path):
        # A checkpoint whose watermark understates the WAL (as if the
        # process died between writing the manifest and compacting):
        # recovery replays records the snapshot already contains and must
        # skip them as duplicates rather than double-apply.
        service = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        _ingest(service, 8)
        live = engine_state_digest(service.engine)
        durability = service.engine.durability
        engine = service.engine
        durability.snapshots.write_checkpoint(
            text_items=list(engine_text_items(engine)),
            visual_items=list(engine_visual_items(engine)),
            wal_lsn=durability.wal.last_lsn - 3,
            text_generations=_index_generations(engine.inverted_index),
            visual_generations=_index_generations(engine.visual_index),
        )
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.wal_skipped_duplicates == 3
        assert state.ingested_ops == 8

    def test_feedback_is_logged_but_does_not_change_state(
        self, analysed_corpus, tmp_path
    ):
        service = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        _ingest(service, 4)
        live = engine_state_digest(service.engine)
        shot_id = analysed_corpus.collection.shot_ids()[0]
        info = service.open_session("user-a")
        service.submit_feedback(
            FeedbackBatch(
                user_id="user-a",
                session_id=info.session_id,
                events=(
                    InteractionEvent(
                        kind=EventKind.PLAY_CLICK, timestamp=1.0, shot_id=shot_id
                    ),
                ),
            )
        )
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.wal_feedback_ops == 1
        assert state.wal_index_ops == 4
        assert state.ingested_ops == 4


class TestRecoveredServiceEquivalence:
    @pytest.mark.parametrize("num_shards", (1, 4))
    def test_reopened_service_matches_in_memory_reference(
        self, analysed_corpus, make_random_queries, tmp_path, num_shards
    ):
        # The acceptance property: a service recovered from disk ranks
        # bit-identically to an in-memory service fed the same ops.
        directory = tmp_path / f"d{num_shards}"
        durable = _service(
            analysed_corpus, _durable_config(directory, num_shards, interval=5)
        )
        _ingest(durable, 12, seed=3)
        live = engine_state_digest(durable.engine)
        durable.close()

        reference = _service(analysed_corpus, _memory_config(num_shards))
        _ingest(reference, 12, seed=3)
        assert engine_state_digest(reference.engine) == live

        reopened = _service(analysed_corpus, _durable_config(directory, num_shards))
        try:
            assert engine_state_digest(reopened.engine) == live
            queries = make_random_queries(analysed_corpus, seed=500, count=8)
            queries.append(Query(text="ingest election flood summit"))
            assert_same_rankings(reference.engine, reopened.engine, queries)
        finally:
            reopened.close()
            reference.close()

    def test_reopen_continues_the_op_stream(self, analysed_corpus, tmp_path):
        # Crash/reopen mid-stream must be invisible: writing ops 0..5,
        # reopening, then writing 6..13 lands in the same state as one
        # uninterrupted durable run of 14 ops.
        split = tmp_path / "split"
        service = _service(analysed_corpus, _durable_config(split, interval=4))
        ops = synthetic_ingest_ops(
            14, seed=9, feature_dim=service_feature_dim(service)
        )
        apply_ingest(service, ops[:6])
        service.close()
        service = _service(analysed_corpus, _durable_config(split, interval=4))
        apply_ingest(service, ops[6:])
        split_digest = engine_state_digest(service.engine)
        service.close()

        whole = tmp_path / "whole"
        service = _service(analysed_corpus, _durable_config(whole, interval=4))
        apply_ingest(service, ops)
        whole_digest = engine_state_digest(service.engine)
        service.close()

        assert split_digest == whole_digest
        assert (
            RecoveryManager(split).recover().state_digest()
            == RecoveryManager(whole).recover().state_digest()
            == whole_digest
        )

    def test_mono_and_sharded_recover_to_the_same_digest(
        self, analysed_corpus, tmp_path
    ):
        digests = set()
        for num_shards in (1, 4):
            directory = tmp_path / f"n{num_shards}"
            service = _service(
                analysed_corpus, _durable_config(directory, num_shards, interval=3)
            )
            _ingest(service, 10, seed=5)
            service.close()
            digests.add(RecoveryManager(directory).recover().state_digest())
        assert len(digests) == 1


def _mutate_mix(service, ops):
    """Canonical del/upd/delshot script over an applied ingest stream."""
    doc_ids = [op[1] for op in ops if op[0] == "doc"]
    shot_ids = [op[1] for op in ops if op[0] == "shot"]
    service.delete_document(doc_ids[0])
    service.update_document(doc_ids[1], "ceasefire summit rewrite")
    service.delete_shot(shot_ids[0])
    return 3  # mutation record count


class TestMutableCorpusRecovery:
    @pytest.mark.parametrize("num_shards", (1, 3))
    def test_deletes_and_updates_replay_from_wal(
        self, analysed_corpus, tmp_path, num_shards
    ):
        # WAL-only arm: interval far above the op count, so recovery
        # replays every del/upd record over the bootstrap checkpoint.
        service = _service(
            analysed_corpus, _durable_config(tmp_path / "d", num_shards)
        )
        ops = synthetic_ingest_ops(
            10, seed=3, feature_dim=service_feature_dim(service)
        )
        apply_ingest(service, ops)
        mutations = _mutate_mix(service, ops)
        live = engine_state_digest(service.engine)
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.wal_index_ops == 10 + mutations
        assert state.wal_mutation_ops == mutations
        # Replay is deterministic: a second cold recovery agrees.
        assert RecoveryManager(tmp_path / "d").recover().state_digest() == live

    @pytest.mark.parametrize("num_shards", (1, 3))
    def test_mutations_replay_across_checkpoints(
        self, analysed_corpus, tmp_path, num_shards
    ):
        # Tight checkpoint cadence: mutations land both inside truncated
        # (checkpointed) prefixes and in the live WAL tail.  The first
        # checkpoint after a mutation is a rebase — it rewrites the full
        # live state so earlier deltas never resurrect a deleted slot.
        service = _service(
            analysed_corpus, _durable_config(tmp_path / "d", num_shards, interval=4)
        )
        ops = synthetic_ingest_ops(
            12, seed=3, feature_dim=service_feature_dim(service)
        )
        doc_ids = [op[1] for op in ops if op[0] == "doc"]
        shot_ids = [op[1] for op in ops if op[0] == "shot"]
        for index, op in enumerate(ops):
            apply_ingest(service, [op])
            if index == 7:
                service.delete_document(doc_ids[1])
                service.update_document(doc_ids[2], "verdict launch rewrite")
            if index == 9:
                service.delete_shot(shot_ids[0])
        live = engine_state_digest(service.engine)
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert not any(d == doc_ids[1] for d, _ in state.documents)
        assert shot_ids[0] not in [entry[0] for entry in state.shots]

    def test_compaction_then_checkpoint_recovers(self, analysed_corpus, tmp_path):
        # Compaction renumbers dense slots; the rebase checkpoint that
        # follows must capture the renumbered state so recovery does not
        # stitch stale deltas across the renumbering.
        service = _service(analysed_corpus, _durable_config(tmp_path / "d", 2))
        ops = synthetic_ingest_ops(
            10, seed=5, feature_dim=service_feature_dim(service)
        )
        apply_ingest(service, ops)
        _mutate_mix(service, ops)
        stats = service.compact()
        assert stats.reclaimed == 3
        apply_ingest(
            service,
            synthetic_ingest_ops(
                4, seed=99, feature_dim=service_feature_dim(service)
            ),
        )
        live = engine_state_digest(service.engine)
        service.close()  # close checkpoints: first one since the mutations
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        reopened = _service(analysed_corpus, _durable_config(tmp_path / "d", 2))
        try:
            assert engine_state_digest(reopened.engine) == live
        finally:
            reopened.close()

    def test_reopen_after_crash_with_mutations_rebases(
        self, analysed_corpus, tmp_path
    ):
        # Crash (no close-checkpoint) after mutations: the reopened
        # service must flag its next checkpoint as a rebase, and a third
        # generation recovers the continued stream exactly.
        service = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        ops = synthetic_ingest_ops(
            8, seed=7, feature_dim=service_feature_dim(service)
        )
        apply_ingest(service, ops)
        _mutate_mix(service, ops)
        live = engine_state_digest(service.engine)
        del service  # abandoned: no checkpoint, WAL tail only

        reopened = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        assert engine_state_digest(reopened.engine) == live
        assert reopened.engine.durability._rebase_next_checkpoint
        apply_ingest(
            reopened,
            synthetic_ingest_ops(
                3, seed=8, feature_dim=service_feature_dim(reopened)
            ),
        )
        live = engine_state_digest(reopened.engine)
        reopened.close()  # writes the rebase checkpoint
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.ingested_ops >= 0

    def test_delete_below_bootstrap_clamps_ingested_ops(
        self, analysed_corpus, tmp_path
    ):
        # Deleting bootstrap documents shrinks the live count below the
        # checkpoint-0 baseline; the net-growth figure clamps at zero
        # rather than going negative.
        service = _service(analysed_corpus, _durable_config(tmp_path / "d"))
        bootstrap_doc = service.engine.inverted_index.document_ids()[0]
        service.delete_document(bootstrap_doc)
        live = engine_state_digest(service.engine)
        service.close()
        state = RecoveryManager(tmp_path / "d").recover()
        assert state.state_digest() == live
        assert state.ingested_ops == 0
        assert state.wal_mutation_ops == 1
