"""Turning accumulated implicit evidence into retrieval evidence.

The :class:`ImplicitFeedbackModel` converts per-shot evidence mass (from the
accumulator) into the two things the retrieval engine can actually use:

* a set of weighted *expansion terms* extracted from the transcripts of
  positively-judged shots, and
* a *re-ranking score map* over shots, optionally propagated to visually
  similar shots (a user who liked a shot probably also likes shots that look
  like it — the video-specific twist implicit feedback gains over text).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.index.inverted_index import InvertedIndex
from repro.index.visual import VisualIndex
from repro.retrieval.expansion import extract_key_terms
from repro.utils.validation import ensure_in_range, ensure_positive


class ImplicitFeedbackModel:
    """Derives query expansion and re-ranking evidence from implicit feedback."""

    def __init__(
        self,
        inverted_index: InvertedIndex,
        visual_index: Optional[VisualIndex] = None,
        expansion_terms: int = 10,
        visual_propagation: float = 0.2,
        propagation_neighbours: int = 5,
    ) -> None:
        self._index = inverted_index
        self._visual = visual_index
        self._expansion_terms = expansion_terms
        self._propagation = ensure_in_range(
            visual_propagation, 0.0, 1.0, "visual_propagation"
        )
        self._neighbours = ensure_positive(propagation_neighbours, "propagation_neighbours")

    # -- query expansion --------------------------------------------------------

    def expansion_term_weights(
        self, shot_evidence: Mapping[str, float]
    ) -> Dict[str, float]:
        """Weighted expansion terms from positively-judged shots.

        Terms are extracted with evidence-weighted TF-IDF offer weights; the
        number of terms is bounded by the model's ``expansion_terms``.
        Returns an empty mapping when there is no positive evidence or
        expansion is disabled.
        """
        if self._expansion_terms <= 0:
            return {}
        positive = {
            shot_id: mass for shot_id, mass in shot_evidence.items() if mass > 0
        }
        if not positive:
            return {}
        return extract_key_terms(
            self._index,
            list(positive),
            limit=self._expansion_terms,
            document_weights=positive,
        )

    # -- re-ranking evidence ---------------------------------------------------------

    def rerank_scores(self, shot_evidence: Mapping[str, float]) -> Dict[str, float]:
        """Per-shot re-ranking scores derived from the evidence.

        Positive evidence is propagated to visually similar shots with the
        configured propagation weight; negative evidence stays on the shot
        it was observed on (we have no grounds to generalise disinterest).
        """
        scores: Dict[str, float] = {}
        for shot_id, mass in shot_evidence.items():
            scores[shot_id] = scores.get(shot_id, 0.0) + mass
        if self._visual is None or self._propagation <= 0.0:
            return scores
        for shot_id, mass in shot_evidence.items():
            if mass <= 0 or not self._visual.has_shot(shot_id):
                continue
            for neighbour_id, similarity in self._visual.similar_to_shot(
                shot_id, limit=self._neighbours
            ):
                propagated = self._propagation * mass * max(0.0, similarity)
                if propagated > 0:
                    scores[neighbour_id] = scores.get(neighbour_id, 0.0) + propagated
        return scores

    # -- introspection -----------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Configuration summary for experiment reports."""
        return {
            "expansion_terms": self._expansion_terms,
            "visual_propagation": self._propagation,
            "propagation_neighbours": self._neighbours,
            "has_visual_index": self._visual is not None,
        }
