"""Tests for metrics, TREC runs, significance tests and log analysis."""

from __future__ import annotations

import pytest

from repro.collection import Qrels
from repro.evaluation import (
    LogAnalyser,
    Run,
    average_precision,
    compare_per_topic,
    compare_runs,
    dcg_at_k,
    evaluate_ranking,
    evaluate_run,
    mean_average_precision,
    mean_metric,
    ndcg_at_k,
    paired_t_test,
    precision_at_k,
    randomisation_test,
    recall_at_k,
    reciprocal_rank,
    relative_improvement,
    success_at_k,
)
from repro.feedback import EventKind, InteractionEvent
from repro.interfaces import SessionLog


class TestMetrics:
    def test_precision_at_k(self):
        ranking = ["a", "b", "c", "d"]
        assert precision_at_k(ranking, {"a", "c"}, 2) == 0.5
        assert precision_at_k(ranking, {"a", "c"}, 4) == 0.5
        assert precision_at_k([], {"a"}, 5) == 0.0
        with pytest.raises(ValueError):
            precision_at_k(ranking, {"a"}, 0)

    def test_recall_at_k(self):
        ranking = ["a", "b", "c"]
        assert recall_at_k(ranking, {"a", "z"}, 3) == 0.5
        assert recall_at_k(ranking, set(), 3) == 0.0

    def test_average_precision_perfect_and_worst(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0
        assert average_precision(["x", "y"], {"a"}) == 0.0

    def test_average_precision_known_value(self):
        # Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision(["a", "x", "b"], {"a", "b"}) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_average_precision_counts_unretrieved_relevant(self):
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["x"], {"a"}) == 0.0

    def test_graded_metrics_accept_mappings(self):
        ranking = ["a", "b", "c"]
        grades = {"a": 2, "c": 1}
        assert precision_at_k(ranking, grades, 3) == pytest.approx(2 / 3)
        assert dcg_at_k(ranking, grades, 3) > 0
        assert 0 < ndcg_at_k(ranking, grades, 3) <= 1.0

    def test_ndcg_perfect_ordering_is_one(self):
        grades = {"a": 2, "b": 1}
        assert ndcg_at_k(["a", "b"], grades, 2) == pytest.approx(1.0)
        assert ndcg_at_k(["b", "a"], grades, 2) < 1.0

    def test_ndcg_no_relevant_is_zero(self):
        assert ndcg_at_k(["a"], {}, 5) == 0.0

    def test_success_at_k(self):
        assert success_at_k(["x", "a"], {"a"}, 2) == 1.0
        assert success_at_k(["x", "a"], {"a"}, 1) == 0.0

    def test_mean_metric_and_map(self):
        assert mean_metric([]) == 0.0
        assert mean_metric([0.2, 0.4]) == pytest.approx(0.3)
        rankings = {"T1": ["a"], "T2": ["x"]}
        judgements = {"T1": {"a"}, "T2": {"b"}}
        assert mean_average_precision(rankings, judgements) == pytest.approx(0.5)

    def test_evaluate_ranking_bundle(self):
        metrics = evaluate_ranking(["a", "x", "b"], {"a", "b"}, cutoffs=(2,))
        assert "average_precision" in metrics
        assert "precision@2" in metrics
        assert "ndcg@2" in metrics

    def test_relative_improvement(self):
        assert relative_improvement(0.4, 0.5) == pytest.approx(0.25)
        assert relative_improvement(0.0, 0.5) == 0.0


class TestRuns:
    def test_run_round_trip(self, tmp_path):
        run = Run(name="test-run")
        run.add_topic("T1", ["a", "b", "c"])
        run.add_topic("T2", ["x"])
        path = tmp_path / "run.txt"
        run.save(path)
        loaded = Run.load(path)
        assert loaded.name == "test-run"
        assert loaded.ranking_for("T1") == ["a", "b", "c"]
        assert len(loaded) == 2

    def test_malformed_run_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("T1 Q0 doc1 1\n")
        with pytest.raises(ValueError):
            Run.load(path)

    def test_evaluate_run_per_topic_and_aggregate(self):
        qrels = Qrels({"T1": {"a": 1, "b": 1}, "T2": {"x": 1}})
        run = Run(name="r")
        run.add_topic("T1", ["a", "z", "b"])
        run.add_topic("T2", ["q", "x"])
        evaluation = evaluate_run(run, qrels)
        assert set(evaluation.per_topic) == {"T1", "T2"}
        assert 0 < evaluation.map < 1
        assert evaluation.metric("average_precision") == evaluation.map

    def test_evaluate_run_missing_topic_scores_zero(self):
        qrels = Qrels({"T1": {"a": 1}, "T2": {"b": 1}})
        run = Run(name="partial")
        run.add_topic("T1", ["a"])
        evaluation = evaluate_run(run, qrels)
        assert evaluation.per_topic["T2"]["average_precision"] == 0.0
        assert evaluation.map == pytest.approx(0.5)

    def test_compare_runs_sorted(self):
        qrels = Qrels({"T1": {"a": 1}})
        good = Run(name="good"); good.add_topic("T1", ["a"])
        bad = Run(name="bad"); bad.add_topic("T1", ["x", "a"])
        rows = compare_runs([evaluate_run(bad, qrels), evaluate_run(good, qrels)])
        assert rows[0]["run"] == "good"


class TestSignificance:
    def test_paired_t_test_detects_consistent_improvement(self):
        baseline = [0.2, 0.3, 0.25, 0.4, 0.35, 0.3, 0.28, 0.33]
        treatment = [value + 0.1 for value in baseline]
        result = paired_t_test(baseline, treatment)
        assert result.mean_difference == pytest.approx(0.1)
        assert result.p_value < 0.01
        assert result.significant()

    def test_paired_t_test_no_difference(self):
        values = [0.2, 0.3, 0.4, 0.5]
        result = paired_t_test(values, list(values))
        assert result.p_value == 1.0
        assert not result.significant()

    def test_randomisation_test_direction(self):
        baseline = [0.1, 0.2, 0.15, 0.22, 0.18, 0.2, 0.16, 0.25]
        treatment = [value + 0.2 for value in baseline]
        improved = randomisation_test(baseline, treatment, iterations=500)
        assert improved.p_value < 0.05
        noise = randomisation_test(baseline, baseline, iterations=200)
        assert noise.p_value > 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([0.1], [0.1, 0.2])
        with pytest.raises(ValueError):
            paired_t_test([0.1], [0.2])

    def test_compare_per_topic(self):
        baseline = {"T1": 0.1, "T2": 0.2, "T3": 0.3}
        treatment = {"T1": 0.3, "T2": 0.4, "T3": 0.5}
        result = compare_per_topic(baseline, treatment, method="t-test")
        assert result.mean_difference == pytest.approx(0.2)
        with pytest.raises(ValueError):
            compare_per_topic({"T1": 0.1}, {"T1": 0.2})
        with pytest.raises(ValueError):
            compare_per_topic(baseline, treatment, method="anova")


class TestLogAnalysis:
    def _log(self, interface="desktop", topic_id="T1", shots=("s1", "s2")):
        events = [
            InteractionEvent(kind=EventKind.QUERY_SUBMITTED, timestamp=0.0,
                             query_text="goal"),
        ]
        for index, shot_id in enumerate(shots):
            events.append(
                InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=float(index + 1),
                                 shot_id=shot_id, rank=index + 1)
            )
        events.append(
            InteractionEvent(kind=EventKind.MARK_RELEVANT, timestamp=10.0, shot_id=shots[0])
        )
        return SessionLog(session_id=f"{interface}-{topic_id}", user_id="u1",
                          interface=interface, topic_id=topic_id, events=events)

    def test_empty_analysis(self):
        report = LogAnalyser().analyse([])
        assert report.session_count == 0
        assert report.events_per_session == 0.0

    def test_event_counts_and_rates(self):
        report = LogAnalyser().analyse([self._log(), self._log(topic_id="T2")])
        assert report.session_count == 2
        assert report.event_counts["play_click"] == 4
        assert report.queries_per_session == 1.0
        assert report.implicit_events_per_session == 2.0
        assert report.explicit_events_per_session == 1.0

    def test_indicator_reliability_with_qrels(self):
        qrels = Qrels({"T1": {"s1": 1}})
        report = LogAnalyser().analyse([self._log()], qrels=qrels)
        reliability = report.indicator_reliability["play_click"]
        assert reliability.firings == 2
        assert reliability.relevant_firings == 1
        assert reliability.precision == 0.5
        table = report.indicator_precision_table()
        assert table
        assert all(len(row) == 3 for row in table)

    def test_compare_interfaces_groups(self):
        analyser = LogAnalyser()
        grouped = analyser.compare_interfaces(
            [self._log("desktop"), self._log("itv", topic_id="T2")]
        )
        assert set(grouped) == {"desktop", "itv"}
        assert grouped["desktop"].session_count == 1
