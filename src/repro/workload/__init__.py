"""Deterministic multi-user workload generation and load driving.

The load-testing counterpart of :mod:`repro.simulation`: where the
simulator studies *retrieval quality* under simulated behaviour, this
package studies the *serving path* under concurrency — N simulated users
drawn from the population generator hammer a live
:class:`~repro.service.RetrievalService` from worker threads, and the
canonical event log (plus its digest) proves the run was deterministic and
nothing was lost or leaked across sessions.
"""

from repro.workload.continuous import (
    ContinuousMixResult,
    ContinuousMixSpec,
    run_continuous_mix,
)
from repro.workload.driver import LoadResult, ServiceLoadDriver
from repro.workload.generator import (
    FEEDBACK,
    SEARCH,
    UserWorkload,
    WorkloadStep,
    generate_workload,
)
from repro.workload.spec import WorkloadSpec

__all__ = [
    "FEEDBACK",
    "SEARCH",
    "ContinuousMixResult",
    "ContinuousMixSpec",
    "LoadResult",
    "ServiceLoadDriver",
    "UserWorkload",
    "WorkloadStep",
    "WorkloadSpec",
    "generate_workload",
    "run_continuous_mix",
]
