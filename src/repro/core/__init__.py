"""The adaptive video retrieval model: the paper's primary contribution.

.. deprecated::
    Wiring :class:`AdaptiveVideoRetrievalSystem` by hand is a legacy entry
    point.  New code should go through :class:`repro.service.RetrievalService`,
    which owns the engine, the component registries and multi-user session
    management; everything exported here remains available as the engine
    room beneath that facade.
"""

from repro.core.adaptation_kernel import (
    DenseScratch,
    SharedAdaptationState,
    profile_affinity_shared,
    rerank_and_demote,
)
from repro.core.adaptive import (
    AdaptiveSession,
    AdaptiveVideoRetrievalSystem,
    QueryIteration,
)
from repro.core.combination import (
    COMBINATION_STRATEGIES,
    CombinationConfig,
    EvidenceCombiner,
)
from repro.core.feedback_model import ImplicitFeedbackModel
from repro.core.ostensive import (
    DISCOUNT_PROFILES,
    OstensiveAccumulator,
    compare_profiles,
    exponential_discount,
    linear_discount,
    make_discount,
    reciprocal_discount,
    uniform_discount,
)
from repro.core.policies import (
    AdaptationPolicy,
    baseline_policy,
    combined_policy,
    explicit_policy,
    full_policy,
    implicit_only_policy,
    profile_only_policy,
    standard_policies,
)

__all__ = [
    "AdaptiveSession",
    "AdaptiveVideoRetrievalSystem",
    "QueryIteration",
    "DenseScratch",
    "SharedAdaptationState",
    "profile_affinity_shared",
    "rerank_and_demote",
    "COMBINATION_STRATEGIES",
    "CombinationConfig",
    "EvidenceCombiner",
    "ImplicitFeedbackModel",
    "DISCOUNT_PROFILES",
    "OstensiveAccumulator",
    "compare_profiles",
    "exponential_discount",
    "linear_discount",
    "make_discount",
    "reciprocal_discount",
    "uniform_discount",
    "AdaptationPolicy",
    "baseline_policy",
    "combined_policy",
    "explicit_policy",
    "full_policy",
    "implicit_only_policy",
    "profile_only_policy",
    "standard_policies",
]
