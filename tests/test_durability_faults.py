"""Fault injection against the durability tier.

The crash-consistency contract: whatever survives on disk, recovery
restores a **true prefix** of the write history — byte-identical (same
canonical digest) to the state an uninterrupted run held after that many
ops — or refuses loudly (:class:`RecoveryError`) when the snapshot chain
itself is damaged.  Injected faults: kill at every op boundary (directory
copied mid-run), torn final record, checksum corruption mid-segment,
orphaned delta files from an interrupted checkpoint, missing delta files,
broken manifest chains, and a deleted snapshot chain.

All tests carry the ``durability`` marker (``pytest -m durability``).
"""

from __future__ import annotations

import shutil

import pytest

from repro.durability import RecoveryError, RecoveryManager, engine_state_digest
from repro.durability.snapshots import _write_json_atomic
from repro.durability.wal import WalSegment, segment_filename
from repro.service import RetrievalService, ServiceConfig
from repro.workload.ingest import (
    apply_ingest,
    service_feature_dim,
    synthetic_ingest_ops,
)

pytestmark = pytest.mark.durability

SEED = 13


def _durable_config(directory, num_shards=1, interval=10_000) -> ServiceConfig:
    return ServiceConfig(
        num_shards=num_shards,
        durability_dir=str(directory),
        snapshot_interval_ops=interval,
        fsync_policy="never",
        result_cache_size=0,
    )


def _ops(service, count):
    return synthetic_ingest_ops(
        count, seed=SEED, feature_dim=service_feature_dim(service)
    )


def _prefix_digests(corpus, count, num_shards=1):
    """Digest of an uninterrupted in-memory run after each op: index 0 is
    the corpus-only state, index k the state after ops[:k]."""
    service = RetrievalService(
        corpus.collection,
        config=ServiceConfig(num_shards=num_shards, result_cache_size=0),
    )
    digests = [engine_state_digest(service.engine)]
    for op in _ops(service, count):
        apply_ingest(service, [op])
        digests.append(engine_state_digest(service.engine))
    service.close()
    return digests


class TestKillAnywhere:
    @pytest.mark.parametrize("num_shards", (1, 4))
    def test_recovery_at_every_op_boundary(
        self, analysed_corpus, tmp_path, num_shards
    ):
        # Simulate a kill after every single op by copying the durability
        # directory as the run progresses; interval 4 makes the sweep
        # cross two live compactions.  Every copy must recover to the
        # reference prefix digest for its op count.
        count = 12
        references = _prefix_digests(analysed_corpus, count, num_shards)
        live = tmp_path / "live"
        service = RetrievalService(
            analysed_corpus.collection,
            config=_durable_config(live, num_shards, interval=4),
        )
        copies = [tmp_path / "kill-000"]
        shutil.copytree(live, copies[0])
        for index, op in enumerate(_ops(service, count), start=1):
            apply_ingest(service, [op])
            copy = tmp_path / f"kill-{index:03d}"
            shutil.copytree(live, copy)
            copies.append(copy)
        service.close()

        for index, copy in enumerate(copies):
            state = RecoveryManager(copy).recover()
            assert state.ingested_ops == index, copy.name
            assert state.state_digest() == references[index], copy.name
            assert state.wal_dropped_records == 0, copy.name


class TestTornAndCorruptRecords:
    def test_torn_final_record_drops_exactly_the_last_op(
        self, analysed_corpus, tmp_path
    ):
        count = 8
        references = _prefix_digests(analysed_corpus, count)
        directory = tmp_path / "d"
        service = RetrievalService(
            analysed_corpus.collection, config=_durable_config(directory)
        )
        apply_ingest(service, _ops(service, count))
        service.close()

        # Tear bytes off the single WAL segment's tail: the final record
        # no longer decodes, so the durable prefix is one op shorter.
        segment = directory / segment_filename(0)
        segment.write_bytes(segment.read_bytes()[:-3])
        state = RecoveryManager(directory).recover()
        assert state.tail_errors.keys() == {segment_filename(0)}
        assert state.ingested_ops == count - 1
        assert state.state_digest() == references[count - 1]

        # A service reopened over the torn directory repairs the WAL and
        # continues the stream from the recovered prefix.
        reopened = RetrievalService(
            analysed_corpus.collection, config=_durable_config(directory)
        )
        assert engine_state_digest(reopened.engine) == references[count - 1]
        reopened.close()
        repaired, tail_errors = WalSegment(segment).scan()
        assert tail_errors is None
        assert len(repaired) == count - 1

    def test_corruption_cascades_across_segments(self, analysed_corpus, tmp_path):
        # num_shards=2: flip a byte inside the FIRST record of shard 0's
        # segment.  Its whole segment prefix dies at the corruption, and
        # the gap-free rule must then also drop every *intact* record with
        # a higher LSN on the other segments.
        count = 12
        references = _prefix_digests(analysed_corpus, count, num_shards=2)
        directory = tmp_path / "d"
        service = RetrievalService(
            analysed_corpus.collection,
            config=_durable_config(directory, num_shards=2),
        )
        apply_ingest(service, _ops(service, count))
        service.close()

        victim = directory / segment_filename(0)
        victim_records, _ = WalSegment(victim).scan()
        assert victim_records, "ingest stream left shard 0's segment empty"
        first_lsn = int(victim_records[0]["lsn"])
        assert first_lsn < count  # records with higher LSNs exist elsewhere
        raw = bytearray(victim.read_bytes())
        raw[8] ^= 0x40  # inside the first record's payload
        victim.write_bytes(bytes(raw))

        state = RecoveryManager(directory).recover()
        assert state.applied_lsn == first_lsn - 1
        assert state.ingested_ops == first_lsn - 1
        assert state.state_digest() == references[first_lsn - 1]
        assert state.wal_dropped_records > 0
        assert segment_filename(0) in state.tail_errors


class TestSnapshotChainDamage:
    def _durable_run(self, corpus, directory, count=8, interval=3):
        service = RetrievalService(
            corpus.collection, config=_durable_config(directory, interval=interval)
        )
        apply_ingest(service, _ops(service, count))
        digest = engine_state_digest(service.engine)
        service.close()
        return digest

    def test_orphan_delta_from_interrupted_checkpoint_is_inert(
        self, analysed_corpus, tmp_path
    ):
        # A crash between delta write and manifest rename leaves delta
        # files no manifest names.  They must not affect recovery.
        directory = tmp_path / "d"
        digest = self._durable_run(analysed_corpus, directory)
        _write_json_atomic(
            directory / "delta-cp000099-shard0000.json",
            {"documents": [[0, "ghost-doc", {"ghost": 1}]], "shots": []},
        )
        state = RecoveryManager(directory).recover()
        assert state.state_digest() == digest

    def test_missing_delta_is_refused(self, analysed_corpus, tmp_path):
        directory = tmp_path / "d"
        self._durable_run(analysed_corpus, directory)
        deltas = sorted(directory.glob("delta-*.json"))
        assert deltas, "expected incremental deltas on disk"
        deltas[0].unlink()
        with pytest.raises(RecoveryError, match="missing|not dense"):
            RecoveryManager(directory).recover()

    def test_broken_manifest_chain_is_refused(self, analysed_corpus, tmp_path):
        # Deleting an intermediate manifest severs the parent chain even
        # though the tip manifest is intact.
        directory = tmp_path / "d"
        self._durable_run(analysed_corpus, directory, count=8, interval=3)
        manifests = sorted(directory.glob("checkpoint-*.json"))
        assert len(manifests) >= 3  # bootstrap + at least two increments
        manifests[1].unlink()
        with pytest.raises(RecoveryError, match="missing"):
            RecoveryManager(directory).recover()

    def test_deleted_snapshot_chain_is_refused(self, analysed_corpus, tmp_path):
        # With the whole chain gone, the WAL tail begins past lsn 1 —
        # recovery must refuse rather than hand back a silently truncated
        # state that pretends the compacted history never happened.
        directory = tmp_path / "d"
        self._durable_run(analysed_corpus, directory, count=6, interval=4)
        for path in list(directory.glob("checkpoint-*.json")) + list(
            directory.glob("delta-*.json")
        ):
            path.unlink()
        with pytest.raises(RecoveryError, match="snapshot chain is missing"):
            RecoveryManager(directory).recover()
