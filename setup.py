"""Setup shim for environments whose setuptools cannot build PEP 660 editable wheels."""

from setuptools import setup

setup()
