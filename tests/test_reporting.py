"""Tests for report rendering (markdown tables, CSVs, study reports)."""

from __future__ import annotations

import csv

import pytest

from repro.core import baseline_policy, implicit_only_policy
from repro.evaluation import (
    ExperimentCondition,
    ExperimentRunner,
    LogAnalyser,
    condition_summary_rows,
    indicator_rows,
    markdown_table,
    per_session_rows,
    write_csv,
    write_study_report,
)
from repro.simulation import shot_durations_from_collection


@pytest.fixture(scope="module")
def small_results(medium_corpus):
    runner = ExperimentRunner(medium_corpus)
    conditions = [
        ExperimentCondition(name="baseline", policy=baseline_policy(),
                            user_count=2, topics_per_user=1, seed=61),
        ExperimentCondition(name="implicit", policy=implicit_only_policy(),
                            user_count=2, topics_per_user=1, seed=61),
    ]
    return runner.run_conditions(conditions)


class TestMarkdownTable:
    def test_empty(self):
        assert markdown_table([]) == "(no rows)\n"

    def test_formats_floats_and_strings(self):
        table = markdown_table([{"name": "a", "value": 0.123456}])
        assert "| name | value |" in table
        assert "| a | 0.1235 |" in table

    def test_explicit_columns(self):
        table = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]


class TestSummaryRows:
    def test_rows_cover_all_conditions(self, small_results):
        rows = condition_summary_rows(small_results)
        assert {row["condition"] for row in rows} == {"baseline", "implicit"}
        assert all("map" in row for row in rows)

    def test_baseline_gain_column(self, small_results):
        rows = condition_summary_rows(small_results, baseline="baseline")
        baseline_row = next(row for row in rows if row["condition"] == "baseline")
        assert baseline_row["map_gain_%"] == pytest.approx(0.0)

    def test_unknown_baseline_rejected(self, small_results):
        with pytest.raises(KeyError):
            condition_summary_rows(small_results, baseline="nonexistent")

    def test_per_session_rows(self, small_results):
        rows = per_session_rows(small_results)
        assert len(rows) == sum(len(result.sessions) for result in small_results.values())
        assert all("average_precision" in row for row in rows)


class TestCsv:
    def test_write_and_read_back(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(rows, tmp_path / "out" / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert restored == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_empty_rows(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestStudyReport:
    def test_full_report_written(self, tmp_path, small_results, medium_corpus):
        analyser = LogAnalyser(
            shot_durations=shot_durations_from_collection(medium_corpus.collection)
        )
        logs = small_results["implicit"].session_logs()
        log_report = analyser.analyse(logs, qrels=medium_corpus.qrels)

        report_path = write_study_report(
            small_results,
            tmp_path / "study",
            title="Test study",
            baseline="baseline",
            log_report=log_report,
        )
        text = report_path.read_text()
        assert "# Test study" in text
        assert "baseline" in text and "implicit" in text
        assert "Implicit indicator precision" in text
        assert (tmp_path / "study" / "conditions.csv").exists()
        assert (tmp_path / "study" / "sessions.csv").exists()
        assert (tmp_path / "study" / "indicators.csv").exists()
        assert indicator_rows(log_report)

    def test_report_without_logs(self, tmp_path, small_results):
        report_path = write_study_report(small_results, tmp_path / "study2")
        assert "Condition summary" in report_path.read_text()
        assert not (tmp_path / "study2" / "indicators.csv").exists()
