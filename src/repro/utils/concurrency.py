"""Concurrency primitives for the read-mostly serving path.

The service's hot path is overwhelmingly reads: many user sessions searching
one shared, rarely-mutated index.  :class:`ReadWriteLock` encodes that
discipline — any number of readers proceed together without blocking each
other, while a writer (corpus/index mutation) waits for in-flight readers to
drain and then runs exclusively.  Writers are preferred once waiting, so a
steady stream of searches cannot starve an index update.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Readers acquire the shared side (:meth:`read_locked`): they never block
    one another, only a live or waiting writer.  Writers acquire the
    exclusive side (:meth:`write_locked`): they wait for current readers to
    finish and block new readers from entering while waiting, so mutation
    latency is bounded by the longest in-flight read, not by the arrival
    rate of new reads.

    The read side is reentrant per thread: a thread already holding it may
    acquire it again (e.g. a service request holding the read side calls
    into ``engine.search``, which takes it as well) without deadlocking
    against a waiting writer.  The write side is not reentrant, and a
    thread must not acquire the write side while holding the read side.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._local = threading.local()

    def acquire_read(self) -> None:
        """Enter the shared (reader) side (reentrant per thread)."""
        depth = getattr(self._local, "read_depth", 0)
        if depth:
            self._local.read_depth = depth + 1
            return
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        self._local.read_depth = 1

    def release_read(self) -> None:
        """Leave the shared (reader) side."""
        depth = getattr(self._local, "read_depth", 0)
        if depth > 1:
            self._local.read_depth = depth - 1
            return
        self._local.read_depth = 0
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        """Enter the exclusive (writer) side."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave the exclusive (writer) side."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` scope holding the shared side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` scope holding the exclusive side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def active_readers(self) -> int:
        """Number of threads currently holding the shared side."""
        with self._condition:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        """Whether a thread currently holds the exclusive side."""
        with self._condition:
            return self._writer_active
