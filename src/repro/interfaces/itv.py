"""The interactive-TV (iTV) interface model.

"Using a remote control, viewers can interact directly when watching
television [...] It will be more complex to enter query terms, e.g. in using
the channel selection buttons. Hence, users will possibly avoid to enter key
words. On the other hand, the selection keys provide a method to give
explicit relevance feedback."

The iTV model therefore: shows fewer results at once, makes query entry very
expensive (so simulated users rarely reformulate), removes fine-grained
mouse-style actions (hover, metadata expansion, playlists), but makes
explicit rate-up/rate-down judgements cheap single key presses.
"""

from __future__ import annotations

from repro.feedback.events import EventKind
from repro.interfaces.base import ActionCost, InterfaceModel


class ItvInterface(InterfaceModel):
    """Remote-control interactive-TV interface."""

    name = "itv"

    def __init__(self, results_per_page: int = 4) -> None:
        supported = frozenset(
            {
                EventKind.QUERY_SUBMITTED,
                EventKind.RESULTS_DISPLAYED,
                EventKind.REMOTE_SELECT,
                EventKind.PLAY_PROGRESS,
                EventKind.PLAY_COMPLETE,
                EventKind.BROWSE_RESULTS,
                EventKind.REMOTE_CHANNEL_SKIP,
                EventKind.REMOTE_RATE_UP,
                EventKind.REMOTE_RATE_DOWN,
            }
        )
        costs = {
            # Entering a query with channel-selection buttons is painful.
            EventKind.QUERY_SUBMITTED: ActionCost(time_seconds=45.0, effort=0.9),
            EventKind.RESULTS_DISPLAYED: ActionCost(time_seconds=1.0, effort=0.0),
            EventKind.REMOTE_SELECT: ActionCost(time_seconds=2.0, effort=0.1),
            EventKind.PLAY_PROGRESS: ActionCost(time_seconds=0.0, effort=0.0),
            EventKind.PLAY_COMPLETE: ActionCost(time_seconds=0.0, effort=0.0),
            EventKind.BROWSE_RESULTS: ActionCost(time_seconds=3.0, effort=0.15),
            EventKind.REMOTE_CHANNEL_SKIP: ActionCost(time_seconds=1.0, effort=0.05),
            # Single-button ratings are cheap on the remote control.
            EventKind.REMOTE_RATE_UP: ActionCost(time_seconds=1.0, effort=0.1),
            EventKind.REMOTE_RATE_DOWN: ActionCost(time_seconds=1.0, effort=0.1),
        }
        super().__init__(
            results_per_page=results_per_page,
            supported_actions=supported,
            action_costs=costs,
            query_entry_supported=False,
            description=(
                "Remote-control interactive TV interface: story carousel, "
                "select/skip keys and single-button relevance ratings; query "
                "entry is possible but costly."
            ),
        )
