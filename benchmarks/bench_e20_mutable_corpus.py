"""E20 — Mutable corpus: delete/update throughput, compaction, continuous mix.

Three questions, with the delete-vs-rebuild differential as the
correctness oracle before anything is timed:

* **Mutation path cost** — ops/s of tombstoning deletes and slot-moving
  updates over a pre-ingested corpus, against plain ingest on the same
  service.  Deletes scrub postings eagerly (bisect + column delete per
  term), so they are expected to cost the same order as an ingest, not a
  rebuild.

* **Compaction** — slots/s at which ``compact_engine`` re-interns the
  survivors of a heavily-tombstoned corpus, after asserting the state
  digest (hole-insensitive) is unchanged and rankings match a
  from-scratch rebuild over the survivors bit for bit.

* **Continuous mix** — records/s of the interleaved
  ingest/delete/update/search/feedback/compaction workload
  (:func:`repro.workload.run_continuous_mix`), after asserting the
  canonical op log is byte-identical across 1 and 4 search workers.

``BENCH_e20.json`` next to this file records baselines plus the
``smoke_baseline`` section guarded by ``check_bench_regression.py``
(guarded metrics: ``delete_ops_per_s``, ``compact_slots_per_s``,
``mix_records_per_s`` — host-stable higher-is-better rates; the
update/ingest rows are recorded for trajectory, never guarded).  Run with
``--write-baseline`` to refresh, ``--smoke`` for the CI sanity check.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:
    from _common import print_table
except ImportError:  # script mode: python benchmarks/bench_e20_mutable_corpus.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import print_table

from repro.durability import engine_state_digest
from repro.retrieval import Query
from repro.service import RetrievalService, ServiceConfig
from repro.workload import ContinuousMixSpec, run_continuous_mix
from repro.workload.ingest import (
    apply_ingest,
    service_feature_dim,
    synthetic_ingest_ops,
)

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_e20.json"

INGEST_SEED = 2008

def _queries(corpus, count=3):
    """Queries drawn from the corpus's own transcripts (non-empty hits) plus
    the synthetic ingest vocabulary (hits while ingested content is live)."""
    queries = ["election protest flood summit"]
    for shot in corpus.collection.iter_shots():
        words = [w for w in shot.transcript.lower().split() if len(w) > 3]
        if len(words) >= 2:
            queries.append(" ".join(words[:3]))
        if len(queries) == count + 1:
            break
    return queries


def _service(corpus):
    return RetrievalService(
        corpus.collection, config=ServiceConfig(result_cache_size=0)
    )


def _ops(service, count):
    return synthetic_ingest_ops(
        count, seed=INGEST_SEED, feature_dim=service_feature_dim(service)
    )


def _assert_same_rankings(reference, candidate, queries):
    compared = 0
    for text in queries:
        expected = reference.engine.search(Query(text=text), limit=None)
        actual = candidate.engine.search(Query(text=text), limit=None)
        assert expected.shot_ids() == actual.shot_ids(), text
        assert [item.score for item in expected.items] == [
            item.score for item in actual.items
        ], text
        compared += len(expected.items)
    assert compared > 0, "differential compared no hits"


def _mutation_rows(corpus, count):
    """Ingest / delete / update throughput on the same op stream."""
    queries = _queries(corpus)
    service = _service(corpus)
    ops = _ops(service, count)
    start = time.perf_counter()
    apply_ingest(service, ops)
    ingest_elapsed = time.perf_counter() - start

    doc_ids = [op[1] for op in ops if op[0] == "doc"]
    start = time.perf_counter()
    for document_id in doc_ids:
        service.update_document(document_id, f"rewrite summit verdict {document_id}")
    update_elapsed = time.perf_counter() - start

    shot_ids = [op[1] for op in ops if op[0] == "shot"]
    start = time.perf_counter()
    for document_id in doc_ids:
        service.delete_document(document_id)
    for shot_id in shot_ids:
        service.delete_shot(shot_id)
    delete_elapsed = time.perf_counter() - start
    deletes = len(doc_ids) + len(shot_ids)

    # Correctness oracle: with every ingested item deleted again, the
    # service must rank exactly like one that never saw the stream.
    pristine = _service(corpus)
    _assert_same_rankings(pristine, service, queries)
    assert service.compact().reclaimed == deletes + len(doc_ids)
    _assert_same_rankings(pristine, service, queries)
    assert engine_state_digest(service.engine) == engine_state_digest(
        pristine.engine
    )
    pristine.close()
    service.close()
    return [
        {
            "row": "ingest",
            "ops": count,
            "seconds": ingest_elapsed,
            "ops_per_s": count / ingest_elapsed if ingest_elapsed else 0.0,
        },
        {
            "row": "update",
            "ops": len(doc_ids),
            "seconds": update_elapsed,
            "ops_per_s": len(doc_ids) / update_elapsed if update_elapsed else 0.0,
        },
        {
            "row": "delete",
            "ops": deletes,
            "seconds": delete_elapsed,
            "ops_per_s": deletes / delete_elapsed if delete_elapsed else 0.0,
        },
    ]


def _compaction_row(corpus, count):
    """Compaction throughput with half the ingested stream tombstoned."""
    queries = _queries(corpus)
    service = _service(corpus)
    ops = _ops(service, count)
    apply_ingest(service, ops)
    victims = [op[1] for op in ops[::2]]
    for op in ops[::2]:
        if op[0] == "doc":
            service.delete_document(op[1])
        else:
            service.delete_shot(op[1])
    before = engine_state_digest(service.engine)

    survivors = _service(corpus)
    for op in ops:
        if op[1] in victims:
            continue
        if op[0] == "doc":
            survivors.index_documents({op[1]: op[2]})
        else:
            survivors.index_shot(op[1], op[2], op[3])

    start = time.perf_counter()
    stats = service.compact()
    elapsed = time.perf_counter() - start
    assert stats.reclaimed == len(victims)
    assert engine_state_digest(service.engine) == before
    _assert_same_rankings(survivors, service, queries)
    assert engine_state_digest(service.engine) == engine_state_digest(
        survivors.engine
    )
    live = (
        service.engine.inverted_index.document_count
        + service.engine.visual_index.shot_count
    )
    survivors.close()
    service.close()
    return {
        "row": "compact",
        "tombstones": len(victims),
        "live_slots": live,
        "seconds": elapsed,
        "slots_per_s": (len(victims) + live) / elapsed if elapsed else 0.0,
    }


def _mix_row(corpus, epochs, mutations):
    """Continuous-mix throughput; log pinned across worker counts first."""
    logs = []
    results = []
    for workers in (1, 4):
        service = _service(corpus)
        spec = ContinuousMixSpec(
            epochs=epochs,
            mutations_per_epoch=mutations,
            searches_per_epoch=6,
            compact_every=2,
            search_workers=workers,
            seed=INGEST_SEED,
        )
        result = run_continuous_mix(service, spec)
        service.close()
        logs.append(result.canonical_log())
        results.append(result)
    assert logs[0] == logs[1], "mix log depends on search worker count"
    result = results[-1]
    records = len(result.records)
    return {
        "row": "mix",
        "records": records,
        "seconds": result.wall_seconds,
        "records_per_s": (
            records / result.wall_seconds if result.wall_seconds else 0.0
        ),
        "reclaimed": result.counts["reclaimed"],
    }


def _sanity_check(mutation_rows, compaction_row, mix_row):
    for row in mutation_rows:
        assert row["ops_per_s"] > 0, f"{row['row']}: no throughput measured"
    assert compaction_row["slots_per_s"] > 0
    assert mix_row["records_per_s"] > 0
    assert mix_row["reclaimed"] > 0, "mix never reclaimed a tombstone"


def run_experiment(bench_corpus, count=256, epochs=4, mutations=12):
    mutation_rows = _mutation_rows(bench_corpus, count)
    compaction_row = _compaction_row(bench_corpus, count)
    mix_row = _mix_row(bench_corpus, epochs, mutations)
    return mutation_rows, compaction_row, mix_row


def test_e20_mutable_corpus(benchmark, bench_corpus):
    mutation_rows, compaction_row, mix_row = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("E20a: mutation write path (differential-verified)", mutation_rows)
    print_table("E20b: compaction reclaim", [compaction_row])
    print_table("E20c: continuous-ingest mix", [mix_row])
    _sanity_check(mutation_rows, compaction_row, mix_row)


def _main(argv):
    smoke = "--smoke" in argv
    write_baseline = "--write-baseline" in argv
    from repro.collection import CollectionConfig, generate_corpus

    if smoke:
        corpus = generate_corpus(
            seed=7,
            config=CollectionConfig(days=4, stories_per_day=5, topic_count=6),
        )
        count, epochs, mutations = 128, 3, 8
    else:
        corpus = generate_corpus(
            seed=2008,
            config=CollectionConfig(
                days=24, stories_per_day=9, topic_count=16, min_stories_per_topic=3
            ),
        )
        count, epochs, mutations = 512, 6, 16
    mutation_rows, compaction_row, mix_row = run_experiment(
        corpus, count=count, epochs=epochs, mutations=mutations
    )
    print_table("E20a: mutation write path (differential-verified)", mutation_rows)
    print_table("E20b: compaction reclaim", [compaction_row])
    print_table("E20c: continuous-ingest mix", [mix_row])
    _sanity_check(mutation_rows, compaction_row, mix_row)
    if write_baseline:
        # The guarded smoke_baseline section is refreshed through
        # check_bench_regression.py --update, not here.
        smoke_baseline = None
        if BASELINE_PATH.exists():
            smoke_baseline = json.loads(BASELINE_PATH.read_text()).get(
                "smoke_baseline"
            )
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    **({"smoke_baseline": smoke_baseline} if smoke_baseline else {}),
                    "corpus": "smoke" if smoke else "bench standard (seed 2008)",
                    "ops": count,
                    "note": (
                        "Every row asserts the mutable-corpus differential "
                        "before reporting numbers: rankings after "
                        "delete/update/compact are bit-identical to a "
                        "from-scratch rebuild over the survivors, and the "
                        "canonical mix log is byte-identical across search "
                        "worker counts."
                    ),
                    "mutation": mutation_rows,
                    "compaction": compaction_row,
                    "mix": mix_row,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    print(
        "e20 ok: delete/update/compact rankings differential-verified; "
        "continuous mix deterministic across worker counts"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
