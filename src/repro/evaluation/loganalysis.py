"""Log-file analysis.

"Within this study, we aim to [...] analyse the resulting user interaction
logfiles. This analysis should help to understand how users interacted with
this application."  The analyser aggregates a corpus of session logs into
the statistics the paper's proposed study would report: action frequencies,
per-interface comparisons, per-indicator relevance precision, and session-
level summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.collection.qrels import Qrels
from repro.feedback.events import EventKind
from repro.feedback.indicators import INDICATOR_NAMES, IndicatorExtractor
from repro.feedback.weighting import NEGATIVE_INDICATORS
from repro.interfaces.logging import SessionLog


@dataclass
class IndicatorReliability:
    """How reliably one indicator points at relevant shots."""

    indicator: str
    firings: int
    relevant_firings: int

    @property
    def precision(self) -> float:
        """Fraction of firings that landed on a relevant shot."""
        if self.firings == 0:
            return 0.0
        return self.relevant_firings / self.firings


@dataclass
class LogAnalysisReport:
    """Aggregated statistics over a corpus of session logs."""

    session_count: int
    event_counts: Dict[str, int]
    events_per_session: float
    implicit_events_per_session: float
    explicit_events_per_session: float
    queries_per_session: float
    mean_session_duration: float
    indicator_reliability: Dict[str, IndicatorReliability] = field(default_factory=dict)

    def indicator_precision_table(self) -> List[Tuple[str, float, int]]:
        """``(indicator, precision, firings)`` rows sorted by precision."""
        rows = [
            (name, reliability.precision, reliability.firings)
            for name, reliability in self.indicator_reliability.items()
            if reliability.firings > 0
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows


class LogAnalyser:
    """Aggregates session logs into a :class:`LogAnalysisReport`."""

    def __init__(
        self,
        extractor: Optional[IndicatorExtractor] = None,
        shot_durations: Optional[Mapping[str, float]] = None,
    ) -> None:
        self._extractor = extractor or IndicatorExtractor()
        self._shot_durations = dict(shot_durations or {})

    def analyse(
        self, logs: Sequence[SessionLog], qrels: Optional[Qrels] = None
    ) -> LogAnalysisReport:
        """Analyse a corpus of logs; qrels enable indicator-reliability stats."""
        if not logs:
            return LogAnalysisReport(
                session_count=0,
                event_counts={},
                events_per_session=0.0,
                implicit_events_per_session=0.0,
                explicit_events_per_session=0.0,
                queries_per_session=0.0,
                mean_session_duration=0.0,
            )
        event_counts: Dict[str, int] = {}
        implicit_total = 0
        explicit_total = 0
        query_total = 0
        duration_total = 0.0
        reliability: Dict[str, IndicatorReliability] = {
            name: IndicatorReliability(indicator=name, firings=0, relevant_firings=0)
            for name in INDICATOR_NAMES
        }
        for log in logs:
            duration_total += log.duration_seconds()
            for event in log.events:
                event_counts[event.kind.value] = event_counts.get(event.kind.value, 0) + 1
                if event.is_implicit():
                    implicit_total += 1
                if event.is_explicit():
                    explicit_total += 1
                if event.kind is EventKind.QUERY_SUBMITTED:
                    query_total += 1
            if qrels is not None and log.topic_id:
                per_shot = self._extractor.per_shot_indicator_strengths(
                    log.events, self._shot_durations
                )
                for shot_id, strengths in per_shot.items():
                    relevant = qrels.is_relevant(log.topic_id, shot_id)
                    for indicator, strength in strengths.items():
                        if strength <= 0:
                            continue
                        entry = reliability.setdefault(
                            indicator,
                            IndicatorReliability(indicator=indicator, firings=0, relevant_firings=0),
                        )
                        entry.firings += 1
                        # Negative indicators are "reliable" when they fire on
                        # non-relevant material.
                        if indicator in NEGATIVE_INDICATORS:
                            if not relevant:
                                entry.relevant_firings += 1
                        elif relevant:
                            entry.relevant_firings += 1
        count = len(logs)
        return LogAnalysisReport(
            session_count=count,
            event_counts=event_counts,
            events_per_session=sum(event_counts.values()) / count,
            implicit_events_per_session=implicit_total / count,
            explicit_events_per_session=explicit_total / count,
            queries_per_session=query_total / count,
            mean_session_duration=duration_total / count,
            indicator_reliability=reliability,
        )

    def compare_interfaces(
        self, logs: Sequence[SessionLog], qrels: Optional[Qrels] = None
    ) -> Dict[str, LogAnalysisReport]:
        """Analyse logs grouped by interface name (the E5 comparison)."""
        grouped: Dict[str, List[SessionLog]] = {}
        for log in logs:
            grouped.setdefault(log.interface, []).append(log)
        return {
            interface: self.analyse(interface_logs, qrels=qrels)
            for interface, interface_logs in grouped.items()
        }
