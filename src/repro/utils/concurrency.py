"""Concurrency primitives for the read-mostly serving path.

The service's hot path is overwhelmingly reads: many user sessions searching
one shared, rarely-mutated index.  :class:`ReadWriteLock` encodes that
discipline — any number of readers proceed together without blocking each
other, while a writer (corpus/index mutation) waits for in-flight readers to
drain and then runs exclusively.  Writers are preferred once waiting, so a
steady stream of searches cannot starve an index update.

:class:`ScatterGather` is the fan-out side of the same serving story: a
partitioned operation (one sub-task per index shard) runs every sub-task on
a small persistent thread pool and collects the results back in sub-task
order, so callers see a deterministic gather regardless of completion
order.

:class:`CancellationToken` is the cooperative-cancellation primitive the
serving edge builds request deadlines on.  A token is observed at explicit
*checkpoints* (:meth:`CancellationToken.checkpoint`) placed on the search
path — between evidence sources in the engine, at every scatter-gather
dispatch and gather — so a request that exceeds its deadline stops at the
next checkpoint instead of running to completion.  Cancellation never
interrupts work mid-mutation: a checkpoint either passes (work continues
unchanged, results bit-identical to an uncancelled run) or raises
:class:`OperationCancelledError` before any externally visible state —
result caches, session iterations — has been touched.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, TypeVar

from repro.utils.validation import ensure_positive

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: How often a gather blocked on a straggler sub-task re-checks its
#: cancellation token.  Bounds the latency between a deadline firing and
#: the request returning to roughly this interval.
_CANCEL_POLL_SECONDS = 0.02


class OperationCancelledError(RuntimeError):
    """Raised at a cancellation checkpoint once the request's token fired.

    Deliberately *not* a subclass of ``concurrent.futures.CancelledError``
    or ``asyncio.CancelledError``: cancellation here is cooperative and
    raised on the worker thread doing the work, and it must propagate
    through ordinary ``except Exception`` cleanup layers predictably.
    """

    def __init__(self, reason: str = "operation cancelled") -> None:
        self.reason = reason
        super().__init__(reason)


class CancellationToken:
    """A thread-safe cancellation flag with an optional deadline.

    The token is *observed*, never enforced: work must call
    :meth:`checkpoint` (or check :attr:`cancelled`) at safe points.  A
    token fires either explicitly (:meth:`cancel`) or implicitly once its
    monotonic ``deadline`` passes — so worker threads notice an expired
    deadline on their own, even if the party that set the deadline never
    gets a chance to call :meth:`cancel`.

    ``clock`` is injectable for deterministic tests; it must be monotonic
    and is compared against ``deadline`` directly.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._event = threading.Event()
        self._deadline = deadline
        self._clock = clock
        self._reason = "operation cancelled"

    @property
    def deadline(self) -> Optional[float]:
        """The monotonic deadline, or ``None`` when only explicit."""
        return self._deadline

    @property
    def reason(self) -> str:
        """Why the token fired (meaningful once :attr:`cancelled`)."""
        return self._reason

    def cancel(self, reason: str = "operation cancelled") -> None:
        """Fire the token explicitly (idempotent; first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once the token fired or its deadline passed."""
        if self._event.is_set():
            return True
        if self._deadline is not None and self._clock() >= self._deadline:
            self._reason = "deadline exceeded"
            self._event.set()
            return True
        return False

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (never negative), or ``None``."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def checkpoint(self) -> None:
        """Raise :class:`OperationCancelledError` if the token fired."""
        if self.cancelled:
            raise OperationCancelledError(self._reason)


_CURRENT_TOKEN = threading.local()


def current_cancellation_token() -> Optional[CancellationToken]:
    """The calling thread's active cancellation token, if any."""
    return getattr(_CURRENT_TOKEN, "token", None)


@contextmanager
def cancellation_scope(token: Optional[CancellationToken]) -> Iterator[None]:
    """Install ``token`` as the calling thread's active token for the scope.

    Checkpoints on the search path (:func:`checkpoint_if_cancelled`,
    :meth:`ScatterGather.map`) pick the token up implicitly, so deadline
    enforcement needs no plumbing through the engine's call signatures.
    Scopes nest; the previous token is restored on exit.
    """
    previous = getattr(_CURRENT_TOKEN, "token", None)
    _CURRENT_TOKEN.token = token
    try:
        yield
    finally:
        _CURRENT_TOKEN.token = previous


def checkpoint_if_cancelled() -> None:
    """Checkpoint the calling thread's active token (no-op without one)."""
    token = getattr(_CURRENT_TOKEN, "token", None)
    if token is not None:
        token.checkpoint()


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Readers acquire the shared side (:meth:`read_locked`): they never block
    one another, only a live or waiting writer.  Writers acquire the
    exclusive side (:meth:`write_locked`): they wait for current readers to
    finish and block new readers from entering while waiting, so mutation
    latency is bounded by the longest in-flight read, not by the arrival
    rate of new reads.

    The read side is reentrant per thread: a thread already holding it may
    acquire it again (e.g. a service request holding the read side calls
    into ``engine.search``, which takes it as well) without deadlocking
    against a waiting writer.  The write side is not reentrant, and a
    thread must not acquire the write side while holding the read side.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._local = threading.local()

    def acquire_read(self) -> None:
        """Enter the shared (reader) side (reentrant per thread)."""
        depth = getattr(self._local, "read_depth", 0)
        if depth:
            self._local.read_depth = depth + 1
            return
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        self._local.read_depth = 1

    def release_read(self) -> None:
        """Leave the shared (reader) side."""
        depth = getattr(self._local, "read_depth", 0)
        if depth > 1:
            self._local.read_depth = depth - 1
            return
        self._local.read_depth = 0
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        """Enter the exclusive (writer) side."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave the exclusive (writer) side."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` scope holding the shared side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` scope holding the exclusive side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def active_readers(self) -> int:
        """Number of threads currently holding the shared side."""
        with self._condition:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        """Whether a thread currently holds the exclusive side."""
        with self._condition:
            return self._writer_active


class ScatterGather:
    """Scatter one callable over a list of items and gather results in order.

    Built for per-shard fan-out on the search path: the pool is created
    lazily and reused across calls (a search must not pay thread start-up
    costs), results come back in **item order** (never completion order, so
    merges are deterministic), and the first sub-task exception propagates
    to the caller unchanged.  With ``max_workers`` of 1 — or a single item —
    everything runs inline on the calling thread, which keeps the
    one-shard configuration free of any threading overhead.

    Worker threads never take engine locks (shard sub-tasks are pure reads
    over the shard's own structures), so scattering from inside the
    engine's shared read scope cannot deadlock against a waiting writer.
    """

    def __init__(self, max_workers: int, thread_name_prefix: str = "scatter") -> None:
        ensure_positive(max_workers, "max_workers")
        self._max_workers = max_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool: "ThreadPoolExecutor | None" = None
        self._closed = False
        self._pool_lock = threading.Lock()
        # Maps currently scattering on the pool.  close() racing a map must
        # never shut the pool down underneath it (ThreadPoolExecutor raises
        # "cannot schedule new futures after shutdown"); the shutdown is
        # deferred to whichever party — close() or the last in-flight map —
        # observes the pool unused last.
        self._inflight = 0

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrent sub-tasks."""
        return self._max_workers

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (maps then run inline)."""
        with self._pool_lock:
            return self._closed

    def _acquire_pool(self) -> "ThreadPoolExecutor | None":
        """The pool to scatter on, or ``None`` to run inline.

        Checked and (lazily) created under the lock so a ``map`` racing
        :meth:`close` can never resurrect a pool after shutdown — once
        closed, every map runs inline, permanently.  A returned pool is
        pinned (in-flight count) until the matching :meth:`_release_pool`,
        so a concurrent close cannot hand this map a dead pool.
        """
        with self._pool_lock:
            if self._closed or self._max_workers <= 1:
                return None
            pool = self._pool
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=self._thread_name_prefix,
                )
                self._pool = pool
            self._inflight += 1
            return pool

    def _release_pool(self) -> None:
        """Unpin the pool; run the shutdown a concurrent close deferred."""
        with self._pool_lock:
            self._inflight -= 1
            pool = None
            if self._closed and self._inflight == 0:
                pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map(
        self,
        task: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        cancel_token: Optional[CancellationToken] = None,
    ) -> List[ResultT]:
        """``[task(item) for item in items]``, fanned out over the pool.

        Results are returned in item order; the first failing sub-task's
        exception is re-raised (remaining sub-tasks still run to completion
        on the pool, but their results are discarded).  Safe against a
        concurrent :meth:`close`: a map that already holds the pool finishes
        on it, later maps run inline.

        Cancellation checkpoints: with a ``cancel_token`` (explicit, or the
        calling thread's :func:`current_cancellation_token`), the scatter
        checkpoints before dispatch, every pooled sub-task checkpoints on
        entry — so sub-tasks of a request that already timed out exit
        immediately instead of consuming executor slots — and the gather
        polls the token while waiting on a straggler, raising
        :class:`OperationCancelledError` within ``_CANCEL_POLL_SECONDS`` of
        the token firing (abandoned sub-tasks finish on the pool; their
        results are discarded).  A map that completes without the token
        firing returns exactly what an uncancelled map would.
        """
        items = list(items)
        token = cancel_token if cancel_token is not None else current_cancellation_token()
        if token is not None:
            token.checkpoint()
        pool = self._acquire_pool() if len(items) > 1 else None
        if pool is None:
            if token is None:
                return [task(item) for item in items]
            results: List[ResultT] = []
            for item in items:
                token.checkpoint()
                results.append(task(item))
            return results
        try:
            if token is None:
                futures = [pool.submit(task, item) for item in items]
                return [future.result() for future in futures]

            def run(item: ItemT) -> ResultT:
                # Entry checkpoint: a queued sub-task whose request already
                # timed out frees its slot without doing shard work.  The
                # scope re-installs the token on the pool thread so nested
                # checkpoints inside the task observe it too.
                token.checkpoint()
                with cancellation_scope(token):
                    return task(item)

            futures = [pool.submit(run, item) for item in items]
            gathered: List[ResultT] = []
            for future in futures:
                while True:
                    try:
                        gathered.append(future.result(timeout=_CANCEL_POLL_SECONDS))
                        break
                    except FutureTimeoutError:
                        token.checkpoint()
            return gathered
        finally:
            self._release_pool()

    def close(self) -> None:
        """Shut the pool down (idempotent); subsequent maps run inline.

        Safe to call concurrently with :meth:`map` (and with other closes):
        in-flight maps complete on the pool, whose shutdown is deferred to
        the last of them; maps that arrive after this call run inline.
        """
        with self._pool_lock:
            self._closed = True
            pool = None
            if self._inflight == 0:
                pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
