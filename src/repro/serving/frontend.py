"""The async serving edge over :class:`~repro.service.RetrievalService`.

:class:`ServingFrontend` is the deployment boundary ROADMAP item 3 asks
for: an asyncio frontend that admits, schedules, deadline-bounds and
accounts requests against the (threaded, deterministic) service facade
underneath.  The request path is:

1. **Admission** (synchronous, cheap): draining check, per-tenant quota
   (token-bucket rate + fair-share in-flight cap), then the bounded queue
   depth.  Refusals raise a typed
   :class:`~repro.serving.errors.AdmissionRejectedError` subclass with a
   ``retry_after`` hint — backpressure is explicit, never an unbounded
   buffer.
2. **Queueing**: the admitted request waits for one of ``max_concurrency``
   slots on an :class:`asyncio.Semaphore`.  A deadline that fires while
   queued raises :class:`~repro.serving.errors.DeadlineExceededError`
   (stage ``"queued"``) without ever touching the engine.
3. **Evaluation**: the request runs on the frontend's thread pool with a
   :class:`~repro.utils.concurrency.CancellationToken` installed in
   thread-local scope.  The engine's search path and the scatter-gather
   fan-out carry cooperative checkpoints, so when a deadline fires
   mid-evaluation the worker unwinds at the next checkpoint and queued
   shard sub-tasks stop consuming executor slots — the client gets its
   timeout in ``O(deadline + poll)`` while the abandoned worker releases
   its slot within one checkpoint interval.
4. **Accounting**: per-endpoint latency quantiles (p50/p95/p99), queue
   wait, shard fan-out timings, cache hit rates and every
   admission/rejection outcome land in the
   :class:`~repro.serving.metrics.MetricsRegistry`
   (:meth:`ServingFrontend.metrics_snapshot`).

Determinism: the frontend never reorders, splits or merges the work a
request submits — each request maps to exactly one facade call on one
worker thread — so rankings for *completed* requests are bit-identical to
calling :class:`~repro.service.RetrievalService` directly.  The serving
tests and the E18 benchmark pin that with canonical digests.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, Optional, TypeVar

from repro.serving.config import ServingConfig
from repro.serving.errors import (
    DeadlineExceededError,
    DrainingError,
    QueueFullError,
    QuotaExceededError,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.quotas import TenantQuotaManager
from repro.utils.concurrency import CancellationToken, OperationCancelledError, cancellation_scope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service embeds us)
    from repro.service.service import RetrievalService
    from repro.service.types import FeedbackBatch, SearchRequest, SearchResponse, SessionInfo

T = TypeVar("T")

#: Fallback retry-after hint (seconds) before any latency has been observed.
_DEFAULT_RETRY_HINT = 0.05


class ServingFrontend:
    """Deadline-aware, admission-controlled async edge over one service.

    The frontend owns a worker pool of ``max_concurrency`` threads; the
    service underneath stays the single source of truth for sessions and
    rankings.  All coroutine methods must be awaited from one event loop
    at a time (the slot semaphore is loop-bound; an idle frontend rebinds
    automatically, so separate ``asyncio.run`` invocations work).
    """

    def __init__(
        self,
        service: "RetrievalService",
        config: Optional[ServingConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._service = service
        self._config = config or getattr(service.config, "serving", None) or ServingConfig()
        self._clock = clock
        self._metrics = MetricsRegistry()
        self._quotas = TenantQuotaManager(self._config, clock=clock)
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.max_concurrency, thread_name_prefix="serve"
        )
        self._state_lock = threading.Lock()
        self._waiting = 0  # admitted, not yet holding a slot
        self._running = 0  # holding a slot (includes abandoned stragglers)
        self._draining = False
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        # Shard fan-out timings flow straight from the engine's scatter
        # gather into the registry (no-op for unsharded engines).
        engine = service.engine
        if hasattr(engine, "set_fanout_observer"):
            engine.set_fanout_observer(self._metrics.observe_fanout)

    # -- accessors ----------------------------------------------------------------

    @property
    def service(self) -> "RetrievalService":
        """The facade this frontend serves."""
        return self._service

    @property
    def config(self) -> ServingConfig:
        """The serving limits in force."""
        return self._config

    @property
    def metrics(self) -> MetricsRegistry:
        """The live metrics registry."""
        return self._metrics

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` (or :meth:`close`) has been called."""
        return self._draining

    # -- endpoints ----------------------------------------------------------------

    async def search(
        self, request: "SearchRequest", deadline_seconds: Optional[float] = None
    ) -> "SearchResponse":
        """One adaptive search through the serving edge.

        ``deadline_seconds`` overrides the config default; ``None`` with no
        config default means the request may run indefinitely.
        """
        return await self._serve(
            "search",
            request.user_id,
            lambda: self._service.search(request),
            deadline_seconds,
        )

    async def submit_feedback(
        self, batch: "FeedbackBatch", deadline_seconds: Optional[float] = None
    ) -> "SessionInfo":
        """Route one feedback batch through the serving edge."""
        return await self._serve(
            "feedback",
            batch.user_id,
            lambda: self._service.submit_feedback(batch),
            deadline_seconds,
        )

    # -- request path -------------------------------------------------------------

    def _slots_for_loop(self) -> asyncio.Semaphore:
        """The slot semaphore, rebound if an *idle* frontend changed loops."""
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            with self._state_lock:
                busy = self._waiting + self._running
            if busy:
                raise RuntimeError(
                    "ServingFrontend is bound to a different event loop "
                    "with requests in flight"
                )
            self._loop = loop
            self._slots = asyncio.Semaphore(self._config.max_concurrency)
        assert self._slots is not None
        return self._slots

    def _retry_hint(self, endpoint: str, depth: int) -> float:
        """Crude retry-after estimate: queued work over service throughput."""
        track = self._metrics.snapshot()["endpoints"].get(endpoint)
        if track and track.get("count"):
            mean = float(track.get("mean", _DEFAULT_RETRY_HINT))
            return max(
                _DEFAULT_RETRY_HINT,
                (depth + 1) * mean / self._config.max_concurrency,
            )
        return _DEFAULT_RETRY_HINT

    def _admit(self, endpoint: str, tenant: str) -> None:
        """Admission control; on success the caller owes quota + queue slot."""
        if self._draining or self._closed:
            self._metrics.increment("rejected_draining")
            raise DrainingError(self._config.drain_grace_seconds)
        reason, retry_after = self._quotas.admit(tenant)
        if reason is not None:
            self._metrics.increment("rejected_quota")
            raise QuotaExceededError(
                tenant, reason, retry_after or self._retry_hint(endpoint, 0)
            )
        with self._state_lock:
            if self._waiting >= self._config.max_queue_depth:
                depth = self._waiting
            else:
                self._waiting += 1
                return
        self._quotas.release(tenant)
        self._metrics.increment("rejected_queue_full")
        raise QueueFullError(
            depth, self._config.max_queue_depth, self._retry_hint(endpoint, depth)
        )

    async def _serve(
        self,
        endpoint: str,
        tenant: str,
        fn: Callable[[], T],
        deadline_seconds: Optional[float],
    ) -> T:
        if deadline_seconds is None:
            deadline_seconds = self._config.default_deadline_seconds
        started = self._clock()
        slots = self._slots_for_loop()
        self._admit(endpoint, tenant)
        token = CancellationToken(
            deadline=(started + deadline_seconds) if deadline_seconds else None,
            clock=self._clock,
        )

        # -- queued: wait for one of the max_concurrency slots ------------------
        try:
            remaining = token.remaining()
            if remaining is None:
                await slots.acquire()
            elif remaining <= 0:
                raise asyncio.TimeoutError
            else:
                await asyncio.wait_for(slots.acquire(), remaining)
        except asyncio.TimeoutError:
            with self._state_lock:
                self._waiting -= 1
            self._quotas.release(tenant)
            self._metrics.increment("deadline_queued")
            raise DeadlineExceededError(
                deadline_seconds or 0.0, self._clock() - started, stage="queued"
            ) from None
        except BaseException:
            with self._state_lock:
                self._waiting -= 1
            self._quotas.release(tenant)
            raise

        with self._state_lock:
            self._waiting -= 1
            self._running += 1
        self._metrics.observe_queue_wait(self._clock() - started)
        self._metrics.increment("admitted")

        # -- running: evaluate on the worker pool under the token ---------------
        loop = asyncio.get_running_loop()

        def release_slot() -> None:
            with self._state_lock:
                self._running -= 1
            slots.release()

        def worker() -> T:
            # Quota and slot are paid back when the work *actually* ends —
            # success, failure or cooperative cancellation — never earlier,
            # so an abandoned straggler keeps its slot until it unwinds at
            # a checkpoint (which the cancelled token makes imminent).
            try:
                with cancellation_scope(token):
                    token.checkpoint()
                    return fn()
            finally:
                self._quotas.release(tenant)
                try:
                    loop.call_soon_threadsafe(release_slot)
                except RuntimeError:
                    # Loop already closed (e.g. asyncio.run returned while a
                    # straggler was still unwinding): the semaphore died
                    # with the loop, only the running gauge needs fixing.
                    with self._state_lock:
                        self._running -= 1

        future = loop.run_in_executor(self._executor, worker)
        # Abandoned stragglers must not warn "exception never retrieved".
        future.add_done_callback(
            lambda fut: None if fut.cancelled() else fut.exception()
        )

        try:
            remaining = token.remaining()
            if remaining is None:
                result = await asyncio.shield(future)
            else:
                result = await asyncio.wait_for(asyncio.shield(future), remaining)
        except asyncio.TimeoutError:
            token.cancel("deadline exceeded")
            self._metrics.increment("deadline_running")
            raise DeadlineExceededError(
                deadline_seconds or 0.0, self._clock() - started, stage="running"
            ) from None
        except OperationCancelledError as error:
            # The worker observed the token's deadline at a checkpoint
            # before our wait_for timer fired — same outcome, same type.
            self._metrics.increment("deadline_running")
            raise DeadlineExceededError(
                deadline_seconds or 0.0,
                self._clock() - started,
                stage="running",
                detail=f"cancelled at checkpoint: {error.reason}",
            ) from error
        except asyncio.CancelledError:
            token.cancel("caller cancelled")
            raise
        except Exception:
            self._metrics.increment("errors")
            raise

        self._metrics.increment("completed")
        self._metrics.observe_latency(endpoint, self._clock() - started, tenant=tenant)
        return result

    # -- metrics ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable snapshot of every serving metric.

        Includes instantaneous gauges (queue depth, in-flight, draining)
        sampled now, and the engine's result-cache hit statistics.
        """
        with self._state_lock:
            self._metrics.set_gauge("queue_depth", float(self._waiting))
            self._metrics.set_gauge("in_flight", float(self._running))
        self._metrics.set_gauge("draining", 1.0 if self._draining else 0.0)
        snapshot = self._metrics.snapshot()
        snapshot["result_cache"] = self._service.engine.result_cache_stats()
        return snapshot

    # -- lifecycle ----------------------------------------------------------------

    async def drain(self) -> bool:
        """Stop admitting and wait for in-flight requests to finish.

        Returns ``True`` when everything finished within the grace period,
        ``False`` if stragglers remained (they keep running; :meth:`close`
        still waits for their threads).
        """
        self._draining = True
        grace_deadline = self._clock() + self._config.drain_grace_seconds
        while True:
            with self._state_lock:
                busy = self._waiting + self._running
            if busy == 0:
                return True
            if self._clock() >= grace_deadline:
                return False
            await asyncio.sleep(0.005)

    def close(self) -> None:
        """Stop admitting, wait for worker threads, unhook observers.

        Idempotent; the underlying service stays open (it has its own
        ``close``).
        """
        self._draining = True
        if self._closed:
            return
        self._closed = True
        engine = self._service.engine
        if hasattr(engine, "set_fanout_observer"):
            engine.set_fanout_observer(None)
        self._executor.shutdown(wait=True)

    async def aclose(self) -> bool:
        """:meth:`drain` then :meth:`close`; returns the drain verdict."""
        drained = await self.drain()
        self.close()
        return drained

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
