"""Tests for the synthetic collection generator."""

from __future__ import annotations

import pytest

from repro.collection import (
    CollectionConfig,
    CollectionGenerator,
    generate_corpus,
)


class TestCollectionConfig:
    def test_defaults_valid(self):
        CollectionConfig()

    def test_invalid_shot_range(self):
        with pytest.raises(ValueError):
            CollectionConfig(shots_per_story_min=5, shots_per_story_max=3)

    def test_invalid_word_range(self):
        with pytest.raises(ValueError):
            CollectionConfig(words_per_shot_min=50, words_per_shot_max=10)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            CollectionConfig(topic_story_probability=1.5)

    def test_invalid_transcript_weights(self):
        with pytest.raises(ValueError):
            CollectionConfig(transcript_category_weight=0.8, transcript_topic_weight=0.4)

    def test_empty_categories(self):
        with pytest.raises(ValueError):
            CollectionConfig(categories=())

    def test_presets(self):
        assert CollectionConfig.small().days < CollectionConfig.standard().days


class TestGeneratedCorpus:
    def test_sizes_match_config(self, small_corpus):
        config = small_corpus.config
        collection = small_corpus.collection
        assert collection.video_count == config.days
        assert collection.story_count == config.days * config.stories_per_day
        assert len(small_corpus.topics) == config.topic_count

    def test_shot_counts_within_bounds(self, small_corpus):
        config = small_corpus.config
        for story in small_corpus.collection.stories():
            assert config.shots_per_story_min <= story.shot_count <= config.shots_per_story_max

    def test_every_topic_has_relevant_shots(self, small_corpus):
        for topic in small_corpus.topics:
            assert small_corpus.qrels.relevant_count(topic.topic_id) > 0

    def test_qrels_match_shot_annotations(self, small_corpus):
        for topic_id, shot_id, grade in small_corpus.qrels.items():
            shot = small_corpus.collection.shot(shot_id)
            assert shot.relevance_grade(topic_id) == grade

    def test_relevant_shots_belong_to_topic_category(self, small_corpus):
        for topic in small_corpus.topics:
            for shot_id in small_corpus.qrels.relevant_shots(topic.topic_id):
                assert small_corpus.collection.shot(shot_id).category == topic.category

    def test_shot_times_are_contiguous_per_video(self, small_corpus):
        for video in small_corpus.collection.videos():
            shots = small_corpus.collection.shots_of_video(video.video_id)
            for previous, current in zip(shots, shots[1:]):
                assert current.start_seconds == pytest.approx(previous.end_seconds)

    def test_video_duration_matches_shots(self, small_corpus):
        for video in small_corpus.collection.videos():
            shots = small_corpus.collection.shots_of_video(video.video_id)
            assert video.duration_seconds == pytest.approx(shots[-1].end_seconds)

    def test_every_shot_has_transcript_and_keyframe(self, small_corpus):
        for shot in small_corpus.collection.iter_shots():
            assert shot.transcript.strip()
            assert len(shot.keyframe.latent_signal) > 0
            assert shot.concepts

    def test_topic_ids_and_terms(self, small_corpus):
        for topic in small_corpus.topics:
            assert topic.topic_id.startswith("T")
            assert len(topic.query_terms) > 0
            assert topic.title

    def test_determinism(self):
        config = CollectionConfig.small()
        first = generate_corpus(seed=99, config=config)
        second = generate_corpus(seed=99, config=config)
        assert first.collection.shot_ids() == second.collection.shot_ids()
        first_shot = first.collection.shots()[10]
        second_shot = second.collection.shot(first_shot.shot_id)
        assert first_shot.transcript == second_shot.transcript
        assert first_shot.keyframe.latent_signal == second_shot.keyframe.latent_signal
        assert list(first.qrels.items()) == list(second.qrels.items())

    def test_different_seeds_differ(self):
        config = CollectionConfig.small()
        first = generate_corpus(seed=1, config=config)
        second = generate_corpus(seed=2, config=config)
        first_transcripts = [s.transcript for s in first.collection.shots()[:10]]
        second_transcripts = [s.transcript for s in second.collection.shots()[:10]]
        assert first_transcripts != second_transcripts

    def test_summary_keys(self, small_corpus):
        summary = small_corpus.summary()
        assert summary["topics"] == float(len(small_corpus.topics))
        assert summary["judged_pairs"] == float(len(small_corpus.qrels))
        assert summary["mean_relevant_per_topic"] > 0

    def test_generator_properties(self):
        generator = CollectionGenerator(seed=5)
        assert generator.seed == 5
        assert generator.config.days == CollectionConfig().days

    def test_centroids_exist_for_all_categories_and_topics(self, small_corpus):
        for category in small_corpus.config.categories:
            assert category in small_corpus.category_centroids
        for topic in small_corpus.topics:
            assert topic.topic_id in small_corpus.topic_centroids

    def test_on_topic_shots_cluster_near_topic_centroid(self, small_corpus):
        """Relevant shots' latent signals should be closer to their topic
        centroid than unrelated shots are (the property visual search relies on)."""
        import math

        def distance(a, b):
            return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))

        topic = small_corpus.topics.topics()[0]
        centroid = small_corpus.topic_centroids[topic.topic_id]
        relevant = small_corpus.qrels.relevant_shots(topic.topic_id)
        relevant_distances = [
            distance(small_corpus.collection.shot(shot_id).keyframe.latent_signal, centroid)
            for shot_id in relevant
        ]
        other_category = [
            shot for shot in small_corpus.collection.shots()
            if shot.category != topic.category
        ][: len(relevant_distances) or 1]
        other_distances = [
            distance(shot.keyframe.latent_signal, centroid) for shot in other_category
        ]
        assert sum(relevant_distances) / len(relevant_distances) < sum(other_distances) / len(
            other_distances
        )
