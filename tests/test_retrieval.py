"""Tests for the retrieval engine, queries, results, expansion and re-ranking."""

from __future__ import annotations

import pytest

from repro.index import InvertedIndex
from repro.retrieval import (
    EngineConfig,
    Query,
    ResultList,
    RocchioExpander,
    VideoRetrievalEngine,
    demote_seen_shots,
    extract_key_terms,
    merge_result_lists,
    rerank_with_scores,
    story_scores_from_shots,
)


class TestQuery:
    def test_is_empty(self):
        assert Query().is_empty()
        assert not Query(text="goal").is_empty()
        assert not Query(term_weights={"goal": 1.0}).is_empty()
        assert not Query(example_shot_ids=["s1"]).is_empty()
        assert not Query(concept_weights={"person": 1.0}).is_empty()

    def test_with_text_preserves_other_fields(self):
        query = Query(text="a", term_weights={"x": 1.0}, topic_id="T1")
        new = query.with_text("b")
        assert new.text == "b"
        assert new.term_weights == {"x": 1.0}
        assert new.topic_id == "T1"
        assert query.text == "a"

    def test_with_term_weights_copy(self):
        query = Query(text="a")
        new = query.with_term_weights({"y": 2.0})
        assert new.term_weights == {"y": 2.0}
        assert query.term_weights == {}

    def test_add_example_no_duplicates(self):
        query = Query()
        query.add_example("s1")
        query.add_example("s1")
        assert query.example_shot_ids == ["s1"]


class TestResultList:
    def test_from_scores_ranks_and_ties(self):
        results = ResultList.from_scores("q", {"b": 1.0, "a": 1.0, "c": 2.0})
        assert results.shot_ids() == ["c", "a", "b"]
        assert [item.rank for item in results] == [1, 2, 3]

    def test_from_scores_respects_limit(self):
        results = ResultList.from_scores("q", {str(i): float(i) for i in range(50)}, limit=10)
        assert len(results) == 10

    def test_metadata_filled_from_collection(self, small_corpus):
        shot = small_corpus.collection.shots()[0]
        results = ResultList.from_scores(
            "q", {shot.shot_id: 1.0}, collection=small_corpus.collection
        )
        item = results[0]
        assert item.story_id == shot.story_id
        assert item.category == shot.category
        assert item.headline

    def test_rank_of_and_contains(self):
        results = ResultList.from_scores("q", {"a": 2.0, "b": 1.0})
        assert results.rank_of("b") == 2
        assert results.rank_of("z") is None
        assert results.contains("a")

    def test_merge_result_lists_takes_best_score(self):
        first = ResultList.from_scores("q", {"a": 1.0, "b": 0.5})
        second = ResultList.from_scores("q", {"a": 0.2, "c": 0.9})
        merged = merge_result_lists([first, second], limit=10)
        assert merged.shot_ids()[0] == "a"
        assert set(merged.shot_ids()) == {"a", "b", "c"}


class TestEngine:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(scorer="bogus")
        with pytest.raises(ValueError):
            EngineConfig(text_weight=-1)
        with pytest.raises(ValueError):
            EngineConfig(result_limit=0)

    def test_empty_query_returns_empty_results(self, engine):
        assert len(engine.search(Query())) == 0

    def test_text_search_finds_relevant_material(self, small_corpus, engine):
        topic = small_corpus.topics.topics()[0]
        results = engine.search_text(" ".join(topic.query_terms), topic_id=topic.topic_id)
        assert len(results) > 0
        relevant = small_corpus.qrels.relevant_shots(topic.topic_id)
        top10 = results.shot_ids()[:10]
        assert sum(1 for shot_id in top10 if shot_id in relevant) >= 3

    def test_all_scorers_work(self, small_corpus):
        topic = small_corpus.topics.topics()[1]
        for scorer in ("bm25", "tfidf", "lm"):
            engine = VideoRetrievalEngine(
                small_corpus.collection, config=EngineConfig(scorer=scorer)
            )
            results = engine.search_text(" ".join(topic.query_terms))
            assert len(results) > 0

    def test_query_by_example_prefers_same_story_or_topic(self, small_corpus, engine):
        topic = small_corpus.topics.topics()[0]
        relevant = sorted(small_corpus.qrels.relevant_shots(topic.topic_id))
        probe = relevant[0]
        results = engine.more_like_this(probe, limit=10)
        assert probe not in results.shot_ids()
        hits = sum(1 for shot_id in results.shot_ids() if shot_id in relevant)
        assert hits >= 2

    def test_concept_query(self, analysed_corpus):
        corpus_engine = VideoRetrievalEngine(analysed_corpus.collection)
        results = corpus_engine.search(Query(concept_weights={"stadium": 1.0}))
        assert len(results) > 0
        top_categories = [
            analysed_corpus.collection.shot(item.shot_id).category
            for item in results.top(10)
        ]
        assert "sports" in top_categories

    def test_result_limit_respected(self, engine):
        results = engine.search(Query(text="the news"), limit=5)
        assert len(results) <= 5

    def test_expand_query_adds_terms(self, small_corpus, engine):
        topic = small_corpus.topics.topics()[0]
        relevant = sorted(small_corpus.qrels.relevant_shots(topic.topic_id))[:3]
        query = Query.from_text(topic.query_terms[0])
        expanded = engine.expand_query(query, relevant)
        assert len(expanded.term_weights) > 1

    def test_deterministic_search(self, small_corpus):
        topic = small_corpus.topics.topics()[0]
        engine_a = VideoRetrievalEngine(small_corpus.collection)
        engine_b = VideoRetrievalEngine(small_corpus.collection)
        first = engine_a.search_text(" ".join(topic.query_terms)).shot_ids()
        second = engine_b.search_text(" ".join(topic.query_terms)).shot_ids()
        assert first == second


class TestExpansion:
    def test_extract_key_terms_prefers_discriminative(self):
        index = InvertedIndex()
        index.add_documents(
            {
                "d1": "goal stadium football unique1 unique1",
                "d2": "goal stadium football unique1",
                "d3": "weather rain cloud",
                "d4": "politics debate vote",
                "d5": "goal crowd",
            }
        )
        terms = extract_key_terms(index, ["d1", "d2"], limit=3)
        assert "unique1" in terms
        assert max(terms.values()) == pytest.approx(1.0)

    def test_extract_key_terms_empty_for_unknown_documents(self, engine):
        assert extract_key_terms(engine.inverted_index, ["nope"]) == {}

    def test_extract_key_terms_weighted_documents(self):
        index = InvertedIndex()
        index.add_documents({"d1": "alpha alpha", "d2": "beta beta", "d3": "gamma"})
        terms = extract_key_terms(
            index, ["d1", "d2"], limit=2, document_weights={"d1": 5.0, "d2": 0.1}
        )
        assert terms["alpha"] > terms.get("beta", 0.0)

    def test_rocchio_moves_towards_relevant(self):
        index = InvertedIndex()
        index.add_documents(
            {
                "rel1": "goal stadium celebration",
                "rel2": "goal stadium crowd",
                "non1": "rain cloud forecast",
            }
        )
        expander = RocchioExpander(index)
        expanded = expander.expand(["football"], ["rel1", "rel2"], ["non1"])
        assert expanded.get("stadium", 0.0) > 0
        assert expanded.get("rain", 0.0) == 0.0  # negative weights are dropped
        assert "football" in expanded

    def test_rocchio_coefficients_validated(self):
        index = InvertedIndex()
        index.add_document("d1", "text")
        with pytest.raises(ValueError):
            RocchioExpander(index, alpha=-0.1)

    def test_rocchio_limits_expansion_terms(self):
        index = InvertedIndex()
        index.add_documents(
            {f"d{i}": " ".join(f"term{i}_{j}" for j in range(30)) for i in range(3)}
        )
        expander = RocchioExpander(index, expansion_terms=5)
        expanded = expander.expand(["query"], ["d0", "d1", "d2"])
        # original query term may remain plus at most 5 expansion terms
        assert len([t for t in expanded if t != "query"]) <= 5


class TestReranking:
    def test_rerank_with_scores_promotes_evidence(self, small_corpus):
        results = ResultList.from_scores(
            "q", {"a": 1.0, "b": 0.9, "c": 0.8}
        )
        reranked = rerank_with_scores(results, {"c": 5.0}, weight=0.9)
        assert reranked.shot_ids()[0] == "c"

    def test_rerank_weight_zero_preserves_order(self):
        results = ResultList.from_scores("q", {"a": 1.0, "b": 0.5})
        reranked = rerank_with_scores(results, {"b": 100.0}, weight=0.0)
        assert reranked.shot_ids() == ["a", "b"]

    def test_story_scores_aggregations(self, small_corpus):
        collection = small_corpus.collection
        story = collection.stories()[0]
        shot_ids = story.shot_ids[:2]
        shot_scores = {shot_ids[0]: 1.0, shot_ids[1]: 3.0}
        assert story_scores_from_shots(shot_scores, collection, "max")[story.story_id] == 3.0
        assert story_scores_from_shots(shot_scores, collection, "sum")[story.story_id] == 4.0
        assert story_scores_from_shots(shot_scores, collection, "mean")[story.story_id] == 2.0
        with pytest.raises(ValueError):
            story_scores_from_shots(shot_scores, collection, "median")

    def test_demote_seen_shots(self):
        results = ResultList.from_scores("q", {"a": 1.0, "b": 0.99, "c": 0.5})
        demoted = demote_seen_shots(results, ["a"], penalty=0.9)
        assert demoted.shot_ids()[0] == "b"
        with pytest.raises(ValueError):
            demote_seen_shots(results, ["a"], penalty=1.5)
