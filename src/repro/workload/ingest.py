"""Deterministic synthetic ingest: the write phase of a durable loadtest.

The crash-recovery harness needs a stream of index mutations that is a
pure function of ``(seed, op index)``: a run killed after *k* ops and
recovered must be byte-identical to a clean run told to ingest exactly
*k* ops.  The generators here use plain modular arithmetic — no RNG state
that could drift between processes or Python versions — so op *i* is the
same bytes everywhere, always.

Ops alternate between transcript documents and visual shots so both WAL
record kinds, both index substrates, and (under sharding) every shard's
segment see traffic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.validation import ensure_positive

#: Small closed vocabulary the synthetic transcripts draw from.
_VOCAB = (
    "election", "protest", "flood", "summit", "economy", "ceasefire",
    "wildfire", "transfer", "verdict", "launch", "strike", "harvest",
    "border", "vaccine", "tournament", "blackout",
)

_CONCEPTS = ("crowd", "flag", "water", "fire", "vehicle", "podium", "field", "night")

#: One ingest op: ``("doc", id, text)``, ``("shot", id, features, concepts)``,
#: or a mutable-corpus op — ``("del", id)``, ``("delshot", id)``,
#: ``("upd", id, text)``.
IngestOp = Tuple


def _mix(seed: int, *values: int) -> int:
    """A deterministic integer hash of ``(seed, *values)`` (no RNG state)."""
    h = (seed & 0xFFFFFFFF) ^ 0x9E3779B9
    for value in values:
        h = (h * 1_000_003 + value * 7919 + 0x7F4A7C15) & 0xFFFFFFFF
        h ^= h >> 13
    return h


def synthetic_ingest_ops(
    count: int, seed: int = 0, feature_dim: int = 16
) -> List[IngestOp]:
    """The first ``count`` ops of the seed's deterministic ingest stream."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    ensure_positive(feature_dim, "feature_dim")
    ops: List[IngestOp] = []
    for i in range(count):
        if i % 2 == 0:
            words = [
                _VOCAB[_mix(seed, i, position) % len(_VOCAB)]
                for position in range(6 + _mix(seed, i) % 6)
            ]
            ops.append(("doc", f"ingest-doc-{seed}-{i:06d}", " ".join(words)))
        else:
            features = [
                (_mix(seed, i, dim) % 1000) / 1000.0 for dim in range(feature_dim)
            ]
            concepts: Dict[str, float] = {
                _CONCEPTS[_mix(seed, i, 100 + slot) % len(_CONCEPTS)]: (
                    (_mix(seed, i, 200 + slot) % 900) + 100
                )
                / 1000.0
                for slot in range(2)
            }
            ops.append(("shot", f"ingest-shot-{seed}-{i:06d}", features, concepts))
    return ops


def service_feature_dim(service, default: int = 16) -> int:
    """The corpus's feature-vector dimensionality (for compatible ingest).

    Visual similarity scans require equal-length vectors, so ingested
    shots must match whatever the collection was analysed with.
    """
    visual_index = service.engine.visual_index
    shot_ids = visual_index.shot_ids()
    if not shot_ids:
        return default
    return len(visual_index.features_of(shot_ids[0]))


def apply_ingest(service, ops: Sequence[IngestOp], pause: float = 0.0) -> int:
    """Apply ingest ops to a live service, one writer scope per op.

    One-op-at-a-time is deliberate: each op is its own WAL append and
    checkpoint opportunity, which is what gives the crash harness its
    dense set of kill points.  ``pause`` (seconds between ops) stretches
    the window so an external SIGKILL lands mid-stream.  Returns the
    number of ops applied.
    """
    applied = 0
    for op in ops:
        kind = op[0]
        if kind == "doc":
            service.index_documents({op[1]: op[2]})
        elif kind == "shot":
            service.index_shot(op[1], op[2], op[3])
        elif kind == "del":
            service.delete_document(op[1])
        elif kind == "delshot":
            service.delete_shot(op[1])
        elif kind == "upd":
            service.update_document(op[1], op[2])
        else:
            raise ValueError(f"unknown ingest op kind {kind!r}")
        applied += 1
        if pause > 0.0:
            time.sleep(pause)
    return applied
