"""String-keyed component registries for the retrieval service.

The service selects its pluggable components — text scorers, adaptation
policies and indicator weighting schemes — *by name* from a
:class:`~repro.service.config.ServiceConfig`, so that every entry point
(CLI, examples, benchmarks, tests) shares one wiring path instead of
importing and assembling classes by hand.  Third parties extend the system
by registering a factory under a new name:

>>> from repro.service import register_policy
>>> from repro.core import combined_policy
>>> register_policy("combined_heavy",
...                 lambda: combined_policy().with_overrides(implicit_weight=0.6))

Unknown names raise :class:`UnknownComponentError`, which lists the
registered alternatives so configuration typos fail loudly and helpfully.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.policies import (
    AdaptationPolicy,
    baseline_policy,
    combined_policy,
    explicit_policy,
    full_policy,
    implicit_only_policy,
    profile_only_policy,
)
from repro.feedback.weighting import (
    WeightingScheme,
    binary_click_scheme,
    dwell_only_scheme,
    explicit_only_scheme,
    heuristic_scheme,
    uniform_scheme,
)
from repro.index.inverted_index import InvertedIndex
from repro.index.language_model import DirichletLanguageModelScorer
from repro.index.scoring import Bm25Scorer, TextScorer, TfIdfScorer


class UnknownComponentError(KeyError):
    """Raised when a config names a component that was never registered."""

    def __init__(self, kind: str, name: str, available: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = list(available)
        super().__init__(
            f"unknown {kind} {name!r}; registered {kind} names: "
            + (", ".join(sorted(available)) or "(none)")
        )

    def __str__(self) -> str:  # KeyError quotes its argument; keep the message readable
        return self.args[0]


class ComponentRegistry:
    """A named mapping from string keys to component factories."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._factories: Dict[str, Callable] = {}

    @property
    def kind(self) -> str:
        """What kind of component this registry holds (for error messages)."""
        return self._kind

    def register(self, name: str, factory: Callable, *, overwrite: bool = False) -> None:
        """Register a factory under a name.

        Re-registering an existing name requires ``overwrite=True`` so that
        accidental collisions between extensions fail fast.
        """
        if not name:
            raise ValueError(f"{self._kind} name must be non-empty")
        if not callable(factory):
            raise TypeError(f"{self._kind} factory for {name!r} must be callable")
        if name in self._factories and not overwrite:
            raise ValueError(
                f"{self._kind} {name!r} is already registered; pass overwrite=True to replace it"
            )
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        """Remove a registered name (no-op if absent)."""
        self._factories.pop(name, None)

    def create(self, name: str, *args, **kwargs):
        """Instantiate the component registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise UnknownComponentError(self._kind, name, self.names()) from None
        return factory(*args, **kwargs)

    def names(self) -> List[str]:
        """The registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


#: Text scorers: ``factory(inverted_index, service_config) -> TextScorer``.
SCORER_REGISTRY = ComponentRegistry("scorer")

#: Adaptation policies: ``factory() -> AdaptationPolicy``.
POLICY_REGISTRY = ComponentRegistry("policy")

#: Indicator weighting schemes: ``factory() -> WeightingScheme``.
WEIGHTING_SCHEME_REGISTRY = ComponentRegistry("weighting scheme")


def register_scorer(
    name: str,
    factory: Callable[[InvertedIndex, "object"], TextScorer],
    *,
    overwrite: bool = False,
) -> None:
    """Register a text scorer factory ``(inverted_index, config) -> TextScorer``."""
    SCORER_REGISTRY.register(name, factory, overwrite=overwrite)


def register_policy(
    name: str, factory: Callable[[], AdaptationPolicy], *, overwrite: bool = False
) -> None:
    """Register an adaptation-policy factory ``() -> AdaptationPolicy``."""
    POLICY_REGISTRY.register(name, factory, overwrite=overwrite)


def register_weighting_scheme(
    name: str, factory: Callable[[], WeightingScheme], *, overwrite: bool = False
) -> None:
    """Register a weighting-scheme factory ``() -> WeightingScheme``."""
    WEIGHTING_SCHEME_REGISTRY.register(name, factory, overwrite=overwrite)


def create_scorer(name: str, inverted_index: InvertedIndex, config) -> TextScorer:
    """Build the scorer registered under ``name``."""
    return SCORER_REGISTRY.create(name, inverted_index, config)


def create_policy(name: str) -> AdaptationPolicy:
    """Build the adaptation policy registered under ``name``."""
    return POLICY_REGISTRY.create(name)


def create_weighting_scheme(name: str) -> WeightingScheme:
    """Build the weighting scheme registered under ``name``."""
    return WEIGHTING_SCHEME_REGISTRY.create(name)


def available_scorers() -> List[str]:
    """Names of all registered scorers."""
    return SCORER_REGISTRY.names()


def available_policies() -> List[str]:
    """Names of all registered adaptation policies."""
    return POLICY_REGISTRY.names()


def available_weighting_schemes() -> List[str]:
    """Names of all registered weighting schemes."""
    return WEIGHTING_SCHEME_REGISTRY.names()


# -- built-in components ---------------------------------------------------------

register_scorer(
    "bm25", lambda index, config: Bm25Scorer(index, k1=config.bm25_k1, b=config.bm25_b)
)
register_scorer("tfidf", lambda index, config: TfIdfScorer(index))
register_scorer(
    "lm", lambda index, config: DirichletLanguageModelScorer(index, mu=config.lm_mu)
)

register_policy("baseline", baseline_policy)
register_policy("profile", profile_only_policy)
register_policy("profile_only", profile_only_policy)
register_policy("implicit", implicit_only_policy)
register_policy("implicit_only", implicit_only_policy)
register_policy("explicit", explicit_policy)
register_policy("combined", combined_policy)
register_policy("full", full_policy)

register_weighting_scheme("uniform", uniform_scheme)
register_weighting_scheme("binary_click", binary_click_scheme)
register_weighting_scheme("heuristic", heuristic_scheme)
register_weighting_scheme("dwell_only", dwell_only_scheme)
register_weighting_scheme("explicit_only", explicit_only_scheme)
