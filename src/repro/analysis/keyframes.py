"""Keyframe selection within shots.

Retrieval interfaces present one representative still per shot; which frame
is chosen affects what the user can judge from the result list alone.  The
collection generator attaches a single keyframe per shot; this module models
the *selection* step over a set of candidate frames so that the interface
and simulation layers can reason about keyframe representativeness (a poorly
chosen keyframe lowers the reliability of click-based implicit feedback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.collection.documents import Keyframe, Shot
from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class CandidateFrame:
    """A candidate frame within a shot: a latent signal plus its offset."""

    shot_id: str
    offset_seconds: float
    latent_signal: Tuple[float, ...]


class CandidateFrameSampler:
    """Samples candidate frames around the shot's latent signal.

    Frames near the temporal middle of a shot are closer to the shot's
    "true" content; frames near the edges are blurred towards neighbouring
    content (transition frames), modelled as extra noise.
    """

    def __init__(self, frames_per_shot: int = 5, edge_noise: float = 0.8, seed: int = 733) -> None:
        ensure_positive(frames_per_shot, "frames_per_shot")
        self._frames_per_shot = frames_per_shot
        self._edge_noise = edge_noise
        self._seed = int(seed)

    def sample(self, shot: Shot) -> List[CandidateFrame]:
        """Candidate frames for one shot, evenly spaced in time."""
        rng = RandomSource(self._seed).spawn("candidates", shot.shot_id)
        frames: List[CandidateFrame] = []
        for index in range(self._frames_per_shot):
            fraction = (index + 0.5) / self._frames_per_shot
            # Distance from the middle of the shot in [0, 1].
            edge_distance = abs(fraction - 0.5) * 2.0
            sigma = 0.1 + self._edge_noise * edge_distance
            signal = tuple(
                value + rng.gauss(0.0, sigma) for value in shot.keyframe.latent_signal
            )
            frames.append(
                CandidateFrame(
                    shot_id=shot.shot_id,
                    offset_seconds=shot.start_seconds + fraction * shot.duration,
                    latent_signal=signal,
                )
            )
        return frames


class KeyframeSelector:
    """Selects the most representative candidate frame for a shot.

    The representative frame is the candidate closest (in the latent space)
    to the centroid of all candidates — the standard "closest to cluster
    centre" heuristic used by news-video indexing pipelines.
    """

    def select(self, shot: Shot, candidates: Sequence[CandidateFrame]) -> Keyframe:
        """Pick the best candidate and return it as a :class:`Keyframe`."""
        if not candidates:
            return shot.keyframe
        dimensions = len(candidates[0].latent_signal)
        centroid = [0.0] * dimensions
        for frame in candidates:
            for index, value in enumerate(frame.latent_signal):
                centroid[index] += value / len(candidates)
        best = min(
            candidates,
            key=lambda frame: sum(
                (value - centroid[index]) ** 2
                for index, value in enumerate(frame.latent_signal)
            ),
        )
        return Keyframe(
            keyframe_id=f"{shot.shot_id}_KF_selected",
            shot_id=shot.shot_id,
            latent_signal=best.latent_signal,
            timestamp=best.offset_seconds,
        )

    def representativeness(
        self, shot: Shot, keyframe: Keyframe
    ) -> float:
        """How well a keyframe represents its shot (1 = identical signal).

        Computed as an exponentially decaying function of the distance
        between the keyframe's signal and the shot's true latent signal.
        """
        import math

        distance = math.sqrt(
            sum(
                (a - b) ** 2
                for a, b in zip(keyframe.latent_signal, shot.keyframe.latent_signal)
            )
        )
        return math.exp(-distance)
