"""Ranked result lists returned by the retrieval engine.

A :class:`ResultList` is what the interface layer renders and what the
evaluation metrics score.  Each :class:`ResultItem` carries enough metadata
(keyframe, story headline, duration) for a simulated user to decide whether
to interact with it without dereferencing the collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.collection.documents import Collection


@dataclass(frozen=True)
class ResultItem:
    """One entry in a ranked result list."""

    shot_id: str
    score: float
    rank: int
    story_id: str = ""
    video_id: str = ""
    headline: str = ""
    category: str = ""
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for logging."""
        return {
            "shot_id": self.shot_id,
            "score": self.score,
            "rank": self.rank,
            "story_id": self.story_id,
            "video_id": self.video_id,
            "headline": self.headline,
            "category": self.category,
            "duration_seconds": self.duration_seconds,
        }


@dataclass
class ResultList:
    """A ranked list of shots for one query."""

    query_text: str
    items: List[ResultItem] = field(default_factory=list)
    topic_id: Optional[str] = None

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ResultItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> ResultItem:
        return self.items[index]

    def shot_ids(self) -> List[str]:
        """The ranked shot ids."""
        return [item.shot_id for item in self.items]

    def scores(self) -> Dict[str, float]:
        """A ``{shot_id: score}`` view of the list."""
        return {item.shot_id: item.score for item in self.items}

    def top(self, count: int) -> List[ResultItem]:
        """The first ``count`` items."""
        return self.items[:count]

    def rank_of(self, shot_id: str) -> Optional[int]:
        """1-based rank of a shot, or ``None`` if absent."""
        for item in self.items:
            if item.shot_id == shot_id:
                return item.rank
        return None

    def contains(self, shot_id: str) -> bool:
        """True if the shot appears anywhere in the list."""
        return any(item.shot_id == shot_id for item in self.items)

    @classmethod
    def from_scores(
        cls,
        query_text: str,
        scores: Dict[str, float],
        collection: Optional[Collection] = None,
        limit: int = 100,
        topic_id: Optional[str] = None,
    ) -> "ResultList":
        """Build a ranked list from a score map.

        Ties are broken by shot id so rankings are deterministic.  When a
        collection is supplied, presentation metadata is filled in.
        """
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:limit]
        items: List[ResultItem] = []
        for rank, (shot_id, score) in enumerate(ranked, start=1):
            if collection is not None and collection.has_shot(shot_id):
                shot = collection.shot(shot_id)
                story = collection.story(shot.story_id)
                items.append(
                    ResultItem(
                        shot_id=shot_id,
                        score=score,
                        rank=rank,
                        story_id=shot.story_id,
                        video_id=shot.video_id,
                        headline=story.headline,
                        category=shot.category,
                        duration_seconds=shot.duration,
                    )
                )
            else:
                items.append(ResultItem(shot_id=shot_id, score=score, rank=rank))
        return cls(query_text=query_text, items=items, topic_id=topic_id)


def merge_result_lists(
    lists: Sequence[ResultList], limit: int = 100, query_text: str = ""
) -> ResultList:
    """Merge several result lists by best score per shot (used by recommenders)."""
    best: Dict[str, ResultItem] = {}
    for result_list in lists:
        for item in result_list:
            current = best.get(item.shot_id)
            if current is None or item.score > current.score:
                best[item.shot_id] = item
    ranked = sorted(best.values(), key=lambda item: (-item.score, item.shot_id))[:limit]
    items = [
        ResultItem(
            shot_id=item.shot_id,
            score=item.score,
            rank=rank,
            story_id=item.story_id,
            video_id=item.video_id,
            headline=item.headline,
            category=item.category,
            duration_seconds=item.duration_seconds,
        )
        for rank, item in enumerate(ranked, start=1)
    ]
    return ResultList(query_text=query_text, items=items)
