"""Tests for interaction events, indicators, weighting schemes, dwell, explicit store."""

from __future__ import annotations

import pytest

from repro.collection import Qrels
from repro.feedback import (
    INDICATOR_NAMES,
    DwellObservation,
    DwellTimeClassifier,
    DwellTimeModel,
    EventKind,
    EventStream,
    ExplicitFeedbackStore,
    IndicatorExtractor,
    IndicatorWeightLearner,
    InteractionEvent,
    binary_click_scheme,
    default_schemes,
    heuristic_scheme,
    indicator_counts,
    uniform_scheme,
)
from repro.utils.rng import RandomSource


def _event(kind: EventKind, shot_id="s1", duration=None, rank=1, timestamp=0.0):
    return InteractionEvent(
        kind=kind, timestamp=timestamp, user_id="u1", session_id="sess1",
        shot_id=shot_id, rank=rank, duration=duration,
    )


class TestEvents:
    def test_classification_flags(self):
        assert _event(EventKind.PLAY_CLICK).is_implicit()
        assert not _event(EventKind.PLAY_CLICK).is_explicit()
        assert _event(EventKind.MARK_RELEVANT).is_explicit()
        assert _event(EventKind.SKIP_RESULT).is_negative()
        assert not _event(EventKind.PLAY_CLICK).is_negative()

    def test_round_trip_dict(self):
        event = _event(EventKind.PLAY_PROGRESS, duration=12.5)
        event.payload["page"] = 2
        restored = InteractionEvent.from_dict(event.as_dict())
        assert restored.kind is EventKind.PLAY_PROGRESS
        assert restored.duration == 12.5
        assert restored.payload == {"page": 2}
        assert restored.rank == 1

    def test_round_trip_without_optional_fields(self):
        event = InteractionEvent(kind=EventKind.SESSION_STARTED, timestamp=0.0)
        restored = InteractionEvent.from_dict(event.as_dict())
        assert restored.shot_id is None
        assert restored.rank is None

    def test_event_stream_filters(self):
        stream = EventStream(
            [
                _event(EventKind.QUERY_SUBMITTED, shot_id=None),
                _event(EventKind.PLAY_CLICK, shot_id="s1"),
                _event(EventKind.MARK_RELEVANT, shot_id="s2"),
                _event(EventKind.PLAY_CLICK, shot_id="s2"),
            ]
        )
        assert len(stream) == 4
        assert len(stream.implicit_events()) == 2
        assert len(stream.explicit_events()) == 1
        assert stream.shots_touched() == ["s1", "s2"]
        assert len(stream.for_shot("s2")) == 2
        assert len(stream.of_kind(EventKind.PLAY_CLICK)) == 2

    def test_event_stream_queries(self):
        stream = EventStream()
        stream.append(
            InteractionEvent(
                kind=EventKind.QUERY_SUBMITTED, timestamp=0.0, query_text="goal match"
            )
        )
        assert stream.queries() == ["goal match"]

    def test_event_stream_between(self):
        stream = EventStream([_event(EventKind.PLAY_CLICK, timestamp=t) for t in (0.0, 5.0, 10.0)])
        assert len(stream.between(1.0, 10.0)) == 1


class TestIndicatorExtractor:
    def test_play_click_fires(self):
        observations = IndicatorExtractor().observations_for_event(_event(EventKind.PLAY_CLICK))
        assert [o.indicator for o in observations] == ["play_click"]
        assert observations[0].strength == 1.0

    def test_play_progress_strength_scales_with_fraction(self):
        extractor = IndicatorExtractor(long_play_fraction=0.5)
        durations = {"s1": 20.0}
        short = extractor.observations_for_event(
            _event(EventKind.PLAY_PROGRESS, duration=2.0), durations
        )[0]
        long = extractor.observations_for_event(
            _event(EventKind.PLAY_PROGRESS, duration=15.0), durations
        )[0]
        assert short.strength < long.strength
        assert long.strength == 1.0  # capped

    def test_play_complete_fires_two_indicators(self):
        observations = IndicatorExtractor().observations_for_event(
            _event(EventKind.PLAY_COMPLETE)
        )
        assert {o.indicator for o in observations} == {"play_complete", "play_duration"}

    def test_hover_threshold(self):
        extractor = IndicatorExtractor(hover_threshold_seconds=2.0)
        below = extractor.observations_for_event(_event(EventKind.HOVER_RESULT, duration=1.0))
        above = extractor.observations_for_event(_event(EventKind.HOVER_RESULT, duration=3.0))
        assert below == []
        assert above[0].indicator == "hover"

    def test_explicit_events_map_to_explicit_indicators(self):
        extractor = IndicatorExtractor()
        positive = extractor.observations_for_event(_event(EventKind.REMOTE_RATE_UP))
        negative = extractor.observations_for_event(_event(EventKind.MARK_NOT_RELEVANT))
        assert positive[0].indicator == "explicit_positive"
        assert negative[0].indicator == "explicit_negative"

    def test_event_without_shot_ignored(self):
        assert IndicatorExtractor().observations_for_event(
            _event(EventKind.PLAY_CLICK, shot_id=None)
        ) == []

    def test_per_shot_strengths_take_maximum(self):
        extractor = IndicatorExtractor()
        events = [
            _event(EventKind.PLAY_PROGRESS, duration=3.0),
            _event(EventKind.PLAY_PROGRESS, duration=30.0),
        ]
        strengths = extractor.per_shot_indicator_strengths(events, {"s1": 30.0})
        assert strengths["s1"]["play_duration"] == 1.0

    def test_indicator_counts(self):
        extractor = IndicatorExtractor()
        observations = extractor.extract(
            [_event(EventKind.PLAY_CLICK), _event(EventKind.PLAY_CLICK), _event(EventKind.SEEK_VIDEO)]
        )
        counts = indicator_counts(observations)
        assert counts["play_click"] == 2
        assert counts["seek"] == 1
        assert counts["metadata"] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IndicatorExtractor(long_play_fraction=0.0)
        with pytest.raises(ValueError):
            IndicatorExtractor(hover_threshold_seconds=-1)


class TestWeightingSchemes:
    def test_uniform_counts_all_indicators(self):
        scheme = uniform_scheme()
        assert all(scheme.weight(name) == 1.0 for name in INDICATOR_NAMES)

    def test_binary_click_only_counts_clicks(self):
        scheme = binary_click_scheme()
        assert scheme.evidence_for_shot({"play_click": 1.0, "metadata": 1.0}) == 1.0

    def test_negative_indicators_subtract(self):
        scheme = uniform_scheme()
        assert scheme.evidence_for_shot({"play_click": 1.0, "skip": 1.0}) == 0.0
        assert scheme.evidence_for_shot({"explicit_negative": 1.0}) == -1.0

    def test_evidence_map(self):
        scheme = heuristic_scheme()
        evidence = scheme.evidence_map(
            {"s1": {"play_complete": 1.0}, "s2": {"browse": 1.0}}
        )
        assert evidence["s1"] > evidence["s2"]

    def test_default_schemes_named_uniquely(self):
        names = [scheme.name for scheme in default_schemes()]
        assert len(names) == len(set(names))

    def test_heuristic_orders_effort(self):
        scheme = heuristic_scheme()
        assert scheme.weight("playlist") > scheme.weight("browse")
        assert scheme.weight("play_complete") > scheme.weight("play_click")


class TestWeightLearner:
    def test_learner_downweights_random_indicator(self):
        """An indicator that fires regardless of relevance should get ~0 weight,
        one that fires only on relevant shots should get a high weight."""
        qrels = Qrels()
        for i in range(20):
            qrels.add("T1", f"rel{i}", 1)
        observations = []
        per_shot = {}
        for i in range(20):
            per_shot[f"rel{i}"] = {"play_complete": 1.0, "browse": 1.0}
        for i in range(20):
            per_shot[f"non{i}"] = {"browse": 1.0}
        observations.append(("T1", per_shot))
        learned = IndicatorWeightLearner(smoothing=0.5).learn(observations, qrels)
        assert learned.weight("play_complete") > 0.7
        assert learned.weight("browse") < 0.2

    def test_precisions_default_half_for_unseen(self):
        learner = IndicatorWeightLearner()
        precisions = learner.indicator_precisions([], Qrels())
        assert precisions["play_click"] == pytest.approx(0.5)

    def test_negative_indicator_learned_against_non_relevance(self):
        qrels = Qrels()
        qrels.add("T1", "rel1", 1)
        per_shot = {"rel1": {"skip": 1.0}, "non1": {"skip": 1.0}, "non2": {"skip": 1.0}}
        learner = IndicatorWeightLearner(smoothing=0.0)
        precisions = learner.indicator_precisions([("T1", per_shot)], qrels)
        assert precisions["skip"] == pytest.approx(2.0 / 3.0)


class TestDwell:
    def test_relevant_shots_watched_longer_on_average(self):
        model = DwellTimeModel()
        rng = RandomSource(5).spawn("dwell")
        relevant = [model.sample_duration(rng, True) for _ in range(300)]
        non_relevant = [model.sample_duration(rng, False) for _ in range(300)]
        assert sum(relevant) / len(relevant) > sum(non_relevant) / len(non_relevant)

    def test_duration_capped_by_shot_length(self):
        model = DwellTimeModel(relevant_median=100.0)
        rng = RandomSource(5).spawn("dwell")
        assert all(
            model.sample_duration(rng, True, shot_duration=10.0) <= 10.0
            for _ in range(50)
        )

    def test_task_multiplier(self):
        model = DwellTimeModel.with_task_effects()
        assert model.multiplier_for_task("background_browsing") > 1.0
        assert model.multiplier_for_task("fact_check") < 1.0
        assert model.multiplier_for_task(None) == 1.0
        assert model.multiplier_for_task("unknown_task") == 1.0

    def test_classifier_metrics(self):
        observations = [
            DwellObservation("s1", 30.0, True),
            DwellObservation("s2", 25.0, True),
            DwellObservation("s3", 3.0, False),
            DwellObservation("s4", 20.0, False),
        ]
        metrics = DwellTimeClassifier(threshold_seconds=12.0).evaluate(observations)
        assert metrics["precision"] == pytest.approx(2 / 3)
        assert metrics["recall"] == pytest.approx(1.0)
        assert metrics["observations"] == 4

    def test_best_threshold(self):
        observations = [
            DwellObservation("s1", 30.0, True),
            DwellObservation("s2", 3.0, False),
        ]
        threshold, accuracy = DwellTimeClassifier().best_threshold(
            observations, [1.0, 10.0, 50.0]
        )
        assert accuracy == 1.0
        assert threshold == 10.0

    def test_model_validation(self):
        with pytest.raises(ValueError):
            DwellTimeModel(relevant_median=0)
        with pytest.raises(ValueError):
            DwellTimeClassifier(threshold_seconds=0)


class TestExplicitStore:
    def test_record_and_latest_wins(self):
        store = ExplicitFeedbackStore()
        store.record("s1", True, 1.0)
        store.record("s1", False, 2.0)
        assert store.non_relevant_shots() == ["s1"]
        assert store.relevant_shots() == []
        assert store.judgement_count() == 2

    def test_record_events(self):
        store = ExplicitFeedbackStore()
        events = [
            _event(EventKind.MARK_RELEVANT, shot_id="s1"),
            _event(EventKind.REMOTE_RATE_DOWN, shot_id="s2"),
            _event(EventKind.PLAY_CLICK, shot_id="s3"),
        ]
        recorded = store.record_events(events)
        assert recorded == 2
        assert store.relevant_shots() == ["s1"]
        assert store.non_relevant_shots() == ["s2"]

    def test_evidence_map_signs(self):
        store = ExplicitFeedbackStore()
        store.record("pos", True)
        store.record("neg", False)
        evidence = store.evidence_map(positive_weight=2.0, negative_weight=1.0)
        assert evidence["pos"] == 2.0
        assert evidence["neg"] == -1.0

    def test_event_without_shot_not_recorded(self):
        store = ExplicitFeedbackStore()
        assert not store.record_event(_event(EventKind.MARK_RELEVANT, shot_id=None))
