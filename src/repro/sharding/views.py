"""Sharded index facades: one logical index over N physical shards.

:class:`ShardedInvertedIndex` and :class:`ShardedVisualIndex` present the
read/write API of their monolithic counterparts while storing documents and
shots in per-shard indexes chosen by a :class:`~repro.sharding.router.
ShardRouter`.  Three properties make them drop-in substrates for the
retrieval engine and the adaptive layer:

* **Global interning.**  The facades keep their own dense id tables in
  insertion order, so ``doc_index_get`` / ``doc_id_at`` /
  ``document_count`` behave exactly like the monolithic index built from
  the same insertion sequence — the adaptation kernel's dense scratch
  passes run unchanged over a sharded engine.
* **Write routing.**  ``add_document`` / ``add_shot`` land on the owning
  shard (duplicate ids are rejected globally, with the monolithic error
  message).  ``generation`` is the sum of the shard generations — a strict
  logical clock because all mutation is serialised behind the engine's
  exclusive writer — so every generation-keyed derived cache above the
  facade invalidates on any shard write.
* **Exact gathered reads.**  Cross-shard reads that rank or score
  (``similar_to_vector``, ``similar_to_shot``, ``score_by_concepts``)
  scatter to the shards and merge with the same selection key the
  monolithic code uses, so the gathered result is bit-identical to the
  unsharded evaluation (per-shard top-``limit`` lists always contain the
  global top-``limit`` under the shared ``(-score, id)`` order).

The text facade deliberately does **not** implement ``postings_arrays`` /
``bm25_norms``: per-shard postings columns use shard-dense indexes, so a
scorer must be built over a per-shard
:class:`~repro.sharding.global_stats.GlobalStatsView`, never over this
facade.  Attempting it fails loudly with ``AttributeError``.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.features import FeatureExtractor, cosine_similarity
from repro.collection.documents import Collection
from repro.index.inverted_index import InvertedIndex, Posting
from repro.index.tokenizer import Tokenizer
from repro.index.visual import VisualIndex
from repro.sharding.global_stats import GlobalTextStats
from repro.sharding.router import ShardRouter
from repro.utils.concurrency import ScatterGather
from repro.utils.validation import ensure_positive

#: Inline (single-worker) gather used when a facade is built standalone.
_INLINE_GATHER = ScatterGather(1)


@dataclass
class _CompactedTextState:
    """Prepared compaction for :class:`ShardedInvertedIndex` (see adopt)."""

    shards: List[InvertedIndex]
    doc_ids: List[str]
    doc_index: Dict[str, int]
    doc_lengths: array


@dataclass
class _CompactedVisualState:
    """Prepared compaction for :class:`ShardedVisualIndex` (see adopt)."""

    shards: List[VisualIndex]
    shot_ids: List[str]
    shot_index: Dict[str, int]


class ShardedInvertedIndex:
    """One logical inverted index hash-partitioned over N shards."""

    def __init__(self, router: ShardRouter, tokenizer: Optional[Tokenizer] = None) -> None:
        self._router = router
        self._tokenizer = tokenizer or Tokenizer()
        self._shards = [
            InvertedIndex(tokenizer=self._tokenizer) for _ in range(router.num_shards)
        ]
        self._stats = GlobalTextStats(self._shards)
        # Global dense interning, in insertion order — identical numbering
        # to a monolithic index fed the same documents in the same order.
        # Deleted documents leave a ``None`` tombstone, like the monolith.
        self._doc_ids: List[Optional[str]] = []
        self._doc_index: Dict[str, int] = {}
        self._doc_lengths = array("i")

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_collection(
        cls,
        collection: Collection,
        router: ShardRouter,
        tokenizer: Optional[Tokenizer] = None,
    ) -> "ShardedInvertedIndex":
        """Build a sharded index over every shot transcript in a collection."""
        index = cls(router, tokenizer=tokenizer)
        for shot in collection.iter_shots():
            index.add_document(shot.shot_id, shot.transcript)
        return index

    @property
    def tokenizer(self) -> Tokenizer:
        """The tokenizer shared by every shard."""
        return self._tokenizer

    @property
    def router(self) -> ShardRouter:
        """The id router deciding shard ownership."""
        return self._router

    @property
    def shard_indexes(self) -> Tuple[InvertedIndex, ...]:
        """The physical per-shard indexes."""
        return tuple(self._shards)

    @property
    def stats(self) -> GlobalTextStats:
        """The global statistics aggregator over the shards."""
        return self._stats

    def shard_for(self, document_id: str) -> InvertedIndex:
        """The shard index owning a document id."""
        return self._shards[self._router.shard_of(document_id)]

    def add_document(self, document_id: str, text: str) -> None:
        """Index one document on its owning shard; duplicates raise."""
        self.add_document_frequencies(
            document_id, self._tokenizer.term_frequencies(text)
        )

    def add_document_frequencies(
        self, document_id: str, frequencies: Mapping[str, int]
    ) -> None:
        """Index an already-tokenised document on its owning shard."""
        if document_id in self._doc_index:
            raise ValueError(f"document {document_id!r} already indexed")
        shard = self.shard_for(document_id)
        shard.add_document_frequencies(document_id, frequencies)
        self._doc_index[document_id] = len(self._doc_ids)
        self._doc_ids.append(document_id)
        self._doc_lengths.append(shard.document_length(document_id))

    def add_documents(self, documents: Mapping[str, str]) -> None:
        """Index a mapping of ``document_id -> text`` atomically.

        Mirrors the monolithic index: every id is validated globally before
        any document lands on a shard, so a duplicate anywhere in the batch
        leaves every shard (and the global tables) untouched.
        """
        for document_id in documents:
            if document_id in self._doc_index:
                raise ValueError(f"document {document_id!r} already indexed")
        for document_id, text in documents.items():
            self.add_document(document_id, text)

    # -- mutation ---------------------------------------------------------------

    def delete_document(self, document_id: str) -> None:
        """Remove one document from its owning shard; unknown ids raise.

        The owning shard scrubs its postings; the facade tombstones its
        global dense slot so global interning matches a monolithic index
        that saw the same delete.
        """
        doc_index = self._doc_index.pop(document_id, None)
        if doc_index is None:
            raise KeyError(f"document {document_id!r} not indexed")
        self.shard_for(document_id).delete_document(document_id)
        self._doc_ids[doc_index] = None
        self._doc_lengths[doc_index] = 0

    def update_document(self, document_id: str, text: str) -> None:
        """Replace one document's text; an unknown id raises ``KeyError``."""
        self.update_document_frequencies(
            document_id, self._tokenizer.term_frequencies(text)
        )

    def update_document_frequencies(
        self, document_id: str, frequencies: Mapping[str, int]
    ) -> None:
        """Replace one document (delete + re-add on the owning shard)."""
        if document_id not in self._doc_index:
            raise KeyError(f"document {document_id!r} not indexed")
        self.delete_document(document_id)
        self.add_document_frequencies(document_id, frequencies)

    # -- compaction --------------------------------------------------------------

    @property
    def tombstone_count(self) -> int:
        """Tombstoned global dense slots not yet reclaimed by compaction."""
        return len(self._doc_ids) - len(self._doc_index)

    def compacted_copy(self) -> "_CompactedTextState":
        """Freshly compacted per-shard copies plus rebuilt global tables.

        Pure preparation — this object is untouched, so the (possibly
        expensive) re-interning can run outside the engine's writer lock.
        """
        live_ids = [d for d in self._doc_ids if d is not None]
        doc_index = {document_id: i for i, document_id in enumerate(live_ids)}
        lengths = array(
            "i", (self._doc_lengths[self._doc_index[d]] for d in live_ids)
        )
        return _CompactedTextState(
            shards=[shard.compacted_copy() for shard in self._shards],
            doc_ids=live_ids,
            doc_index=doc_index,
            doc_lengths=lengths,
        )

    def adopt_compacted(self, state: "_CompactedTextState") -> int:
        """Swap a prepared compacted state in, preserving shard identities."""
        reclaimed = len(self._doc_ids) - len(state.doc_ids)
        for shard, fresh in zip(self._shards, state.shards):
            shard.adopt_compacted(fresh)
        self._doc_ids = state.doc_ids
        self._doc_index = state.doc_index
        self._doc_lengths = state.doc_lengths
        return reclaimed

    def compact(self) -> int:
        """Reclaim tombstoned slots in place; no-op when there are none."""
        if self.tombstone_count == 0:
            return 0
        return self.adopt_compacted(self.compacted_copy())

    # -- statistics -------------------------------------------------------------

    @property
    def document_count(self) -> int:
        """Total **live** documents across all shards."""
        return len(self._doc_index)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct index terms across all shards."""
        vocabulary: set = set()
        for shard in self._shards:
            vocabulary.update(shard.terms())
        return len(vocabulary)

    @property
    def total_terms(self) -> int:
        """Total term occurrences across all shards."""
        return self._stats.total_terms

    @property
    def average_document_length(self) -> float:
        """Global mean **live** document length in terms."""
        if not self._doc_index:
            return 0.0
        return self._stats.total_terms / len(self._doc_index)

    @property
    def generation(self) -> int:
        """Combined mutation clock (sum of shard generations)."""
        return self._stats.generation

    def document_length(self, document_id: str) -> int:
        """Length (term count) of one document."""
        return self._doc_lengths[self._doc_index[document_id]]

    def has_document(self, document_id: str) -> bool:
        """True if the document is indexed on any shard."""
        return document_id in self._doc_index

    def document_ids(self) -> List[str]:
        """All **live** document ids, in global insertion order."""
        return [document_id for document_id in self._doc_ids if document_id is not None]

    def document_frequency(self, term: str) -> int:
        """Global document frequency of a term."""
        return self._stats.document_frequency(term)

    def collection_frequency(self, term: str) -> int:
        """Global collection frequency of a term."""
        return self._stats.collection_frequency(term)

    def postings(self, term: str) -> List[Posting]:
        """Object-view postings gathered across shards (per-shard order)."""
        gathered: List[Posting] = []
        for shard in self._shards:
            gathered.extend(shard.postings(term))
        return gathered

    def terms(self) -> List[str]:
        """All index terms (shard order, de-duplicated)."""
        seen: Dict[str, None] = {}
        for shard in self._shards:
            for term in shard.terms():
                seen.setdefault(term, None)
        return list(seen)

    def document_vector(self, document_id: str) -> Dict[str, int]:
        """Term-frequency vector of one document (a copy)."""
        return self.shard_for(document_id).document_vector(document_id)

    def document_vector_view(self, document_id: str) -> Mapping[str, int]:
        """No-copy term-frequency vector of one document (read-only)."""
        return self.shard_for(document_id).document_vector_view(document_id)

    def term_frequency(self, term: str, document_id: str) -> int:
        """Frequency of ``term`` in ``document_id`` (0 if absent)."""
        return self.shard_for(document_id).term_frequency(term, document_id)

    # -- dense (global) views -----------------------------------------------------

    def doc_index_of(self, document_id: str) -> int:
        """Global dense index of a document id (raises ``KeyError`` if absent)."""
        return self._doc_index[document_id]

    def doc_id_at(self, doc_index: int) -> str:
        """Document id at a global dense index."""
        return self._doc_ids[doc_index]

    def doc_index_get(self, document_id: str, default: Optional[int] = None):
        """Global dense index of a document id, or ``default`` if absent."""
        return self._doc_index.get(document_id, default)

    def dense_document_ids(self) -> List[str]:
        """The global id table in dense-index order (read-only)."""
        return self._doc_ids

    @property
    def document_lengths_array(self) -> array:
        """Document lengths in global dense-index order (read-only)."""
        return self._doc_lengths

    # -- export -----------------------------------------------------------------

    def iter_postings(self) -> Iterable[Tuple[str, Posting]]:
        """Iterate ``(term, posting)`` pairs shard by shard."""
        for shard in self._shards:
            for term, posting in shard.iter_postings():
                yield term, posting

    def statistics(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "documents": float(self.document_count),
            "vocabulary": float(self.vocabulary_size),
            "total_terms": float(self.total_terms),
            "average_document_length": self.average_document_length,
        }

    def shard_document_counts(self) -> List[int]:
        """Documents per shard (for balance reporting and benchmarks)."""
        return [shard.document_count for shard in self._shards]

    def __contains__(self, term: str) -> bool:
        return any(term in shard for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedInvertedIndex(shards={self._router.num_shards}, "
            f"documents={self.document_count})"
        )


class ShardedVisualIndex:
    """One logical visual index hash-partitioned over N shards.

    Gathered similarity reads merge per-shard bounded results under the
    same ``(-similarity, shot_id)`` selection key the monolithic index
    uses, so ``similar_to_vector`` / ``similar_to_shot`` return exactly the
    list the unsharded index would.
    """

    def __init__(
        self, router: ShardRouter, gather: Optional[ScatterGather] = None
    ) -> None:
        self._router = router
        self._gather = gather or _INLINE_GATHER
        self._shards = [VisualIndex() for _ in range(router.num_shards)]
        self._shot_ids: List[Optional[str]] = []
        self._shot_index: Dict[str, int] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_collection(
        cls,
        collection: Collection,
        router: ShardRouter,
        feature_extractor: Optional[FeatureExtractor] = None,
        gather: Optional[ScatterGather] = None,
    ) -> "ShardedVisualIndex":
        """Build a sharded visual index from a collection."""
        extractor = feature_extractor or FeatureExtractor()
        index = cls(router, gather=gather)
        for shot in collection.iter_shots():
            features = shot.features or extractor.extract(shot.keyframe)
            index.add_shot(shot.shot_id, features, shot.concept_scores)
        return index

    @property
    def router(self) -> ShardRouter:
        """The id router deciding shard ownership."""
        return self._router

    def bind_gather(self, gather: ScatterGather) -> None:
        """Adopt an engine's scatter-gather executor.

        A facade built standalone (e.g. rebuilt from a recovered snapshot)
        gathers inline; the engine that adopts it rebinds it to the shared
        shard pool here, before serving traffic.
        """
        self._gather = gather

    @property
    def shard_indexes(self) -> Tuple[VisualIndex, ...]:
        """The physical per-shard indexes."""
        return tuple(self._shards)

    def shard_for(self, shot_id: str) -> VisualIndex:
        """The shard index owning a shot id."""
        return self._shards[self._router.shard_of(shot_id)]

    def add_shot(
        self,
        shot_id: str,
        features: Sequence[float],
        concept_scores: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Add one shot's visual evidence on its owning shard."""
        if shot_id in self._shot_index:
            raise ValueError(f"shot {shot_id!r} already in visual index")
        self.shard_for(shot_id).add_shot(shot_id, features, concept_scores)
        self._shot_index[shot_id] = len(self._shot_ids)
        self._shot_ids.append(shot_id)

    def delete_shot(self, shot_id: str) -> None:
        """Remove one shot from its owning shard; unknown ids raise."""
        shot_index = self._shot_index.pop(shot_id, None)
        if shot_index is None:
            raise KeyError(f"shot {shot_id!r} not in visual index")
        self.shard_for(shot_id).delete_shot(shot_id)
        self._shot_ids[shot_index] = None

    # -- compaction ----------------------------------------------------------

    @property
    def tombstone_count(self) -> int:
        """Tombstoned global dense slots not yet reclaimed by compaction."""
        return len(self._shot_ids) - len(self._shot_index)

    def compacted_copy(self) -> "_CompactedVisualState":
        """Freshly compacted per-shard copies plus rebuilt global tables."""
        live_ids = [s for s in self._shot_ids if s is not None]
        return _CompactedVisualState(
            shards=[shard.compacted_copy() for shard in self._shards],
            shot_ids=live_ids,
            shot_index={shot_id: i for i, shot_id in enumerate(live_ids)},
        )

    def adopt_compacted(self, state: "_CompactedVisualState") -> int:
        """Swap a prepared compacted state in, preserving shard identities."""
        reclaimed = len(self._shot_ids) - len(state.shot_ids)
        for shard, fresh in zip(self._shards, state.shards):
            shard.adopt_compacted(fresh)
        self._shot_ids = state.shot_ids
        self._shot_index = state.shot_index
        return reclaimed

    def compact(self) -> int:
        """Reclaim tombstoned slots in place; no-op when there are none."""
        if self.tombstone_count == 0:
            return 0
        return self.adopt_compacted(self.compacted_copy())

    # -- statistics ----------------------------------------------------------

    @property
    def shot_count(self) -> int:
        """Total **live** shots across all shards."""
        return len(self._shot_index)

    @property
    def generation(self) -> int:
        """Combined mutation clock (sum of shard generations)."""
        return sum(shard.generation for shard in self._shards)

    def has_shot(self, shot_id: str) -> bool:
        """True if the shot has visual evidence on any shard."""
        return shot_id in self._shot_index

    def shot_ids(self) -> List[str]:
        """All **live** shot ids, in global insertion order."""
        return [shot_id for shot_id in self._shot_ids if shot_id is not None]

    def features_of(self, shot_id: str) -> Tuple[float, ...]:
        """Feature vector of one shot."""
        if shot_id not in self._shot_index:
            raise KeyError(shot_id)
        return self.shard_for(shot_id).features_of(shot_id)

    def concept_scores_of(self, shot_id: str) -> Dict[str, float]:
        """Concept confidence scores of one shot (a copy)."""
        return self.shard_for(shot_id).concept_scores_of(shot_id)

    def shard_shot_counts(self) -> List[int]:
        """Shots per shard (for balance reporting and benchmarks)."""
        return [shard.shot_count for shard in self._shards]

    # -- search ------------------------------------------------------------------

    def similar_to_vector(
        self, vector: Sequence[float], limit: int = 20, exclude: Sequence[str] = ()
    ) -> List[Tuple[str, float]]:
        """Shots most similar to a feature vector, gathered across shards.

        Each shard returns its own top-``limit`` under ``(-similarity,
        shot_id)``; the global top-``limit`` under the same key is a subset
        of that union, so the merged list is bit-identical to the
        monolithic scan.
        """
        ensure_positive(limit, "limit")
        query = tuple(vector)
        partials = self._gather.map(
            lambda shard: shard.similar_to_vector(query, limit=limit, exclude=exclude),
            self._shards,
        )
        merged = [item for partial in partials for item in partial]
        return heapq.nsmallest(limit, merged, key=lambda item: (-item[1], item[0]))

    def similar_to_shot(self, shot_id: str, limit: int = 20) -> List[Tuple[str, float]]:
        """Shots most similar to a given shot (the query shot is excluded)."""
        if shot_id not in self._shot_index:
            raise KeyError(f"shot {shot_id!r} not in visual index")
        features = self.shard_for(shot_id).features_of(shot_id)
        return self.similar_to_vector(features, limit=limit, exclude=(shot_id,))

    def score_by_concepts(
        self, concept_weights: Mapping[str, float]
    ) -> Dict[str, float]:
        """Concept scores gathered across shards (disjoint-union merge)."""
        partials = self._gather.map(
            lambda shard: shard.score_by_concepts(concept_weights), self._shards
        )
        merged: Dict[str, float] = {}
        for partial in partials:
            merged.update(partial)
        return merged

    def similarity(self, first_shot_id: str, second_shot_id: str) -> float:
        """Cosine similarity between two indexed shots (any shards)."""
        return cosine_similarity(
            self.features_of(first_shot_id), self.features_of(second_shot_id)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedVisualIndex(shards={self._router.num_shards}, "
            f"shots={self.shot_count})"
        )
