"""Ostensive evidence weighting (Campbell & van Rijsbergen).

The ostensive model holds that evidence from the user's recent behaviour
should count for more than older evidence, because "the users' information
need can change within different retrieval sessions and sometimes even
within the same session".  This module provides the discount profiles used
by the adaptive model's evidence accumulation: given how many query
iterations ago a piece of evidence was observed, return its discount factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

from repro.utils.validation import ensure_in_range, ensure_positive

#: Discount profile names accepted by :func:`make_discount`.
DISCOUNT_PROFILES = ("uniform", "exponential", "reciprocal", "linear")


def uniform_discount(age: int) -> float:
    """No discounting: every iteration counts the same (the static model)."""
    if age < 0:
        raise ValueError("age must be non-negative")
    return 1.0


def exponential_discount(age: int, base: float = 0.7) -> float:
    """Exponential decay with the given base per iteration of age."""
    if age < 0:
        raise ValueError("age must be non-negative")
    ensure_in_range(base, 0.0, 1.0, "base")
    return base ** age

def reciprocal_discount(age: int) -> float:
    """Reciprocal decay: 1, 1/2, 1/3, ... (Campbell's original proposal)."""
    if age < 0:
        raise ValueError("age must be non-negative")
    return 1.0 / (age + 1)


def linear_discount(age: int, horizon: int = 6) -> float:
    """Linear decay hitting zero after ``horizon`` iterations."""
    if age < 0:
        raise ValueError("age must be non-negative")
    ensure_positive(horizon, "horizon")
    return max(0.0, 1.0 - age / horizon)


def make_discount(profile: str, **kwargs: float) -> Callable[[int], float]:
    """Build a discount function by name.

    ``profile`` is one of :data:`DISCOUNT_PROFILES`; keyword arguments are
    forwarded to the underlying function (``base`` for exponential,
    ``horizon`` for linear).
    """
    if profile == "uniform":
        return uniform_discount
    if profile == "exponential":
        base = float(kwargs.get("base", 0.7))
        return lambda age: exponential_discount(age, base=base)
    if profile == "reciprocal":
        return reciprocal_discount
    if profile == "linear":
        horizon = int(kwargs.get("horizon", 6))
        return lambda age: linear_discount(age, horizon=horizon)
    raise ValueError(
        f"unknown discount profile {profile!r}; expected one of {DISCOUNT_PROFILES}"
    )


@dataclass
class OstensiveAccumulator:
    """Accumulates per-item evidence with iteration-age discounting.

    Unlike :class:`repro.feedback.accumulator.EvidenceAccumulator`, which
    decays its running total in place, this accumulator remembers *when*
    each piece of evidence arrived and re-weights everything on demand.
    That makes it possible to compare discount profiles on exactly the same
    observation history, which is what the ostensive ablation (E7) does.
    """

    discount: Callable[[int], float]

    def __post_init__(self) -> None:
        self._history: List[Dict[str, float]] = []

    def observe_iteration(self, evidence: Mapping[str, float]) -> None:
        """Record one query iteration's worth of per-item evidence."""
        self._history.append(dict(evidence))

    @property
    def iteration_count(self) -> int:
        """Number of iterations observed."""
        return len(self._history)

    def weighted_evidence(self) -> Dict[str, float]:
        """Combined evidence with the discount applied by iteration age.

        The most recent iteration has age 0, the one before it age 1, etc.
        """
        combined: Dict[str, float] = {}
        latest = len(self._history) - 1
        for index, iteration_evidence in enumerate(self._history):
            age = latest - index
            factor = self.discount(age)
            if factor <= 0:
                continue
            for item_id, mass in iteration_evidence.items():
                combined[item_id] = combined.get(item_id, 0.0) + factor * mass
        return combined

    def reset(self) -> None:
        """Forget all observed iterations."""
        self._history.clear()


def compare_profiles(
    history: Sequence[Mapping[str, float]], profiles: Sequence[str] = DISCOUNT_PROFILES
) -> Dict[str, Dict[str, float]]:
    """Apply several discount profiles to the same observation history.

    Returns ``{profile_name: weighted_evidence}``; used by the ostensive
    ablation bench to show how the profiles react to an interest shift.
    """
    results: Dict[str, Dict[str, float]] = {}
    for profile in profiles:
        accumulator = OstensiveAccumulator(discount=make_discount(profile))
        for iteration_evidence in history:
            accumulator.observe_iteration(iteration_evidence)
        results[profile] = accumulator.weighted_evidence()
    return results
