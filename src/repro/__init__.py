"""repro: reproduction of "Studying Interaction Methodologies in Video Retrieval".

The package implements an adaptive news-video retrieval system with implicit
relevance feedback, static user profiles and a simulated-user evaluation
framework, together with every substrate those pieces depend on (synthetic
TRECVID-like collection, video analysis, text/visual indexing, interface
models and an evaluation harness).

The supported entry point is the multi-user service facade:

>>> from repro import RetrievalService, SearchRequest
>>> service = RetrievalService.generate(seed=7)
>>> session = service.open_session("alice", policy="implicit")
>>> response = service.search(
...     SearchRequest(user_id="alice", query="election results",
...                   session_id=session.session_id))
>>> response.top(3)  # doctest: +SKIP

Sessions accumulate the user's implicit/explicit feedback
(``service.submit_feedback``) and every later search is adapted to it; the
lower layers (``repro.core``, ``repro.retrieval``, ...) remain importable
for code that needs the engine room directly.
"""

from repro.collection import (
    Collection,
    CollectionConfig,
    CollectionGenerator,
    Qrels,
    SyntheticCorpus,
    Topic,
    TopicSet,
    generate_corpus,
    load_corpus,
    save_corpus,
)
from repro.core import (
    AdaptationPolicy,
    baseline_policy,
    combined_policy,
    implicit_only_policy,
    profile_only_policy,
)
from repro.retrieval import Query, ResultList, VideoRetrievalEngine
from repro.sharding import ShardedEngine, ShardRouter
from repro.service import (
    FeedbackBatch,
    RetrievalService,
    SearchHit,
    SearchRequest,
    SearchResponse,
    ServiceConfig,
    SessionExpiredError,
    SessionInfo,
    SessionManager,
    SessionNotFoundError,
    UnknownComponentError,
    available_policies,
    available_scorers,
    available_weighting_schemes,
    register_policy,
    register_scorer,
    register_weighting_scheme,
)
from repro.workload import (
    LoadResult,
    ServiceLoadDriver,
    WorkloadSpec,
    generate_workload,
)

__version__ = "1.2.0"

__all__ = [
    # collection substrate
    "Collection",
    "CollectionConfig",
    "CollectionGenerator",
    "Qrels",
    "SyntheticCorpus",
    "Topic",
    "TopicSet",
    "generate_corpus",
    "load_corpus",
    "save_corpus",
    # adaptation policies
    "AdaptationPolicy",
    "baseline_policy",
    "profile_only_policy",
    "implicit_only_policy",
    "combined_policy",
    # engine-room types
    "Query",
    "ResultList",
    "VideoRetrievalEngine",
    "ShardRouter",
    "ShardedEngine",
    # service facade
    "RetrievalService",
    "ServiceConfig",
    "SearchRequest",
    "SearchResponse",
    "SearchHit",
    "FeedbackBatch",
    "SessionInfo",
    "SessionManager",
    "SessionExpiredError",
    "SessionNotFoundError",
    "UnknownComponentError",
    "available_policies",
    "available_scorers",
    "available_weighting_schemes",
    "register_policy",
    "register_scorer",
    "register_weighting_scheme",
    # workload harness
    "LoadResult",
    "ServiceLoadDriver",
    "WorkloadSpec",
    "generate_workload",
    "__version__",
]
