"""E17 — Multi-process scatter: breaking the GIL floor on pure-CPU scoring.

E13/E15 record the honest thread-pool ceiling: pure-Python scoring under
threads tops out at ~1x no matter how many shards overlap, because the GIL
serialises the per-shard scorer loops.  This bench pins the claim the
``repro.multiproc`` executor makes: with shard postings exported into
``multiprocessing.shared_memory`` and scored by long-lived worker
*processes*, the same pure-CPU scatter workload scales with cores — **>= 2x
the single-engine throughput at 4 workers on >= 4 usable cores** — while
rankings stay **bit-identical** to both the thread executor and the
monolithic engine (verified before anything is timed).

The speedup floor is core-count aware: process parallelism cannot
manufacture cores, so on the 2-3 core hosts CI sometimes schedules the
floor degrades gracefully, and on a single usable core the assertion only
requires that the IPC + shared-memory overhead keeps throughput within a
parity band of the single engine.  The measured core count is recorded in
``BENCH_e17.json`` so a baseline number is never read without its context.

Rows:

* ``single``   — monolithic engine, the baseline.
* ``thread``   — 4-shard thread scatter: the recorded GIL floor.
* ``process``  — 4-shard process scatter at 2 and 4 workers.

``BENCH_e17.json`` carries the ``smoke_baseline`` section guarded by
``check_bench_regression.py``.  Run with ``--write-baseline`` to refresh on
representative hardware, or ``--smoke`` for the quick CI sanity check.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

try:
    from _common import print_table
except ImportError:  # script mode: python benchmarks/bench_e17_multiproc.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import print_table

from repro.retrieval import Query, VideoRetrievalEngine
from repro.retrieval.engine import EngineConfig
from repro.service import RetrievalService, ServiceConfig
from repro.sharding import ShardedEngine

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_e17.json"

#: Shard count of the acceptance configuration.
BENCH_SHARDS = 4

#: Worker-process counts timed for the process rows.
WORKER_COUNTS = (2, 4)

#: Terms per query — wide queries keep the per-shard scoring loops hot so
#: the scatter phase dominates IPC and merge overhead.
QUERY_TERMS = 24


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def speedup_floor(cores: int, smoke: bool) -> float:
    """The asserted 4-worker speedup floor for a given core budget.

    >= 4 cores carries the acceptance criterion (2x, relaxed to 1.5x in
    smoke mode where rounds are short and CI vCPUs noisy); fewer cores
    degrade to what process parallelism can physically deliver; a single
    usable core only requires the process path to stay within a parity
    band of the single engine — pipe round trips serialise behind the one
    core, so the band is wide on the full corpus and very wide in smoke
    mode, where sub-100us queries make the scatter almost pure IPC.
    """
    if cores >= 4:
        return 1.5 if smoke else 2.0
    if cores == 3:
        return 1.2 if smoke else 1.3
    if cores == 2:
        return 1.1 if smoke else 1.15
    return 0.1 if smoke else 0.25


def _queries(corpus, count=12):
    """Wide weighted queries drawn from the corpus's own topic vocabulary."""
    topics = corpus.topics.topics()
    queries = []
    for index in range(count):
        terms = []
        offset = 0
        while len(terms) < QUERY_TERMS:
            topic = topics[(index + offset) % len(topics)]
            terms.extend(topic.query_terms)
            offset += 1
        weights = {
            term: 1.0 + 0.25 * (position % 4)
            for position, term in enumerate(terms[:QUERY_TERMS])
        }
        queries.append(Query(term_weights=weights))
    return queries


def _service_engine(corpus, num_shards, executor="thread", process_workers=None):
    config = ServiceConfig(
        scorer="bm25",
        num_shards=num_shards,
        result_cache_size=0,
        executor=executor,
        process_workers=process_workers,
    )
    return RetrievalService.from_corpus(corpus, config=config).engine


def _assert_engine_equivalence(corpus):
    """Process rankings bit-identical to thread and monolithic, pre-timing."""
    queries = _queries(corpus, count=8)
    for scorer in ("bm25", "tfidf", "lm"):
        config = EngineConfig(scorer=scorer, result_cache_size=0)
        mono = VideoRetrievalEngine(corpus.collection, config=config)
        for shards in (1, 2, BENCH_SHARDS):
            thread = ShardedEngine(
                corpus.collection, config=config, num_shards=shards
            )
            process = ShardedEngine(
                corpus.collection,
                config=config,
                num_shards=shards,
                executor="process",
            )
            try:
                for query in queries:
                    expected = mono.search(query)
                    threaded = thread.search(query)
                    actual = process.search(query)
                    for other, label in ((threaded, "thread"), (actual, "process")):
                        assert expected.shot_ids() == other.shot_ids(), (
                            f"{scorer}/{shards}/{label}: ranking ids diverged"
                        )
                        assert [item.score for item in expected.items] == [
                            item.score for item in other.items
                        ], f"{scorer}/{shards}/{label}: ranking scores diverged"
            finally:
                process.close()
                thread.close()


def _measure_engine(engine, queries, rounds):
    for query in queries:  # warm derived caches / publish shard exports
        engine.search(query)
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            engine.search(query)
    elapsed = time.perf_counter() - start
    total = rounds * len(queries)
    return {
        "requests": total,
        "seconds": elapsed,
        "qps": total / elapsed if elapsed else 0.0,
    }


def _cpu_rows(corpus, rounds, query_count=12):
    """Pure-CPU scatter: single engine vs thread floor vs process workers."""
    queries = _queries(corpus, count=query_count)
    rows = []

    single = _service_engine(corpus, 1)
    baseline = _measure_engine(single, queries, rounds)
    rows.append(
        {"row": "single", "workers": 1, **baseline, "speedup": 1.0}
    )
    baseline_qps = baseline["qps"]

    thread = _service_engine(corpus, BENCH_SHARDS)
    try:
        measured = _measure_engine(thread, queries, rounds)
    finally:
        thread.close()
    rows.append(
        {
            "row": "thread",
            "workers": BENCH_SHARDS,
            **measured,
            "speedup": measured["qps"] / baseline_qps if baseline_qps else 0.0,
        }
    )

    for workers in WORKER_COUNTS:
        engine = _service_engine(
            corpus, BENCH_SHARDS, executor="process", process_workers=workers
        )
        try:
            measured = _measure_engine(engine, queries, rounds)
        finally:
            engine.close()
        rows.append(
            {
                "row": "process",
                "workers": workers,
                **measured,
                "speedup": measured["qps"] / baseline_qps if baseline_qps else 0.0,
            }
        )
    return rows


def cpu_speedup_4workers(rows) -> float:
    for row in rows:
        if row["row"] == "process" and row["workers"] == max(WORKER_COUNTS):
            return row["speedup"]
    raise AssertionError("no 4-worker process row measured")


def _sanity_check(rows, smoke):
    for row in rows:
        assert row["qps"] > 0
    cores = usable_cores()
    floor = speedup_floor(cores, smoke)
    speedup = cpu_speedup_4workers(rows)
    assert speedup >= floor, (
        f"pure-CPU process scatter speedup {speedup:.2f}x < {floor:.2f}x floor "
        f"at {max(WORKER_COUNTS)} workers on {cores} usable core(s)"
    )


def run_experiment(bench_corpus, rounds=6, query_count=12):
    _assert_engine_equivalence(bench_corpus)
    return _cpu_rows(bench_corpus, rounds=rounds, query_count=query_count)


def test_e17_multiproc(benchmark, bench_corpus):
    rows = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("E17: pure-CPU scatter, thread GIL floor vs process workers", rows)
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        print_table(
            "E17 baseline (from BENCH_e17.json, for trajectory — not asserted)",
            baseline.get("cpu", []),
        )
    _sanity_check(rows, smoke=True)


def _main(argv):
    smoke = "--smoke" in argv
    write_baseline = "--write-baseline" in argv
    from repro.collection import CollectionConfig, generate_corpus

    if smoke:
        corpus = generate_corpus(
            seed=7,
            config=CollectionConfig(days=4, stories_per_day=5, topic_count=6),
        )
        rounds, query_count = 3, 12
    else:
        corpus = generate_corpus(
            seed=2008,
            config=CollectionConfig(
                days=24, stories_per_day=9, topic_count=16, min_stories_per_topic=3
            ),
        )
        rounds, query_count = 6, 12
    rows = run_experiment(corpus, rounds=rounds, query_count=query_count)
    print_table("E17: pure-CPU scatter, thread GIL floor vs process workers", rows)
    _sanity_check(rows, smoke=smoke)
    cores = usable_cores()
    if write_baseline:
        smoke_baseline = None
        if BASELINE_PATH.exists():
            smoke_baseline = json.loads(BASELINE_PATH.read_text()).get(
                "smoke_baseline"
            )
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    **({"smoke_baseline": smoke_baseline} if smoke_baseline else {}),
                    "corpus": "smoke" if smoke else "bench standard (seed 2008)",
                    "rounds": rounds,
                    "bench_shards": BENCH_SHARDS,
                    "worker_counts": list(WORKER_COUNTS),
                    "usable_cores": cores,
                    "asserted_floor": speedup_floor(cores, smoke),
                    "note": (
                        "Pure-CPU bm25 scatter with wide weighted queries. "
                        "single = monolithic engine; thread = 4-shard thread "
                        "scatter (the GIL floor E13/E15 record); process = "
                        "4-shard shared-memory process scatter. The speedup "
                        "floor is core-count aware (2x at >= 4 usable cores, "
                        "graded below, parity band on 1 core) because process "
                        "parallelism cannot manufacture cores; usable_cores "
                        "records the budget these numbers were measured "
                        "under. Rankings verified bit-identical monolithic "
                        "vs thread vs process (all scorers, shard counts "
                        "1/2/4) before timing."
                    ),
                    "cpu": rows,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    print(
        f"e17 ok: process rankings bit-identical; 4-worker pure-CPU speedup "
        f"{cpu_speedup_4workers(rows):.2f}x >= "
        f"{speedup_floor(cores, smoke):.2f}x floor on {cores} usable core(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
