"""Shared helpers for the benchmark harness (table printing)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def print_table(title: str, rows: List[Dict[str, object]],
                columns: Optional[Sequence[str]] = None) -> None:
    """Print experiment rows in a compact fixed-width table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    header = " | ".join(f"{name:>18}" for name in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for name in columns:
            value = row.get(name, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4f}")
            else:
                cells.append(f"{str(value):>18}")
        print(" | ".join(cells))
