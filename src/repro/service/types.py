"""Typed request/response surface of the retrieval service.

These frozen dataclasses are the *wire format* of :class:`~repro.service.
service.RetrievalService`: callers build :class:`SearchRequest` /
:class:`FeedbackBatch` values and receive :class:`SearchResponse` /
:class:`SessionInfo` values back, without ever touching the internal
:class:`~repro.retrieval.results.ResultList` or session objects.  Keeping
the boundary to plain immutable values is what lets the service evolve its
internals (caching, sharding, remote transports) without breaking callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.feedback.events import InteractionEvent
from repro.retrieval.results import ResultItem, ResultList


@dataclass(frozen=True)
class SearchHit:
    """One ranked shot in a :class:`SearchResponse`."""

    shot_id: str
    score: float
    rank: int
    story_id: str = ""
    video_id: str = ""
    headline: str = ""
    category: str = ""
    duration_seconds: float = 0.0

    @classmethod
    def from_result_item(cls, item: ResultItem) -> "SearchHit":
        """Convert an internal result item into a service hit."""
        return cls(
            shot_id=item.shot_id,
            score=item.score,
            rank=item.rank,
            story_id=item.story_id,
            video_id=item.video_id,
            headline=item.headline,
            category=item.category,
            duration_seconds=item.duration_seconds,
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for logging and JSON transports."""
        return {
            "shot_id": self.shot_id,
            "score": self.score,
            "rank": self.rank,
            "story_id": self.story_id,
            "video_id": self.video_id,
            "headline": self.headline,
            "category": self.category,
            "duration_seconds": self.duration_seconds,
        }


@dataclass(frozen=True)
class SearchRequest:
    """One user's search call.

    Attributes
    ----------
    user_id:
        Who is searching.  Required: the service is multi-user and every
        request is resolved against that user's sessions.
    query:
        Free-text query.
    session_id:
        Target an existing session explicitly.  When omitted the service
        reuses the user's most recent compatible session, or opens a new
        one with the service defaults.
    topic_id:
        The search topic being pursued (used for evaluation bookkeeping).
    limit:
        Maximum results to return; service default when ``None``.
    """

    user_id: str
    query: str
    session_id: Optional[str] = None
    topic_id: Optional[str] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("SearchRequest.user_id must be non-empty")
        if self.limit is not None and self.limit <= 0:
            raise ValueError("SearchRequest.limit must be positive when given")


@dataclass(frozen=True)
class SearchResponse:
    """The ranked answer to one :class:`SearchRequest`."""

    session_id: str
    user_id: str
    query: str
    hits: Tuple[SearchHit, ...] = ()
    topic_id: Optional[str] = None
    iteration: int = 1
    policy: str = ""

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[SearchHit]:
        return iter(self.hits)

    def shot_ids(self) -> List[str]:
        """The ranked shot ids."""
        return [hit.shot_id for hit in self.hits]

    def top(self, count: int) -> Tuple[SearchHit, ...]:
        """The first ``count`` hits."""
        return self.hits[:count]

    def scores(self) -> Dict[str, float]:
        """A ``{shot_id: score}`` view of the ranking."""
        return {hit.shot_id: hit.score for hit in self.hits}

    @classmethod
    def from_result_list(
        cls,
        results: ResultList,
        *,
        session_id: str,
        user_id: str,
        iteration: int,
        policy: str,
    ) -> "SearchResponse":
        """Build a response from an internal result list."""
        return cls(
            session_id=session_id,
            user_id=user_id,
            query=results.query_text,
            hits=tuple(SearchHit.from_result_item(item) for item in results),
            topic_id=results.topic_id,
            iteration=iteration,
            policy=policy,
        )


@dataclass(frozen=True)
class FeedbackBatch:
    """A batch of interaction events a user produced since their last query.

    Events are routed to the user's session (explicitly via ``session_id``
    or implicitly to their most recent session) where they update the
    implicit/explicit evidence stores according to the session's policy.
    """

    user_id: str
    events: Tuple[InteractionEvent, ...] = ()
    session_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("FeedbackBatch.user_id must be non-empty")
        # Accept any iterable of events but always store an immutable tuple.
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class SessionInfo:
    """A snapshot of one managed session's public state."""

    session_id: str
    user_id: str
    policy: str
    weighting_scheme: str
    topic_id: Optional[str] = None
    result_limit: int = 50
    iteration_count: int = 0
    seen_shot_count: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for logging and JSON transports."""
        return {
            "session_id": self.session_id,
            "user_id": self.user_id,
            "policy": self.policy,
            "weighting_scheme": self.weighting_scheme,
            "topic_id": self.topic_id,
            "result_limit": self.result_limit,
            "iteration_count": self.iteration_count,
            "seen_shot_count": self.seen_shot_count,
        }
