"""Tests for the public service facade (repro.service).

Covers the session lifecycle (create -> search -> observe -> close), LRU
eviction, registry error paths and extension, per-user isolation, and the
guarantee that ``search_batch`` matches sequential per-session searches.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import implicit_only_policy
from repro.feedback import EventKind, InteractionEvent
from repro.service import (
    FeedbackBatch,
    RetrievalService,
    SearchHit,
    SearchRequest,
    SearchResponse,
    ServiceConfig,
    SessionInfo,
    SessionNotFoundError,
    UnknownComponentError,
    available_policies,
    available_scorers,
    available_weighting_schemes,
    register_policy,
    register_scorer,
    register_weighting_scheme,
)
from repro.service.registry import (
    POLICY_REGISTRY,
    SCORER_REGISTRY,
    WEIGHTING_SCHEME_REGISTRY,
)


@pytest.fixture()
def service(small_corpus) -> RetrievalService:
    """A fresh service over the shared small corpus."""
    return RetrievalService.from_corpus(small_corpus)


def _topic_query(corpus, index: int = 0):
    topic = corpus.topics.topics()[index]
    return topic, " ".join(topic.query_terms[:2])


def _play_events(response, count: int = 2):
    events = []
    clock = 0.0
    for hit in response.top(count):
        clock += 2.0
        events.append(
            InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=clock,
                             shot_id=hit.shot_id, rank=hit.rank)
        )
        clock += max(1.0, hit.duration_seconds)
        events.append(
            InteractionEvent(kind=EventKind.PLAY_COMPLETE, timestamp=clock,
                             shot_id=hit.shot_id, rank=hit.rank)
        )
    return tuple(events)


class TestSessionLifecycle:
    def test_open_search_observe_close(self, service, small_corpus):
        topic, query = _topic_query(small_corpus)
        info = service.open_session("alice", policy="implicit",
                                    topic_id=topic.topic_id)
        assert isinstance(info, SessionInfo)
        assert info.user_id == "alice"
        assert info.policy == "implicit"
        assert info.iteration_count == 0

        first = service.search(SearchRequest(user_id="alice", query=query,
                                             session_id=info.session_id))
        assert isinstance(first, SearchResponse)
        assert len(first) > 0
        assert first.iteration == 1
        assert first.session_id == info.session_id
        assert all(isinstance(hit, SearchHit) for hit in first)

        after_feedback = service.submit_feedback(
            FeedbackBatch(user_id="alice", events=_play_events(first),
                          session_id=info.session_id)
        )
        assert after_feedback.seen_shot_count > 0

        second = service.search(SearchRequest(user_id="alice", query=query,
                                              session_id=info.session_id))
        assert second.iteration == 2
        assert service.session_info(info.session_id).iteration_count == 2

        closed = service.close_session(info.session_id)
        assert closed.iteration_count == 2
        with pytest.raises(SessionNotFoundError):
            service.search(SearchRequest(user_id="alice", query=query,
                                         session_id=info.session_id))

    def test_search_auto_opens_session(self, service, small_corpus):
        _topic, query = _topic_query(small_corpus)
        assert service.session_count == 0
        response = service.search(SearchRequest(user_id="bob", query=query))
        assert service.session_count == 1
        assert response.policy == service.config.policy
        # A second search for the same user reuses the session.
        again = service.search(SearchRequest(user_id="bob", query=query))
        assert again.session_id == response.session_id
        assert again.iteration == 2

    def test_list_sessions_per_user(self, service):
        service.open_session("alice")
        service.open_session("alice")
        service.open_session("bob")
        assert len(service.list_sessions()) == 3
        assert len(service.list_sessions("alice")) == 2
        assert {info.user_id for info in service.list_sessions("bob")} == {"bob"}

    def test_recommendations_from_feedback(self, service, small_corpus):
        topic, query = _topic_query(small_corpus)
        info = service.open_session("carol", policy="implicit",
                                    topic_id=topic.topic_id)
        response = service.search(SearchRequest(user_id="carol", query=query,
                                                session_id=info.session_id))
        service.submit_feedback(FeedbackBatch(user_id="carol",
                                              events=_play_events(response),
                                              session_id=info.session_id))
        recommended = service.recommend("carol", session_id=info.session_id, limit=5)
        assert len(recommended) > 0
        # Recommendations exclude what the user already saw.
        seen = {event.shot_id for event in _play_events(response)}
        assert not seen & set(recommended.shot_ids())


class TestLruEviction:
    def test_oldest_session_evicted_at_capacity(self, small_corpus):
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=3)
        )
        first = service.open_session("u1")
        second = service.open_session("u2")
        third = service.open_session("u3")
        assert service.session_count == 3
        fourth = service.open_session("u4")
        assert service.session_count == 3
        with pytest.raises(SessionNotFoundError):
            service.session_info(first.session_id)
        for info in (second, third, fourth):
            assert service.session_info(info.session_id).session_id == info.session_id

    def test_recent_use_protects_from_eviction(self, small_corpus, small_corpus_query):
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=3)
        )
        first = service.open_session("u1")
        service.open_session("u2")
        service.open_session("u3")
        # Touch the oldest session via a search; u2 becomes the LRU victim.
        service.search(SearchRequest(user_id="u1", query=small_corpus_query,
                                     session_id=first.session_id))
        service.open_session("u4")
        assert first.session_id in [s.session_id for s in service.list_sessions()]
        assert not service.list_sessions("u2")

    def test_implicit_session_reuse_refreshes_recency(self, small_corpus,
                                                      small_corpus_query):
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=2)
        )
        alice = service.open_session("alice")
        service.open_session("bob")
        # Implicitly addressed search (no session_id) must touch alice's
        # session, otherwise her active session becomes the eviction victim.
        response = service.search(SearchRequest(user_id="alice",
                                                query=small_corpus_query))
        assert response.session_id == alice.session_id
        service.open_session("carol")  # must evict idle bob, never active alice
        assert service.list_sessions("alice")
        assert not service.list_sessions("bob")
        follow_up = service.search(SearchRequest(user_id="alice",
                                                 query=small_corpus_query))
        assert follow_up.session_id == alice.session_id
        assert follow_up.iteration == 2


@pytest.fixture()
def small_corpus_query(small_corpus) -> str:
    return _topic_query(small_corpus)[1]


class TestRegistries:
    def test_unknown_scorer_rejected_with_alternatives(self, small_corpus):
        with pytest.raises(UnknownComponentError) as excinfo:
            RetrievalService.from_corpus(
                small_corpus, config=ServiceConfig(scorer="quantum")
            )
        assert "quantum" in str(excinfo.value)
        for name in available_scorers():
            assert name in str(excinfo.value)

    def test_unknown_policy_rejected(self, service):
        with pytest.raises(UnknownComponentError) as excinfo:
            service.open_session("alice", policy="telepathy")
        assert "telepathy" in str(excinfo.value)
        assert "baseline" in str(excinfo.value)

    def test_unknown_weighting_scheme_rejected(self, service):
        with pytest.raises(UnknownComponentError):
            service.open_session("alice", scheme="vibes")

    def test_builtin_names_registered(self):
        assert {"bm25", "tfidf", "lm"} <= set(available_scorers())
        assert {"baseline", "profile", "implicit", "combined"} <= set(available_policies())
        assert {"heuristic", "uniform"} <= set(available_weighting_schemes())

    def test_register_custom_policy_and_use_by_name(self, service):
        name = "test_custom_policy"
        register_policy(
            name, lambda: implicit_only_policy().with_overrides(name=name)
        )
        try:
            info = service.open_session("alice", policy=name)
            assert info.policy == name
        finally:
            POLICY_REGISTRY.unregister(name)
        with pytest.raises(UnknownComponentError):
            service.open_session("alice", policy=name)

    def test_register_custom_scorer_builds_service(self, small_corpus):
        from repro.index.scoring import TfIdfScorer

        name = "test_custom_scorer"
        register_scorer(name, lambda index, config: TfIdfScorer(index))
        try:
            service = RetrievalService.from_corpus(
                small_corpus, config=ServiceConfig(scorer=name)
            )
            topic, query = _topic_query(small_corpus)
            response = service.search(SearchRequest(user_id="alice", query=query))
            assert len(response) > 0
        finally:
            SCORER_REGISTRY.unregister(name)

    def test_register_custom_weighting_scheme(self, service):
        from repro.feedback import WeightingScheme

        name = "test_custom_scheme"
        register_weighting_scheme(
            name, lambda: WeightingScheme(name=name, weights={"play_click": 1.0})
        )
        try:
            info = service.open_session("alice", scheme=name)
            assert info.weighting_scheme == name
        finally:
            WEIGHTING_SCHEME_REGISTRY.unregister(name)

    def test_duplicate_registration_requires_overwrite(self):
        name = "test_duplicate"
        register_policy(name, implicit_only_policy)
        try:
            with pytest.raises(ValueError):
                register_policy(name, implicit_only_policy)
            register_policy(name, implicit_only_policy, overwrite=True)
        finally:
            POLICY_REGISTRY.unregister(name)


class TestUserIsolation:
    def test_feedback_does_not_leak_across_users(self, service, small_corpus):
        topic, query = _topic_query(small_corpus)
        alice = service.open_session("alice", policy="implicit",
                                     topic_id=topic.topic_id)
        bob = service.open_session("bob", policy="implicit",
                                   topic_id=topic.topic_id)

        alice_first = service.search(SearchRequest(user_id="alice", query=query,
                                                   session_id=alice.session_id))
        bob_first = service.search(SearchRequest(user_id="bob", query=query,
                                                 session_id=bob.session_id))
        assert alice_first.shot_ids() == bob_first.shot_ids()

        service.submit_feedback(FeedbackBatch(user_id="alice",
                                              events=_play_events(alice_first),
                                              session_id=alice.session_id))
        # Alice's evidence lives only in her session...
        assert service.adaptive_session(alice.session_id).implicit_evidence()
        assert not service.adaptive_session(bob.session_id).implicit_evidence()
        # ...so Bob's repeated search is unaffected by her feedback.
        bob_second = service.search(SearchRequest(user_id="bob", query=query,
                                                  session_id=bob.session_id))
        assert bob_second.shot_ids() == bob_first.shot_ids()
        assert dict(bob_second.scores()) == dict(bob_first.scores())

    def test_session_of_another_user_is_rejected(self, service, small_corpus):
        _topic, query = _topic_query(small_corpus)
        alice = service.open_session("alice")
        with pytest.raises(PermissionError):
            service.search(SearchRequest(user_id="mallory", query=query,
                                         session_id=alice.session_id))
        with pytest.raises(PermissionError):
            service.submit_feedback(FeedbackBatch(user_id="mallory",
                                                  events=(),
                                                  session_id=alice.session_id))


class TestBatchSearch:
    def _fleet_requests(self, corpus, users: int):
        requests = []
        topics = corpus.topics.topics()
        for index in range(users):
            topic = topics[index % len(topics)]
            requests.append(
                SearchRequest(
                    user_id=f"user{index:02d}",
                    query=" ".join(topic.query_terms[:2]),
                    topic_id=topic.topic_id,
                )
            )
        return requests

    def test_batch_matches_sequential_over_many_sessions(self, small_corpus):
        # Two identically configured services over the same corpus: one
        # searched sequentially, one batched; rankings must coincide exactly.
        users = 10
        sequential_service = RetrievalService.from_corpus(small_corpus)
        batch_service = RetrievalService.from_corpus(small_corpus)
        requests = self._fleet_requests(small_corpus, users)

        sequential = [sequential_service.search(request) for request in requests]
        batched = batch_service.search_batch(requests)

        assert len(batched) == users
        for seq, bat in zip(sequential, batched):
            assert seq.shot_ids() == bat.shot_ids()
            assert seq.scores() == bat.scores()
            assert seq.iteration == bat.iteration

    def test_batch_matches_sequential_with_diverged_feedback(self, small_corpus):
        # Sessions that received different feedback adapt differently; the
        # batch path must keep them distinct (no false cache sharing).
        topic = small_corpus.topics.topics()[0]
        query = " ".join(topic.query_terms[:2])

        def prepare(service):
            infos = [
                service.open_session(f"user{i}", policy="implicit",
                                     topic_id=topic.topic_id)
                for i in range(8)
            ]
            requests = [
                SearchRequest(user_id=f"user{i}", query=query,
                              session_id=infos[i].session_id)
                for i in range(8)
            ]
            first = [service.search(request) for request in requests]
            # Even users watch their top results; odd users give no feedback.
            for i in range(0, 8, 2):
                service.submit_feedback(
                    FeedbackBatch(user_id=f"user{i}",
                                  events=_play_events(first[i], count=1 + i // 2),
                                  session_id=infos[i].session_id)
                )
            return requests

        sequential_service = RetrievalService.from_corpus(small_corpus)
        batch_service = RetrievalService.from_corpus(small_corpus)
        seq_requests = prepare(sequential_service)
        bat_requests = prepare(batch_service)

        sequential = [sequential_service.search(r) for r in seq_requests]
        batched = batch_service.search_batch(bat_requests)
        for seq, bat in zip(sequential, batched):
            assert seq.shot_ids() == bat.shot_ids()
            assert seq.scores() == bat.scores()

    def test_batch_cache_does_not_alias_result_objects(self, small_corpus):
        service = RetrievalService.from_corpus(small_corpus)
        requests = self._fleet_requests(small_corpus, 4)
        responses = service.search_batch(requests)
        # Same underlying engine evaluation, but every response is its own value.
        assert len({id(response.hits) for response in responses}) == len(responses)

    def test_overlapping_cache_scopes_never_leak(self, small_corpus):
        # Interleaved (not strictly nested) scopes, as two concurrent batches
        # would produce: the cache must be gone once the last scope exits.
        service = RetrievalService.from_corpus(small_corpus)
        engine = service.engine
        scope_a = engine.batch_search_cache()
        scope_b = engine.batch_search_cache()
        scope_a.__enter__()
        scope_b.__enter__()
        scope_a.__exit__(None, None, None)
        assert engine._search_cache is not None  # inner scope still live
        scope_b.__exit__(None, None, None)
        assert engine._search_cache is None


class TestTypedRequests:
    def test_request_types_are_frozen(self):
        request = SearchRequest(user_id="alice", query="x")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.query = "y"
        batch = FeedbackBatch(user_id="alice")
        with pytest.raises(dataclasses.FrozenInstanceError):
            batch.user_id = "bob"
        hit = SearchHit(shot_id="s", score=1.0, rank=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            hit.score = 2.0

    def test_empty_user_rejected(self):
        with pytest.raises(ValueError):
            SearchRequest(user_id="", query="x")
        with pytest.raises(ValueError):
            FeedbackBatch(user_id="")

    def test_non_positive_limits_rejected(self, service):
        with pytest.raises(ValueError):
            SearchRequest(user_id="alice", query="x", limit=0)
        with pytest.raises(ValueError):
            SearchRequest(user_id="alice", query="x", limit=-3)
        with pytest.raises(ValueError):
            service.open_session("alice", result_limit=-1)
        with pytest.raises(ValueError):
            service.recommend("alice", limit=0)

    def test_feedback_events_coerced_to_tuple(self):
        events = [InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=1.0,
                                   shot_id="s1")]
        batch = FeedbackBatch(user_id="alice", events=events)
        assert isinstance(batch.events, tuple)
        assert len(batch) == 1

    def test_response_round_trips_to_dicts(self, service, small_corpus):
        _topic, query = _topic_query(small_corpus)
        response = service.search(SearchRequest(user_id="alice", query=query))
        assert response.shot_ids() == [hit.shot_id for hit in response.hits]
        for hit in response.top(3):
            record = hit.as_dict()
            assert record["shot_id"] == hit.shot_id
            assert record["rank"] == hit.rank


class TestServiceConstruction:
    def test_from_directory_round_trip(self, small_corpus, tmp_path):
        from repro.collection import save_corpus

        save_corpus(small_corpus, tmp_path / "corpus")
        service = RetrievalService.from_directory(tmp_path / "corpus")
        topic, query = _topic_query(small_corpus)
        response = service.search(SearchRequest(user_id="alice", query=query,
                                                topic_id=topic.topic_id))
        assert len(response) > 0
        assert service.qrels is not None

    def test_generate_constructor(self):
        from repro.collection import CollectionConfig

        service = RetrievalService.generate(
            seed=11, collection_config=CollectionConfig.small()
        )
        assert service.topics is not None
        assert service.session_count == 0

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_sessions=0)
        with pytest.raises(ValueError):
            ServiceConfig(result_limit=-1)
        with pytest.raises(ValueError):
            ServiceConfig(visual_weight=-0.1)

    def test_process_executor_requires_multiple_shards(self):
        # Regression: this combination used to construct a service whose
        # process pool had no scatter work to run; now it is rejected at
        # config time with an actionable message.
        with pytest.raises(ValueError, match="requires num_shards > 1"):
            ServiceConfig(executor="process", num_shards=1)
        with pytest.raises(ValueError, match="requires num_shards > 1"):
            ServiceConfig(executor="process", num_shards=1, process_workers=4)
        # The valid combinations stay valid.
        assert ServiceConfig(executor="process", num_shards=2).executor == "process"
        assert ServiceConfig(executor="thread", num_shards=1).executor == "thread"

    def test_experiment_runner_rejects_conflicting_configs(self, small_corpus):
        from repro.evaluation import ExperimentRunner
        from repro.retrieval.engine import EngineConfig

        service = RetrievalService.from_corpus(small_corpus)
        with pytest.raises(ValueError):
            ExperimentRunner(small_corpus, engine_config=EngineConfig(scorer="lm"),
                             service=service)
        assert ExperimentRunner(small_corpus, service=service).service is service

    def test_engine_config_mapping(self):
        config = ServiceConfig(scorer="lm", text_weight=0.8, lm_mu=150.0)
        engine_config = config.engine_config()
        assert engine_config.scorer == "lm"
        assert engine_config.text_weight == 0.8
        assert engine_config.lm_mu == 150.0
        # Custom scorer names fall back to a builtin placeholder; the real
        # scorer instance is injected from the registry.
        assert ServiceConfig(scorer="custom").engine_config().scorer == "bm25"


class TestErrorPaths:
    """Error paths the rest of the suite only exercises incidentally."""

    def test_num_shards_validation(self):
        with pytest.raises(ValueError, match="num_shards must be positive"):
            ServiceConfig(num_shards=0)
        with pytest.raises(ValueError, match="num_shards must be positive"):
            ServiceConfig(num_shards=-4)
        assert ServiceConfig(num_shards=1).num_shards == 1
        assert ServiceConfig(num_shards=8).num_shards == 8

    def test_session_expired_error_through_search_batch(self, small_corpus):
        from repro.service import SessionExpiredError

        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(max_sessions=1)
        )
        _topic, query = _topic_query(small_corpus)
        evicted = service.open_session("alice").session_id
        service.open_session("bob")  # capacity 1: evicts alice's session
        batch = [
            SearchRequest(user_id="bob", query=query),
            SearchRequest(user_id="alice", query=query, session_id=evicted),
        ]
        with pytest.raises(SessionExpiredError):
            service.search_batch(batch, max_workers=4)
        # Sequential search surfaces the identical error type.
        with pytest.raises(SessionExpiredError):
            service.search(
                SearchRequest(user_id="alice", query=query, session_id=evicted)
            )

    @pytest.mark.parametrize("num_shards", (1, 2))
    def test_unknown_scorer_key_fails_at_construction(self, small_corpus, num_shards):
        with pytest.raises(UnknownComponentError) as excinfo:
            RetrievalService.from_corpus(
                small_corpus,
                config=ServiceConfig(scorer="no-such-scorer",
                                     num_shards=num_shards),
            )
        message = str(excinfo.value)
        assert "no-such-scorer" in message
        for name in ("bm25", "tfidf", "lm"):
            assert name in message

    def test_unknown_default_policy_key_fails_at_first_use(self, small_corpus):
        # A bad *default* policy name passes construction (policies resolve
        # lazily) and must fail loudly on the first session open — both the
        # explicit and the implicit (auto-open via search) paths.
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(policy="no-such-policy")
        )
        _topic, query = _topic_query(small_corpus)
        with pytest.raises(UnknownComponentError, match="no-such-policy"):
            service.open_session("alice")
        with pytest.raises(UnknownComponentError, match="no-such-policy"):
            service.search(SearchRequest(user_id="alice", query=query))

    def test_unknown_weighting_scheme_key_fails_at_first_use(self, small_corpus):
        service = RetrievalService.from_corpus(
            small_corpus, config=ServiceConfig(weighting_scheme="no-such-scheme")
        )
        with pytest.raises(UnknownComponentError, match="no-such-scheme"):
            service.open_session("alice")
