"""Profile-based personalisation of queries and result lists.

Two personalisation operators are provided, matching the two uses the paper
describes for static profiles:

* :meth:`ProfileReranker.personalise_query` sets the query "into the user's
  interest context" by adding weighted terms drawn from the profile's
  preferred categories (the "java course" example from Arezki et al.); and
* :meth:`ProfileReranker.rerank` re-ranks a result list so that shots from
  the user's preferred categories and concepts are promoted.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.collection.documents import Collection
from repro.profiles.ontology import InterestOntology
from repro.profiles.profile import UserProfile
from repro.retrieval.query import Query
from repro.retrieval.reranking import rerank_with_scores
from repro.retrieval.results import ResultList
from repro.utils.validation import ensure_in_range, ensure_positive


class ProfileReranker:
    """Applies a static user profile to queries and rankings."""

    def __init__(
        self,
        ontology: InterestOntology,
        collection: Optional[Collection] = None,
        expansion_terms_per_category: int = 5,
        expansion_weight: float = 0.4,
        rerank_weight: float = 0.3,
    ) -> None:
        self._ontology = ontology
        self._collection = collection
        self._expansion_terms = ensure_positive(
            expansion_terms_per_category, "expansion_terms_per_category"
        )
        self._expansion_weight = ensure_in_range(
            expansion_weight, 0.0, 1.0, "expansion_weight"
        )
        self._rerank_weight = ensure_in_range(rerank_weight, 0.0, 1.0, "rerank_weight")

    @property
    def rerank_weight(self) -> float:
        """Interpolation weight of profile evidence during re-ranking."""
        return self._rerank_weight

    # -- query personalisation -----------------------------------------------

    def personalise_query(self, query: Query, profile: UserProfile) -> Query:
        """Expand a query with terms and concepts from the user's interests.

        Expansion terms from a category are weighted by the product of the
        profile's interest in that category and the global expansion weight,
        so a mild interest nudges the ranking while a strong interest
        dominates ambiguous queries.
        """
        if profile.is_empty():
            return query
        term_weights: Dict[str, float] = dict(query.term_weights)
        for category, interest in profile.category_interests.items():
            if interest <= 0 or not self._ontology.has_node(category):
                continue
            for term in self._ontology.terms_for_category(category)[: self._expansion_terms]:
                addition = self._expansion_weight * interest
                term_weights[term] = term_weights.get(term, 0.0) + addition
        for term, interest in profile.term_interests.items():
            if interest > 0:
                term_weights[term] = term_weights.get(term, 0.0) + (
                    self._expansion_weight * interest
                )
        concept_weights: Dict[str, float] = dict(query.concept_weights)
        for concept, interest in profile.concept_interests.items():
            if interest > 0:
                concept_weights[concept] = concept_weights.get(concept, 0.0) + interest
        personalised = query.with_term_weights(term_weights)
        personalised.concept_weights = concept_weights
        return personalised

    # -- result re-ranking --------------------------------------------------------

    def profile_scores(
        self, profile: UserProfile, results: ResultList, collection: Collection
    ) -> Dict[str, float]:
        """Score the shots of a result list by profile affinity.

        The affinity of a shot is the profile's interest in the shot's
        category plus a smaller contribution from matching concepts.
        """
        scores: Dict[str, float] = {}
        for item in results:
            if not collection.has_shot(item.shot_id):
                continue
            shot = collection.shot(item.shot_id)
            affinity = profile.interest_in_category(shot.category)
            for concept in shot.concepts:
                affinity += 0.25 * profile.interest_in_concept(concept)
            if affinity > 0:
                scores[item.shot_id] = affinity
        return scores

    def rerank(
        self,
        results: ResultList,
        profile: UserProfile,
        collection: Optional[Collection] = None,
        weight: Optional[float] = None,
    ) -> ResultList:
        """Re-rank a result list towards the user's static interests."""
        target_collection = collection or self._collection
        if target_collection is None:
            raise ValueError("a collection is required to rerank by profile")
        if profile.is_empty() or len(results) == 0:
            return results
        scores = self.profile_scores(profile, results, target_collection)
        if not scores:
            return results
        return rerank_with_scores(
            results,
            scores,
            weight if weight is not None else self._rerank_weight,
            collection=target_collection,
        )
