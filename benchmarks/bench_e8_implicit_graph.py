"""E8 — Community-based implicit feedback (the implicit graph of Vallet et al.).

The paper's discussion reports that mining "community based implicit
feedback ... from the interactions of previous users" improved retrieval and
let users "explore the collection to a greater extent".  We build the
implicit graph from a batch of past simulated sessions, then compare new
sessions with and without graph-based recommendations folded into their
rankings, reporting MAP and an exploration measure (distinct relevant shots
exposed in the top ranks).
"""

from __future__ import annotations

from _common import print_table

from repro.core import baseline_policy, implicit_only_policy
from repro.evaluation import ExperimentCondition, average_precision, mean_metric
from repro.retrieval import rerank_with_scores
from repro.simulation import build_graph_from_logs, shot_durations_from_collection

PAST_USERS = 10
NEW_USERS = 8
GRAPH_WEIGHT = 0.35


def run_experiment(bench_runner, bench_corpus):
    durations = shot_durations_from_collection(bench_corpus.collection)

    # Phase 1: a community of past users interacts with the system.
    past_condition = ExperimentCondition(
        name="past_community", policy=implicit_only_policy(),
        user_count=PAST_USERS, topics_per_user=2, seed=808,
    )
    past = bench_runner.run_condition(past_condition)
    graph = build_graph_from_logs(past.session_logs(), shot_durations=durations)

    # Phase 2: new users run the same topics; their final rankings are scored
    # with and without community evidence.
    new_condition = ExperimentCondition(
        name="new_users", policy=baseline_policy(),
        user_count=NEW_USERS, topics_per_user=2, seed=809,
    )
    new_users = bench_runner.run_condition(new_condition)

    without_ap, with_ap = [], []
    without_explored, with_explored = [], []
    for record in new_users.sessions:
        judgements = bench_corpus.qrels.judgements_for(record.topic_id)
        final = record.outcome.iterations[-1]
        base_ranking = final.result_shot_ids
        without_ap.append(average_precision(base_ranking, judgements))
        relevant = bench_corpus.qrels.relevant_shots(record.topic_id)
        without_explored.append(
            len(set(base_ranking[:20]) & relevant)
        )

        query_text = final.query_text
        evidence = graph.recommendation_scores(
            query_text=query_text,
            session_shot_evidence={
                shot_id: 1.0 for shot_id in record.outcome.relevant_shots_found
            },
        )
        if evidence:
            results = rerank_with_scores(
                _as_result_list(base_ranking, query_text), evidence, GRAPH_WEIGHT
            )
            reranked = results.shot_ids()
        else:
            reranked = base_ranking
        with_ap.append(average_precision(reranked, judgements))
        with_explored.append(len(set(reranked[:20]) & relevant))

    rows = [
        {
            "system": "without community graph",
            "map": mean_metric(without_ap),
            "relevant_in_top20": mean_metric(float(v) for v in without_explored),
        },
        {
            "system": "with community graph",
            "map": mean_metric(with_ap),
            "relevant_in_top20": mean_metric(float(v) for v in with_explored),
        },
    ]
    graph_stats = {
        "sessions_ingested": graph.session_count,
        "nodes": graph.node_count,
        "edges": graph.edge_count,
    }
    return rows, graph_stats


def _as_result_list(ranking, query_text):
    from repro.retrieval import ResultList

    scores = {shot_id: float(len(ranking) - index) for index, shot_id in enumerate(ranking)}
    return ResultList.from_scores(query_text, scores, limit=len(ranking))


def test_e8_implicit_graph(benchmark, bench_runner, bench_corpus):
    rows, graph_stats = benchmark.pedantic(
        run_experiment, args=(bench_runner, bench_corpus), rounds=1, iterations=1
    )
    print_table("E8: community implicit graph recommendation", rows)
    print("implicit graph:", graph_stats)
    without = next(row for row in rows if row["system"] == "without community graph")
    with_graph = next(row for row in rows if row["system"] == "with community graph")
    # Expected shape: community evidence improves both ranking quality and the
    # amount of relevant material surfaced in the top ranks.
    assert with_graph["map"] >= without["map"]
    assert with_graph["relevant_in_top20"] >= without["relevant_in_top20"]
    assert graph_stats["edges"] > 0
