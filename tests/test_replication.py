"""The replication tier under fire: tailing, staleness, failover, chaos.

The replication contract: a replica's state is always a **true prefix**
of the primary's write history — bit-identical (same canonical digest,
same rankings) to the primary at the same applied LSN — and failover
promotion loses nothing beyond the acknowledged gap-free prefix.
Injected faults: primaries killed mid-ingest (abandoned, never closed),
torn WAL tails, compaction racing a tailing replica, stale replicas
refusing bounded-staleness reads, concurrent-write promotion races, and
the full seeded chaos schedule.

All tests carry the ``replication`` marker (``pytest -m replication``).
"""

from __future__ import annotations

import threading

import pytest

from repro import cli
from repro.durability import (
    RecoveryError,
    RecoveryManager,
    engine_state_digest,
    verify_directory,
)
from repro.durability.wal import WalSegment, segment_filename
from repro.feedback import EventKind, InteractionEvent
from repro.replication import (
    ChaosEvent,
    ChaosSchedule,
    NoReplicaAvailableError,
    PrimaryUnavailableError,
    ReplicaLaggingError,
    ReplicaServer,
    ReplicatedService,
    ReplicationConfig,
    ReplicationError,
    run_replicated_loadtest,
)
from repro.service import (
    FeedbackBatch,
    RetrievalService,
    SearchRequest,
    ServiceConfig,
)
from repro.serving.metrics import MetricsRegistry
from repro.workload.ingest import (
    apply_ingest,
    service_feature_dim,
    synthetic_ingest_ops,
)

pytestmark = pytest.mark.replication

SEED = 13

QUERIES = ("election protest flood", "summit economy", "wildfire strike")


def _durable_config(directory, num_shards=1, interval=10_000, **overrides):
    return ServiceConfig(
        num_shards=num_shards,
        durability_dir=str(directory),
        snapshot_interval_ops=interval,
        fsync_policy="never",
        result_cache_size=0,
        **overrides,
    )


def _ops(service, count, seed=SEED):
    return synthetic_ingest_ops(
        count, seed=seed, feature_dim=service_feature_dim(service)
    )


def _prefix_digests(corpus, count, num_shards=1):
    """Digest of an uninterrupted in-memory run after each op prefix."""
    service = RetrievalService(
        corpus.collection,
        config=ServiceConfig(num_shards=num_shards, result_cache_size=0),
    )
    digests = [engine_state_digest(service.engine)]
    for op in _ops(service, count):
        apply_ingest(service, [op])
        digests.append(engine_state_digest(service.engine))
    service.close()
    return digests


def _ranking(results):
    return [(item.shot_id, item.score) for item in results]


def _corpus_queries(corpus, count=3):
    """Queries drawn from the corpus's own transcripts (non-empty hits)."""
    queries = []
    for shot in corpus.collection.iter_shots():
        words = [w for w in shot.transcript.lower().split() if len(w) > 3]
        if len(words) >= 2:
            queries.append(" ".join(words[:3]))
        if len(queries) == count:
            break
    assert queries, "corpus has no usable transcripts"
    return queries


class TestReplicaTailing:
    @pytest.mark.parametrize("scorer", ("bm25", "tfidf", "lm"))
    @pytest.mark.parametrize("num_shards", (1, 4))
    def test_replica_reads_bit_identical(
        self, analysed_corpus, tmp_path, scorer, num_shards
    ):
        # The acceptance differential: at the same applied LSN, replica
        # rankings and state digest must be byte-identical to the
        # primary's, across scorers and shard counts.
        config = _durable_config(tmp_path / "dur", num_shards, scorer=scorer)
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            apply_ingest(primary, _ops(primary, 10))
            replica.catch_up()
            assert replica.applied_lsn == primary.engine.durability.wal.last_lsn
            assert replica.state_digest() == engine_state_digest(primary.engine)
            rankings = []
            for query in _corpus_queries(analysed_corpus):
                rankings.append(_ranking(replica.search(query, limit=20)))
                assert rankings[-1] == _ranking(
                    primary.engine.search_text(query, limit=20)
                )
            assert any(rankings)  # the differential compared real hits
        finally:
            replica.close()
            primary.close()

    def test_incremental_polls_apply_only_new_records(
        self, analysed_corpus, tmp_path
    ):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            total = 0
            for op in _ops(primary, 8):
                apply_ingest(primary, [op])
                total += replica.poll()
            assert total == 8
            assert replica.poll() == 0  # nothing new: polls are incremental
            stats = replica.statistics()
            assert stats["records_applied"] == 8
            assert stats["restarts"] == 0
        finally:
            replica.close()
            primary.close()

    def test_torn_tail_never_applied(self, analysed_corpus, tmp_path):
        # A primary killed mid-append leaves a torn final record; the
        # replica must stop at the durable prefix, never decode garbage.
        directory = tmp_path / "dur"
        references = _prefix_digests(analysed_corpus, 6)
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(directory)
        )
        apply_ingest(primary, _ops(primary, 6))
        # Abandon the primary (simulated kill: no close, no checkpoint),
        # then tear the last record's frame.
        segment_path = directory / segment_filename(0)
        data = segment_path.read_bytes()
        segment_path.write_bytes(data[:-7])
        replica = ReplicaServer(directory, corpus=analysed_corpus)
        try:
            replica.catch_up()
            assert replica.applied_lsn == 5
            assert replica.state_digest() == references[5]
        finally:
            replica.close()

    def test_feedback_records_ship_without_changing_index_state(
        self, analysed_corpus, tmp_path
    ):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            apply_ingest(primary, _ops(primary, 2))
            replica.catch_up()
            digest_before = replica.state_digest()
            info = primary.open_session("alice")
            response = primary.search(
                SearchRequest(
                    user_id="alice",
                    query=QUERIES[0],
                    session_id=info.session_id,
                )
            )
            hit = response.top(1)[0]
            primary.submit_feedback(
                FeedbackBatch(
                    user_id="alice",
                    events=[
                        InteractionEvent(
                            kind=EventKind.PLAY_CLICK,
                            timestamp=1.0,
                            shot_id=hit.shot_id,
                            rank=hit.rank,
                        )
                    ],
                    session_id=info.session_id,
                )
            )
            applied = replica.poll()
            assert applied == 1  # the feedback batch advanced the LSN...
            assert replica.statistics()["feedback_batches"] == 1
            assert replica.state_digest() == digest_before  # ...not the index
            assert replica.applied_lsn == primary.engine.durability.wal.last_lsn
        finally:
            replica.close()
            primary.close()


class TestBoundedStaleness:
    def test_stale_replica_refuses_with_lag(self, analysed_corpus, tmp_path):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            apply_ingest(primary, _ops(primary, 5))
            primary_lsn = primary.engine.durability.wal.last_lsn
            with pytest.raises(ReplicaLaggingError) as excinfo:
                replica.search(
                    QUERIES[0], primary_lsn=primary_lsn, max_lag_lsn=2
                )
            assert excinfo.value.lag_lsn == 5
            replica.catch_up()
            # Caught up: the same bounded read now succeeds.
            assert replica.search(
                QUERIES[0], primary_lsn=primary_lsn, max_lag_lsn=0
            )
        finally:
            replica.close()
            primary.close()

    def test_time_bound_uses_injected_clock(self, analysed_corpus, tmp_path):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        now = [0.0]
        replica = ReplicaServer(
            tmp_path / "dur",
            corpus=analysed_corpus,
            config=config,
            clock=lambda: now[0],
        )
        try:
            replica.poll()
            now[0] = 10.0
            with pytest.raises(ReplicaLaggingError) as excinfo:
                replica.search(QUERIES[0], max_lag_seconds=5.0)
            assert excinfo.value.lag_seconds == pytest.approx(10.0)
            replica.poll()  # refreshes the staleness clock
            assert replica.search(QUERIES[0], max_lag_seconds=5.0) is not None
        finally:
            replica.close()
            primary.close()

    def test_config_bounds_are_the_default(self, analysed_corpus, tmp_path):
        config = _durable_config(tmp_path / "dur").with_overrides(
            replication=ReplicationConfig(max_lag_lsn=1)
        )
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            apply_ingest(primary, _ops(primary, 4))
            primary_lsn = primary.engine.durability.wal.last_lsn
            with pytest.raises(ReplicaLaggingError):
                replica.search(QUERIES[0], primary_lsn=primary_lsn)
            # An explicit None disables the configured bound per call.
            assert (
                replica.search(
                    QUERIES[0], primary_lsn=primary_lsn, max_lag_lsn=None
                )
                is not None
            )
        finally:
            replica.close()
            primary.close()


class TestCompactionGuard:
    def test_truncate_clamped_to_slowest_acknowledged_lsn(
        self, analysed_corpus, tmp_path
    ):
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        try:
            apply_ingest(primary, _ops(primary, 10))
            wal = primary.engine.durability.wal
            wal.register_replica("r1", acknowledged_lsn=3)
            wal.truncate_through(8)
            records, _ = wal.scan_all()
            lsns = [int(record["lsn"]) for record in records]
            # Records 4..10 survive: the guard held back everything the
            # replica has not acknowledged, snapshot coverage or not.
            assert lsns == list(range(4, 11))
            wal.acknowledge_replica("r1", 8)
            wal.truncate_through(8)
            records, _ = wal.scan_all()
            assert [int(r["lsn"]) for r in records] == [9, 10]
            wal.unregister_replica("r1")
            wal.truncate_through(10)
            assert wal.scan_all()[0] == []
        finally:
            primary.close()

    def test_registered_replica_survives_live_compaction(
        self, analysed_corpus, tmp_path
    ):
        # Checkpoint-while-tailing, guarded arm: a registered replica
        # polling across concurrent compactions finishes every segment it
        # reads — no snapshot restarts, digest equality at the end.
        config = _durable_config(tmp_path / "dur", num_shards=2, interval=6)
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        service = ReplicatedService(primary)
        try:
            replica = service.add_replica("r1")
            for op in _ops(primary, 30):
                apply_ingest(service, [op])
                service.poll_replicas()
            assert replica.statistics()["restarts"] == 0
            assert replica.state_digest() == engine_state_digest(
                primary.engine
            )
        finally:
            service.close()

    def test_unregistered_replica_restarts_from_snapshot(
        self, analysed_corpus, tmp_path
    ):
        # Checkpoint-while-tailing, unguarded arm: compaction truncates
        # the log in front of a replica that is not pinning it; the
        # replica must restart cleanly from the newest snapshot — never
        # stitch a torn view across the truncation.
        config = _durable_config(tmp_path / "dur", interval=5)
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            apply_ingest(primary, _ops(primary, 23))  # several compactions
            replica.catch_up()
            assert replica.statistics()["restarts"] >= 1
            assert replica.applied_lsn == primary.engine.durability.wal.last_lsn
            assert replica.state_digest() == engine_state_digest(
                primary.engine
            )
        finally:
            replica.close()
            primary.close()


class TestPromotion:
    def test_promotion_after_kill_preserves_digest(
        self, analysed_corpus, tmp_path
    ):
        config = _durable_config(tmp_path / "dur", num_shards=2)
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        service = ReplicatedService(primary)
        try:
            service.add_replica("r1")
            service.add_replica("r2")
            apply_ingest(service, _ops(primary, 12))
            service.poll_replicas()
            service.kill_primary()
            with pytest.raises(PrimaryUnavailableError):
                service.index_documents({"blocked": "no primary"})
            result = service.promote()
            assert result.digests_match
            assert result.promoted_lsn == result.replica_lsn == 12
            # The promoted primary is writable and the surviving replica
            # keeps following it.
            apply_ingest(service, _ops(service.primary, 14)[12:])
            service.poll_replicas()
            survivor = service.replica(service.replica_ids[0])
            assert survivor.state_digest() == engine_state_digest(
                service.primary.engine
            )
        finally:
            service.close()

    def test_promotion_repairs_torn_tail(self, analysed_corpus, tmp_path):
        directory = tmp_path / "dur"
        references = _prefix_digests(analysed_corpus, 8)
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(directory)
        )
        apply_ingest(primary, _ops(primary, 8))
        # Abandoned mid-append: torn final record on disk.
        segment_path = directory / segment_filename(0)
        segment_path.write_bytes(segment_path.read_bytes()[:-5])
        replica = ReplicaServer(directory, corpus=analysed_corpus)
        result = replica.promote()
        try:
            assert result.replica_lsn == 7
            assert result.digests_match
            assert result.promoted_digest == references[7]
            # The repaired log accepts writes again, LSNs continuing
            # densely from the durable prefix.
            result.service.index_documents({"post-promotion": "doc works"})
            assert result.service.engine.durability.wal.last_lsn == 8
        finally:
            result.service.close()

    def test_promotion_race_with_concurrent_writes(
        self, analysed_corpus, tmp_path
    ):
        # A writer hammers the primary while another thread kills it and
        # promotes: every acknowledged write must survive into the
        # promoted state (clean-run oracle over the acked prefix).
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        service = ReplicatedService(primary)
        ops = _ops(primary, 40)
        acked = []
        started = threading.Event()

        def writer():
            for index, op in enumerate(ops):
                try:
                    apply_ingest(service, [op])
                except PrimaryUnavailableError:
                    break
                acked.append(index)
                if index == 10:
                    started.set()

        thread = threading.Thread(target=writer)
        try:
            service.add_replica("r1")
            thread.start()
            started.wait(timeout=30)
            service.kill_primary()
            thread.join(timeout=30)
            assert not thread.is_alive()
            result = service.promote()
            assert result.promoted_lsn >= result.replica_lsn
            # Oracle: a clean in-memory run of exactly the acked ops.
            clean = RetrievalService.from_corpus(
                analysed_corpus,
                config=ServiceConfig(result_cache_size=0),
            )
            apply_ingest(clean, [ops[i] for i in sorted(acked)])
            assert engine_state_digest(service.primary.engine) == (
                engine_state_digest(clean.engine)
            )
            clean.close()
        finally:
            thread.join(timeout=5)
            service.close()

    def test_promote_refuses_while_primary_alive(
        self, analysed_corpus, tmp_path
    ):
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        service = ReplicatedService(primary)
        try:
            service.add_replica("r1")
            with pytest.raises(ReplicationError):
                service.promote()
        finally:
            service.close()

    def test_promoted_replica_is_closed(self, analysed_corpus, tmp_path):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        apply_ingest(primary, _ops(primary, 3))
        primary.close()
        replica = ReplicaServer(tmp_path / "dur", corpus=analysed_corpus)
        result = replica.promote()
        try:
            assert replica.closed
            with pytest.raises(ReplicationError):
                replica.search(QUERIES[0])
        finally:
            result.service.close()


class TestRouterReads:
    def test_reads_fan_out_round_robin(self, analysed_corpus, tmp_path):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        metrics = MetricsRegistry()
        service = ReplicatedService(primary, metrics=metrics)
        try:
            r1 = service.add_replica("r1")
            r2 = service.add_replica("r2")
            apply_ingest(service, _ops(primary, 4))
            service.poll_replicas()
            query = _corpus_queries(analysed_corpus, count=1)[0]
            reference = service.search_ranked(query, limit=5)
            assert len(reference) > 0
            for _ in range(3):
                # Every rotation position returns the identical ranking.
                assert _ranking(
                    service.search_ranked(query, limit=5)
                ) == _ranking(reference)
            assert metrics.counter("replica_reads") == 4
            assert metrics.counter("primary_reads") == 0
            assert not r1.closed and not r2.closed
        finally:
            service.close()

    def test_stale_replicas_fall_through_to_primary(
        self, analysed_corpus, tmp_path
    ):
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        metrics = MetricsRegistry()
        service = ReplicatedService(
            primary,
            config=ReplicationConfig(max_lag_lsn=0, read_retries=2),
            metrics=metrics,
        )
        try:
            service.add_replica("r1")
            service.add_replica("r2")
            # Ingest without polling: every replica violates the zero-lag
            # bound, so the read retries through the set and falls through
            # to the primary.
            apply_ingest(service, _ops(primary, 4))
            query = _corpus_queries(analysed_corpus, count=1)[0]
            result = service.search_ranked(query, limit=5)
            assert _ranking(result) == _ranking(
                primary.engine.search_text(query, limit=5)
            )
            assert len(result) > 0
            assert metrics.counter("replica_read_stale") >= 2
            assert metrics.counter("replica_read_retries") >= 1
            assert metrics.counter("primary_reads") == 1
        finally:
            service.close()

    def test_no_replica_and_no_primary_raises(self, analysed_corpus, tmp_path):
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        service = ReplicatedService(primary)
        try:
            service.kill_primary()
            with pytest.raises(NoReplicaAvailableError):
                service.search_ranked(QUERIES[0])
        finally:
            service.close()

    def test_lag_gauges_published_per_replica(self, analysed_corpus, tmp_path):
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        metrics = MetricsRegistry()
        service = ReplicatedService(primary, metrics=metrics)
        try:
            service.add_replica("r1")
            apply_ingest(service, _ops(primary, 4))
            service.poll_replicas()
            gauges = metrics.snapshot()["gauges"]
            assert gauges["replica_lag.r1"] == 0.0
            assert gauges["replica_applied_lsn.r1"] == 4.0
        finally:
            service.close()


class TestPointInTimeRecovery:
    def test_digest_at_every_feasible_cut(self, analysed_corpus, tmp_path):
        directory = tmp_path / "dur"
        count = 8
        references = _prefix_digests(analysed_corpus, count)
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(directory)
        )
        apply_ingest(primary, _ops(primary, count))
        primary.close()
        for cut in range(count + 1):
            state = RecoveryManager(directory, stop_lsn=cut).recover()
            assert state.applied_lsn == cut
            assert state.wal_records_beyond_stop == count - cut
            assert state.state_digest() == references[cut]

    def test_cut_inside_snapshot_only_range_errors(
        self, analysed_corpus, tmp_path
    ):
        directory = tmp_path / "dur"
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(directory, interval=4)
        )
        apply_ingest(primary, _ops(primary, 12))
        primary.close()
        watermark = RecoveryManager(directory).recover().snapshot_lsn
        assert watermark > 1
        with pytest.raises(RecoveryError, match="compacted away"):
            RecoveryManager(directory, stop_lsn=1).recover()
        # The watermark itself is the earliest feasible cut.
        state = RecoveryManager(directory, stop_lsn=watermark).recover()
        assert state.applied_lsn == watermark

    def test_cut_beyond_durable_prefix_recovers_prefix(
        self, analysed_corpus, tmp_path
    ):
        directory = tmp_path / "dur"
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(directory)
        )
        apply_ingest(primary, _ops(primary, 5))
        primary.close()
        state = RecoveryManager(directory, stop_lsn=99).recover()
        assert state.applied_lsn == 5
        assert state.wal_records_beyond_stop == 0

    def test_recover_cli_to_lsn(self, analysed_corpus, tmp_path, capsys):
        import io

        directory = tmp_path / "dur"
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(directory)
        )
        apply_ingest(primary, _ops(primary, 6))
        primary.close()
        out = io.StringIO()
        assert cli.main(["recover", str(directory), "--to-lsn", "4"], out=out) == 0
        text = out.getvalue()
        assert "ingested-ops: 4" in text
        assert "point-in-time cut: stopped at lsn 4" in text


class TestVerifyCommand:
    def _ingested_directory(self, corpus, directory, count=8, interval=10_000):
        primary = RetrievalService.from_corpus(
            corpus, config=_durable_config(directory, interval=interval)
        )
        apply_ingest(primary, _ops(primary, count))
        primary.close()

    def test_clean_directory_passes(self, analysed_corpus, tmp_path):
        directory = tmp_path / "dur"
        self._ingested_directory(analysed_corpus, directory)
        report = verify_directory(directory)
        assert report.ok
        assert report.max_gap_free_lsn == 8
        assert not report.problems

    def test_detects_torn_tail_and_exits_nonzero(
        self, analysed_corpus, tmp_path
    ):
        import io

        directory = tmp_path / "dur"
        self._ingested_directory(analysed_corpus, directory)
        segment_path = directory / segment_filename(0)
        segment_path.write_bytes(segment_path.read_bytes()[:-3])
        report = verify_directory(directory)
        assert not report.ok
        assert any("torn" in problem.lower() for problem in report.problems)
        out = io.StringIO()
        assert cli.main(["verify", str(directory)], out=out) == 1
        assert "DAMAGED" in out.getvalue()

    def test_detects_wal_hole(self, analysed_corpus, tmp_path):
        directory = tmp_path / "dur"
        self._ingested_directory(analysed_corpus, directory)
        segment = WalSegment(directory / segment_filename(0))
        records, _ = segment.scan()
        assert len(records) >= 3
        segment.rewrite(records[:1] + records[2:])  # drop a middle record
        report = verify_directory(directory)
        assert not report.ok
        assert report.gap is not None
        assert any("hole" in problem for problem in report.problems)
        # The gap-free prefix ends just before the hole.
        assert report.max_gap_free_lsn == int(records[0]["lsn"])

    def test_verify_cli_clean_exit(self, analysed_corpus, tmp_path):
        import io

        directory = tmp_path / "dur"
        self._ingested_directory(analysed_corpus, directory)
        out = io.StringIO()
        assert cli.main(["verify", str(directory)], out=out) == 0
        assert "integrity: ok" in out.getvalue()


class TestChaosHarness:
    def test_schedule_is_deterministic(self):
        first = ChaosSchedule.generate(23, 80, ["replica-1", "replica-2"])
        second = ChaosSchedule.generate(23, 80, ["replica-1", "replica-2"])
        assert first == second
        assert any(e.action == "kill_primary" for e in first.events)
        assert any(e.action == "promote" for e in first.events)
        assert all(0 <= e.at_op < 80 for e in first.events)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(at_op=-1, action="promote")
        with pytest.raises(ValueError):
            ChaosEvent(at_op=0, action="meteor")

    def test_chaos_run_oracle_holds(self, analysed_corpus, tmp_path):
        config = ServiceConfig(
            num_shards=2,
            fsync_policy="never",
            snapshot_interval_ops=16,
            result_cache_size=0,
        )
        schedule = ChaosSchedule.generate(23, 50, ["replica-1", "replica-2"])
        report = run_replicated_loadtest(
            analysed_corpus,
            tmp_path / "dur",
            config=config,
            num_replicas=2,
            ingest_ops=50,
            seed=5,
            chaos=schedule,
        )
        assert report["replicas_match"]
        assert report["oracle_match"]
        assert report["acked_ops"] + report["failed_ops"] == 50
        assert len(report["promotions"]) == 1
        assert report["promotions"][0]["digests_match"]
        outcomes = {
            (event["action"], event["outcome"])
            for event in report["chaos_events"]
        }
        assert ("kill_primary", "killed") in outcomes
        assert ("promote", "promoted") in outcomes

    def test_clean_run_matches_full_ingest(self, analysed_corpus, tmp_path):
        # Without chaos every op is acked, so the oracle covers the full
        # stream and every replica converges on the primary digest.
        report = run_replicated_loadtest(
            analysed_corpus,
            tmp_path / "dur",
            config=ServiceConfig(fsync_policy="never", result_cache_size=0),
            num_replicas=2,
            ingest_ops=20,
            seed=5,
        )
        assert report["failed_ops"] == 0
        assert report["replicas_match"] and report["oracle_match"]
        assert report["final_lsn"] == 20


class TestTenantMetrics:
    def test_registry_breaks_latency_down_per_tenant(self):
        registry = MetricsRegistry()
        registry.observe_latency("search", 0.010, tenant="acme")
        registry.observe_latency("search", 0.020, tenant="acme")
        registry.observe_latency("search", 0.030, tenant="globex")
        registry.observe_latency("feedback", 0.005)  # no tenant attribution
        snapshot = registry.snapshot()
        assert snapshot["endpoints"]["search"]["count"] == 3.0
        tenants = snapshot["tenants"]
        assert tenants["acme"]["search"]["count"] == 2.0
        assert tenants["acme"]["search"]["max"] == pytest.approx(0.020)
        assert tenants["globex"]["search"]["count"] == 1.0
        assert "feedback" not in tenants.get("acme", {})


class TestMutationReplication:
    def test_deletes_and_updates_ship_to_replica(self, analysed_corpus, tmp_path):
        # The mutable-corpus record kinds travel the same WAL the ingest
        # records do: after del/upd/delshot the replica must be
        # bit-identical to the primary at the same LSN.
        config = _durable_config(tmp_path / "dur")
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        replica = ReplicaServer(
            tmp_path / "dur", corpus=analysed_corpus, config=config
        )
        try:
            ops = _ops(primary, 10)
            apply_ingest(primary, ops)
            doc_ids = [op[1] for op in ops if op[0] == "doc"]
            shot_ids = [op[1] for op in ops if op[0] == "shot"]
            primary.delete_document(doc_ids[0])
            primary.update_document(doc_ids[1], "ceasefire summit rewrite")
            primary.delete_shot(shot_ids[0])
            replica.catch_up()
            assert replica.applied_lsn == primary.engine.durability.wal.last_lsn
            assert replica.state_digest() == engine_state_digest(primary.engine)
            assert not replica.engine.inverted_index.has_document(doc_ids[0])
            assert not replica.engine.visual_index.has_shot(shot_ids[0])
            assert _ranking(replica.search("ceasefire summit rewrite")) == _ranking(
                primary.engine.search_text("ceasefire summit rewrite")
            )
        finally:
            replica.close()
            primary.close()

    def test_replayed_mutations_are_idempotent_on_replica(
        self, analysed_corpus, tmp_path
    ):
        # A replica restarting from an older snapshot re-applies records it
        # already consumed; deletes of already-absent ids must not wedge it.
        config = _durable_config(tmp_path / "dur", interval=4)
        primary = RetrievalService.from_corpus(analysed_corpus, config=config)
        try:
            ops = _ops(primary, 12)
            apply_ingest(primary, ops)
            doc_ids = [op[1] for op in ops if op[0] == "doc"]
            primary.delete_document(doc_ids[2])
            primary.update_document(doc_ids[3], "verdict launch rewrite")
            replica = ReplicaServer(
                tmp_path / "dur", corpus=analysed_corpus, config=config
            )
            try:
                replica.catch_up()
                assert replica.state_digest() == engine_state_digest(
                    primary.engine
                )
            finally:
                replica.close()
        finally:
            primary.close()

    def test_promotion_after_mutations_preserves_digest(
        self, analysed_corpus, tmp_path
    ):
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        service = ReplicatedService(primary)
        try:
            ops = _ops(primary, 10)
            apply_ingest(service, ops)
            doc_ids = [op[1] for op in ops if op[0] == "doc"]
            service.add_replica("r1")
            service.delete_document(doc_ids[0])
            service.update_document(doc_ids[1], "summit blackout rewrite")
            service.poll_replicas()
            expected = engine_state_digest(service.primary.engine)
            service.kill_primary()
            result = service.promote("r1")
            assert result.digests_match
            assert engine_state_digest(service.primary.engine) == expected
        finally:
            service.close()


class TestCompactionPinRelease:
    def test_remove_replica_unclamps_wal_truncation(
        self, analysed_corpus, tmp_path
    ):
        # Satellite regression: a removed replica's last acknowledged LSN
        # must stop clamping truncate_through — otherwise the WAL retains
        # every segment past that LSN forever.
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        service = ReplicatedService(primary)
        try:
            service.add_replica("r1")  # registered at LSN 0, never polls
            apply_ingest(service, _ops(primary, 8))
            wal = primary.engine.durability.wal
            wal.truncate_through(wal.last_lsn)
            # The lagging replica pins everything it has not acknowledged.
            assert len(wal.scan_all()[0]) == 8
            service.remove_replica("r1")
            assert "r1" not in wal.replica_acknowledgements()
            wal.truncate_through(wal.last_lsn)
            assert wal.scan_all()[0] == []
        finally:
            service.close()

    def test_remove_replica_during_failover_window_releases_pin(
        self, analysed_corpus, tmp_path
    ):
        # The pin lives in the durability manager of the primary the
        # replica was registered with.  Removing the replica while no
        # primary is alive must still release that pin — the manager's
        # directory outlives the crashed process and a promoted successor
        # (or recovery) keeps honouring its registrations.
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        service = ReplicatedService(primary)
        try:
            wal = primary.engine.durability.wal
            service.add_replica("r1")
            service.add_replica("r2")
            apply_ingest(service, _ops(primary, 6))
            service.poll_replicas()
            service.kill_primary()
            assert not service.primary_alive
            service.remove_replica("r2")
            assert "r2" not in wal.replica_acknowledgements()
            assert "r1" in wal.replica_acknowledgements()
        finally:
            service.close()

    def test_poll_after_remove_does_not_resurrect_ack(
        self, analysed_corpus, tmp_path
    ):
        # poll_replicas must re-check membership before acknowledging:
        # acking an unregistered replica raises WalError out of the whole
        # polling round.
        primary = RetrievalService.from_corpus(
            analysed_corpus, config=_durable_config(tmp_path / "dur")
        )
        service = ReplicatedService(primary)
        try:
            service.add_replica("r1")
            service.add_replica("r2")
            apply_ingest(service, _ops(primary, 4))
            service.remove_replica("r1")
            applied = service.poll_replicas()
            assert "r1" not in applied
            assert applied["r2"] == 4
            wal = primary.engine.durability.wal
            assert "r1" not in wal.replica_acknowledgements()
        finally:
            service.close()
