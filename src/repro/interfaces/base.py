"""Interface capability models.

The paper's methodology compares interaction environments — desktop PCs and
interactive TV — whose affordances differ: what actions are available, how
costly each action is for the user, and how many results can be displayed at
once.  An :class:`InterfaceModel` captures exactly those properties.  The
simulation layer asks the interface which actions a user *can* perform and
how much simulated time each costs; the feedback layer is interface-agnostic
and just consumes the resulting events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping

from repro.feedback.events import EventKind
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class ActionCost:
    """The cost of performing one action on a given interface.

    ``time_seconds`` is how long the action takes; ``effort`` is an abstract
    reluctance factor in ``[0, 1]`` — simulated users perform high-effort
    actions less often (entering a query with a remote control is possible
    but painful, so it happens rarely).
    """

    time_seconds: float
    effort: float

    def __post_init__(self) -> None:
        if self.time_seconds < 0:
            raise ValueError("time_seconds must be non-negative")
        if not 0.0 <= self.effort <= 1.0:
            raise ValueError("effort must be in [0, 1]")


class InterfaceModel:
    """Base class describing an interaction environment."""

    #: Short machine name ("desktop", "itv"); subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        results_per_page: int,
        supported_actions: FrozenSet[EventKind],
        action_costs: Mapping[EventKind, ActionCost],
        query_entry_supported: bool = True,
        description: str = "",
    ) -> None:
        ensure_positive(results_per_page, "results_per_page")
        self._results_per_page = results_per_page
        self._supported = frozenset(supported_actions)
        self._costs = dict(action_costs)
        self._query_entry = query_entry_supported
        self.description = description
        missing = self._supported - set(self._costs)
        if missing:
            raise ValueError(
                f"actions missing a cost definition: {sorted(kind.value for kind in missing)}"
            )

    # -- capabilities ----------------------------------------------------------

    @property
    def results_per_page(self) -> int:
        """How many result surrogates the interface shows at once."""
        return self._results_per_page

    @property
    def query_entry_supported(self) -> bool:
        """Whether free-text query entry is practical on this interface."""
        return self._query_entry

    def supported_actions(self) -> FrozenSet[EventKind]:
        """The event kinds a user can generate on this interface."""
        return self._supported

    def supports(self, kind: EventKind) -> bool:
        """True if the interface supports an action."""
        return kind in self._supported

    def cost_of(self, kind: EventKind) -> ActionCost:
        """The cost of an action; unsupported actions raise ``KeyError``."""
        if kind not in self._supported:
            raise KeyError(f"{self.name} interface does not support {kind.value}")
        return self._costs[kind]

    def implicit_action_kinds(self) -> List[EventKind]:
        """Supported actions that yield implicit evidence."""
        from repro.feedback.events import IMPLICIT_EVENT_KINDS

        return sorted(
            (kind for kind in self._supported if kind in IMPLICIT_EVENT_KINDS),
            key=lambda kind: kind.value,
        )

    def explicit_action_kinds(self) -> List[EventKind]:
        """Supported actions that yield explicit judgements."""
        from repro.feedback.events import EXPLICIT_EVENT_KINDS

        return sorted(
            (kind for kind in self._supported if kind in EXPLICIT_EVENT_KINDS),
            key=lambda kind: kind.value,
        )

    def capability_summary(self) -> Dict[str, object]:
        """A dictionary summary used by logs and reports."""
        return {
            "interface": self.name,
            "results_per_page": self._results_per_page,
            "query_entry_supported": self._query_entry,
            "implicit_actions": [kind.value for kind in self.implicit_action_kinds()],
            "explicit_actions": [kind.value for kind in self.explicit_action_kinds()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
