"""Synthetic ASR transcript generation with a controllable error model.

TRECVID search systems index the output of automatic speech recognition,
which is noisy: words are deleted, substituted or (less often) inserted.
The paper notes that "textual sources of video clips, i.e. speech
transcripts, are often not reliable enough to describe the actual content of
a clip" — that unreliability is a first-class parameter here
(:class:`AsrNoiseModel`) so experiments can study how retrieval and feedback
behave as transcript quality degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.collection.vocabulary import Vocabulary
from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_probability


@dataclass(frozen=True)
class AsrNoiseModel:
    """Word-level ASR error model.

    Attributes
    ----------
    deletion_rate:
        Probability that a spoken word is dropped from the transcript.
    substitution_rate:
        Probability that a spoken word is replaced by a random vocabulary
        word (a recognition error).
    insertion_rate:
        Probability, per emitted word, of inserting a spurious extra word.
    """

    deletion_rate: float = 0.08
    substitution_rate: float = 0.12
    insertion_rate: float = 0.03

    def __post_init__(self) -> None:
        ensure_probability(self.deletion_rate, "deletion_rate")
        ensure_probability(self.substitution_rate, "substitution_rate")
        ensure_probability(self.insertion_rate, "insertion_rate")
        if self.deletion_rate + self.substitution_rate > 1.0:
            raise ValueError("deletion_rate + substitution_rate must not exceed 1.0")

    @property
    def word_error_rate(self) -> float:
        """Approximate word error rate implied by the model."""
        return self.deletion_rate + self.substitution_rate + self.insertion_rate

    @classmethod
    def clean(cls) -> "AsrNoiseModel":
        """A perfect recogniser (no errors); useful as an experimental control."""
        return cls(deletion_rate=0.0, substitution_rate=0.0, insertion_rate=0.0)

    @classmethod
    def poor(cls) -> "AsrNoiseModel":
        """A poor recogniser, roughly 45% word error rate."""
        return cls(deletion_rate=0.15, substitution_rate=0.25, insertion_rate=0.05)


class TranscriptGenerator:
    """Generates spoken text for shots and corrupts it with ASR noise.

    The *spoken* text of a shot is sampled from a mixture of the shot's
    category language model, the background model and (for shots relevant to
    a search topic) the topic's discriminative terms.  The *transcript* the
    retrieval system sees is the spoken text passed through the ASR noise
    model.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        noise_model: AsrNoiseModel = AsrNoiseModel(),
        category_weight: float = 0.45,
        topic_weight: float = 0.25,
    ) -> None:
        self._vocabulary = vocabulary
        self._noise = noise_model
        self._category_weight = ensure_probability(category_weight, "category_weight")
        self._topic_weight = ensure_probability(topic_weight, "topic_weight")

    @property
    def noise_model(self) -> AsrNoiseModel:
        """The ASR error model in use."""
        return self._noise

    def spoken_words(
        self,
        rng: RandomSource,
        category: str,
        word_count: int,
        topic_terms: Sequence[str] = (),
    ) -> List[str]:
        """Sample the words actually spoken during a shot."""
        extra_weight = self._topic_weight if topic_terms else 0.0
        return self._vocabulary.sample_mixture(
            rng,
            category=category,
            count=word_count,
            category_weight=self._category_weight,
            extra_terms=topic_terms,
            extra_weight=extra_weight,
        )

    def corrupt(self, rng: RandomSource, words: Sequence[str]) -> List[str]:
        """Apply the ASR error model to a word sequence."""
        all_terms = self._vocabulary.all_terms()
        output: List[str] = []
        for word in words:
            draw = rng.random()
            if draw < self._noise.deletion_rate:
                continue
            if draw < self._noise.deletion_rate + self._noise.substitution_rate:
                output.append(rng.choice(all_terms))
            else:
                output.append(word)
            if rng.boolean(self._noise.insertion_rate):
                output.append(rng.choice(all_terms))
        return output

    def transcript_for_shot(
        self,
        rng: RandomSource,
        category: str,
        word_count: int,
        topic_terms: Sequence[str] = (),
    ) -> str:
        """Generate a noisy transcript for one shot."""
        spoken = self.spoken_words(rng, category, word_count, topic_terms)
        recognised = self.corrupt(rng, spoken)
        return " ".join(recognised)
