"""Tests for simulated users, query strategies, the session simulator,
populations and log replay."""

from __future__ import annotations

import pytest

from repro.core import baseline_policy, implicit_only_policy
from repro.evaluation import make_interface
from repro.feedback import EventKind
from repro.simulation import (
    DriftingQueryStrategy,
    JudgementModel,
    SessionSimulator,
    SimulatedUser,
    TitleQueryStrategy,
    assign_topics,
    build_graph_from_logs,
    casual_user,
    diligent_user,
    generate_population,
    indicator_observations_from_logs,
    lazy_user,
    replay_evidence,
    shot_durations_from_collection,
    standard_personas,
)
from repro.utils.rng import RandomSource


class TestSimulatedUser:
    def test_personas_ordered_by_diligence(self):
        assert diligent_user().surrogate_error_rate < casual_user().surrogate_error_rate
        assert casual_user().surrogate_error_rate < lazy_user().surrogate_error_rate
        assert diligent_user().patience_pages > lazy_user().patience_pages

    def test_standard_personas(self):
        personas = standard_personas()
        assert len(personas) == 3
        assert len({p.user_id for p in personas}) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedUser(user_id="u", surrogate_error_rate=1.5)
        with pytest.raises(ValueError):
            SimulatedUser(user_id="u", patience_pages=0)

    def test_with_overrides(self):
        user = diligent_user().with_overrides(user_id="other", play_propensity=0.5)
        assert user.user_id == "other"
        assert user.play_propensity == 0.5


class TestJudgementModel:
    def test_zero_error_is_truthful(self):
        model = JudgementModel(surrogate_error_rate=0.0, post_play_error_rate=0.0)
        rng = RandomSource(1).spawn("j")
        assert model.judge_from_surrogate(rng, True) is True
        assert model.judge_from_surrogate(rng, False) is False
        assert model.judge_after_playing(rng, True) is True

    def test_full_error_inverts(self):
        model = JudgementModel(surrogate_error_rate=1.0, post_play_error_rate=1.0)
        rng = RandomSource(1).spawn("j")
        assert model.judge_from_surrogate(rng, True) is False
        assert model.judge_after_playing(rng, False) is True

    def test_unrepresentative_keyframe_degrades_judgement(self):
        model = JudgementModel(surrogate_error_rate=0.1)
        rng = RandomSource(1).spawn("j")
        errors_good = sum(
            not model.judge_from_surrogate(rng, True, representativeness=1.0)
            for _ in range(500)
        )
        errors_bad = sum(
            not model.judge_from_surrogate(rng, True, representativeness=0.0)
            for _ in range(500)
        )
        assert errors_bad > errors_good


class TestQueryStrategies:
    def test_title_strategy_initial_query(self, small_corpus):
        topic = small_corpus.topics.topics()[0]
        strategy = TitleQueryStrategy()
        query = strategy.initial_query(topic, RandomSource(1).spawn("q"), 2)
        assert query.split() == topic.query_terms[:2]

    def test_title_strategy_reformulation_adds_terms(self, small_corpus):
        topic = small_corpus.topics.topics()[0]
        strategy = TitleQueryStrategy()
        rng = RandomSource(1).spawn("q")
        first = strategy.initial_query(topic, rng, 2)
        second = strategy.reformulate(topic, rng, [first], 1)
        assert second is not None
        assert len(second.split()) == 3
        assert first in second

    def test_title_strategy_vagueness_substitutes(self, small_corpus):
        topic = small_corpus.topics.topics()[0]
        strategy = TitleQueryStrategy(vagueness=1.0, vague_terms=["generic"])
        query = strategy.initial_query(topic, RandomSource(1).spawn("q"), 3)
        assert query == "generic generic generic"

    def test_title_strategy_eventually_stops(self, small_corpus):
        topic = small_corpus.topics.topics()[0]
        strategy = TitleQueryStrategy()
        rng = RandomSource(1).spawn("q")
        queries = [strategy.initial_query(topic, rng, len(topic.query_terms))]
        for _ in range(len(topic.query_terms) + 3):
            next_query = strategy.reformulate(topic, rng, queries, 1)
            if next_query is None:
                break
            queries.append(next_query)
        assert next_query is None

    def test_drifting_strategy_switches_topic(self, small_corpus):
        topics = small_corpus.topics.topics()
        first, second = topics[0], topics[1]
        strategy = DriftingQueryStrategy(first_topic=first, second_topic=second,
                                         shift_after=1)
        rng = RandomSource(1).spawn("q")
        initial = strategy.initial_query(first, rng, 2)
        assert set(initial.split()) <= set(first.query_terms)
        shifted = strategy.reformulate(first, rng, [initial], 1)
        assert set(shifted.split()) <= set(second.query_terms)

    def test_drifting_strategy_validation(self, small_corpus):
        topics = small_corpus.topics.topics()
        with pytest.raises(ValueError):
            DriftingQueryStrategy(first_topic=topics[0], second_topic=topics[1],
                                  shift_after=0)


class TestSessionSimulator:
    @pytest.fixture()
    def desktop_outcome(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        simulator = SessionSimulator(
            collection=medium_corpus.collection,
            qrels=medium_corpus.qrels,
            interface=make_interface("desktop"),
            seed=303,
        )
        session = adaptive_system.create_session(
            policy=implicit_only_policy(), topic_id=topic.topic_id
        )
        return simulator.run(session, topic, diligent_user()), topic

    def test_outcome_structure(self, desktop_outcome):
        outcome, topic = desktop_outcome
        assert outcome.queries_issued
        assert outcome.iterations
        assert outcome.event_count > 0
        assert outcome.total_time_seconds > 0
        assert outcome.session_log.topic_id == topic.topic_id
        assert outcome.session_log.interface == "desktop"

    def test_log_contains_session_markers(self, desktop_outcome):
        outcome, _topic = desktop_outcome
        kinds = [event.kind for event in outcome.session_log.events]
        assert kinds[0] is EventKind.SESSION_STARTED
        assert kinds[-1] is EventKind.SESSION_ENDED
        assert EventKind.QUERY_SUBMITTED in kinds

    def test_relevant_found_are_actually_relevant(self, desktop_outcome, medium_corpus):
        outcome, topic = desktop_outcome
        for shot_id in outcome.relevant_shots_found:
            assert medium_corpus.qrels.is_relevant(topic.topic_id, shot_id)

    def test_events_respect_interface_capabilities(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        itv = make_interface("itv")
        simulator = SessionSimulator(
            collection=medium_corpus.collection,
            qrels=medium_corpus.qrels,
            interface=itv,
            seed=303,
        )
        session = adaptive_system.create_session(
            policy=implicit_only_policy(), topic_id=topic.topic_id
        )
        outcome = simulator.run(session, topic, diligent_user())
        for event in outcome.session_log.events:
            if event.kind in (EventKind.SESSION_STARTED, EventKind.SESSION_ENDED):
                continue
            assert itv.supports(event.kind), event.kind

    def test_simulation_deterministic_given_seed(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[1]

        def run_once():
            simulator = SessionSimulator(
                collection=medium_corpus.collection,
                qrels=medium_corpus.qrels,
                interface=make_interface("desktop"),
                seed=404,
            )
            session = adaptive_system.create_session(
                policy=baseline_policy(), topic_id=topic.topic_id
            )
            outcome = simulator.run(session, topic, casual_user())
            return [(e.kind.value, e.shot_id) for e in outcome.session_log.events]

        assert run_once() == run_once()

    def test_desktop_emits_more_events_than_itv(self, medium_corpus, adaptive_system):
        topic = medium_corpus.topics.topics()[0]
        user = diligent_user()

        def run_on(interface_name):
            simulator = SessionSimulator(
                collection=medium_corpus.collection,
                qrels=medium_corpus.qrels,
                interface=make_interface(interface_name),
                seed=505,
            )
            session = adaptive_system.create_session(
                policy=baseline_policy(), topic_id=topic.topic_id
            )
            return simulator.run(session, topic, user)

        desktop = run_on("desktop")
        itv = run_on("itv")
        assert desktop.implicit_event_count > itv.implicit_event_count


class TestPopulation:
    def test_population_size_and_unique_ids(self, small_corpus):
        members = generate_population(9, seed=3, topics=small_corpus.topics)
        assert len(members) == 9
        assert len({member.user.user_id for member in members}) == 9

    def test_population_profiles_have_interests(self, small_corpus):
        members = generate_population(6, seed=3, topics=small_corpus.topics)
        assert all(member.profile.category_interests for member in members)

    def test_population_without_topics_has_empty_profiles(self):
        members = generate_population(3, seed=3)
        assert all(not member.profile.category_interests for member in members)

    def test_population_deterministic(self, small_corpus):
        first = generate_population(5, seed=8, topics=small_corpus.topics)
        second = generate_population(5, seed=8, topics=small_corpus.topics)
        assert [m.user.surrogate_error_rate for m in first] == [
            m.user.surrogate_error_rate for m in second
        ]

    def test_assign_topics_counts(self, small_corpus):
        members = generate_population(5, seed=3, topics=small_corpus.topics)
        assignment = assign_topics(members, small_corpus.topics, topics_per_user=2, seed=4)
        assert set(assignment) == {member.user.user_id for member in members}
        assert all(len(topics) == 2 for topics in assignment.values())

    def test_assign_topics_prefers_profile_category(self, small_corpus):
        members = generate_population(8, seed=3, topics=small_corpus.topics)
        assignment = assign_topics(members, small_corpus.topics, topics_per_user=1, seed=4)
        matches = 0
        possible = 0
        for member in members:
            preferred = member.profile.top_categories(1)
            if not preferred or not small_corpus.topics.by_category(preferred[0]):
                continue
            possible += 1
            if assignment[member.user.user_id][0].category == preferred[0]:
                matches += 1
        if possible:
            assert matches / possible > 0.5


class TestReplay:
    @pytest.fixture()
    def logged_sessions(self, medium_corpus, adaptive_system):
        simulator = SessionSimulator(
            collection=medium_corpus.collection,
            qrels=medium_corpus.qrels,
            interface=make_interface("desktop"),
            seed=606,
        )
        logs = []
        for topic in medium_corpus.topics.topics()[:3]:
            session = adaptive_system.create_session(
                policy=baseline_policy(), topic_id=topic.topic_id
            )
            outcome = simulator.run(session, topic, diligent_user())
            logs.append(outcome.session_log)
        return logs

    def test_indicator_observations_from_logs(self, logged_sessions, medium_corpus):
        durations = shot_durations_from_collection(medium_corpus.collection)
        observations = indicator_observations_from_logs(logged_sessions, durations)
        assert len(observations) == 3
        topic_id, per_shot = observations[0]
        assert topic_id.startswith("T")
        assert per_shot

    def test_replay_evidence_matches_live_accumulation_shape(self, logged_sessions,
                                                             medium_corpus):
        durations = shot_durations_from_collection(medium_corpus.collection)
        evidence = replay_evidence(logged_sessions[0], shot_durations=durations)
        assert evidence
        assert any(value > 0 for value in evidence.values())

    def test_replay_with_decay_weights_recent_evidence_more(self, logged_sessions,
                                                            medium_corpus):
        durations = shot_durations_from_collection(medium_corpus.collection)
        static = replay_evidence(logged_sessions[0], decay=1.0, shot_durations=durations)
        decayed = replay_evidence(logged_sessions[0], decay=0.5, shot_durations=durations)
        assert set(decayed) == set(static)
        assert sum(decayed.values()) <= sum(static.values()) + 1e-9

    def test_build_graph_from_logs(self, logged_sessions, medium_corpus):
        durations = shot_durations_from_collection(medium_corpus.collection)
        graph = build_graph_from_logs(logged_sessions, shot_durations=durations)
        assert graph.session_count == 3
        assert graph.node_count > 0
