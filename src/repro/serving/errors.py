"""Typed errors of the async serving edge.

Admission failures and deadline expiries are *expected* outcomes under
load, not bugs, so they get a typed hierarchy callers can branch on:

* :class:`AdmissionRejectedError` — the request never started; the
  ``retry_after`` hint tells a well-behaved client when capacity is
  plausibly available again.  Subclasses say why: the admission queue was
  full (:class:`QueueFullError`), the tenant exhausted its token bucket or
  fair-share allowance (:class:`QuotaExceededError`), or the frontend is
  draining for shutdown (:class:`DrainingError`).
* :class:`DeadlineExceededError` — the request *was* admitted but its
  deadline fired before a result was produced; any straggler work it
  scattered is cooperatively cancelled (see
  :class:`~repro.utils.concurrency.CancellationToken`).
"""

from __future__ import annotations

from typing import Optional


class AdmissionRejectedError(RuntimeError):
    """A request was refused before any retrieval work started.

    ``retry_after`` is a coarse hint in seconds (never negative); clients
    should treat it as the earliest sensible retry time, not a promise.
    """

    def __init__(self, reason: str, retry_after: float = 0.0) -> None:
        self.reason = reason
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(f"{reason} (retry after {self.retry_after:.3f}s)")


class QueueFullError(AdmissionRejectedError):
    """The bounded admission queue is at capacity — explicit backpressure."""

    def __init__(self, depth: int, limit: int, retry_after: float = 0.0) -> None:
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"admission queue full ({depth}/{limit} waiting)", retry_after
        )


class QuotaExceededError(AdmissionRejectedError):
    """The tenant's rate limit or fair-share allowance is exhausted."""

    def __init__(self, tenant: str, reason: str, retry_after: float = 0.0) -> None:
        self.tenant = tenant
        super().__init__(f"tenant {tenant!r}: {reason}", retry_after)


class DrainingError(AdmissionRejectedError):
    """The frontend is draining for shutdown and admits no new work."""

    def __init__(self, retry_after: float = 0.0) -> None:
        super().__init__("frontend is draining: not admitting new requests", retry_after)


class DeadlineExceededError(TimeoutError):
    """An admitted request's deadline fired before its result was ready.

    ``elapsed`` is how long the request was in the system when it timed
    out; ``stage`` says where (``"queued"`` — never got a slot — or
    ``"running"`` — cancelled mid-evaluation).
    """

    def __init__(
        self,
        deadline: float,
        elapsed: float,
        stage: str = "running",
        detail: Optional[str] = None,
    ) -> None:
        self.deadline = float(deadline)
        self.elapsed = float(elapsed)
        self.stage = stage
        super().__init__(
            detail
            or (
                f"deadline of {deadline:.3f}s exceeded after {elapsed:.3f}s "
                f"({stage})"
            )
        )
