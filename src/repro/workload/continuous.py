"""Continuous-ingest workload mix: the mutable corpus under live load.

The mix interleaves the four op families a long-lived news archive sees —
**ingest** (new documents and shots), **delete** (retention expiry),
**update** (corrected transcripts) and **feedback** (session events) —
with concurrent ranked searches, in a stream that is a pure function of
``(seed, spec)``.  The schedule is epoch-barriered:

- Each epoch first applies its mutation slots *sequentially* (every one
  is a WAL append and a kill point on a durable service), then runs its
  search slots *concurrently* on a thread pool, then submits its
  feedback batches sequentially.  Because no mutation races a search,
  every search observes exactly the epoch-boundary corpus, so the
  canonical record of every op is independent of ``search_workers`` —
  running the mix with 1 or 16 threads produces byte-identical logs.
- After every ``compact_every``-th epoch the service compacts its
  tombstones.  Compaction is deliberately *absent* from the state the
  digest pins (the canonical digest is hole-insensitive and rankings are
  bit-identical across compaction), which is exactly the mutable-corpus
  contract this mix exercises end to end.

Durable-prefix oracle: on a durable service every mutation and feedback
op appends exactly one WAL record, sequentially, so the op stream maps
1:1 onto the LSN sequence past the bootstrap watermark.  ``stop_lsn``
replays the stream only until the service's WAL reaches that LSN — a
clean run told to stop at a crashed run's recovered ``applied_lsn``
lands on the byte-identical state digest (the SIGKILL smoke in CI pins
this).
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.feedback.events import EventKind, InteractionEvent
from repro.service.types import FeedbackBatch
from repro.utils.validation import ensure_positive
from repro.workload.ingest import _CONCEPTS, _VOCAB, _mix

PathLike = Union[str, Path]

#: Ranked hits each search record pins (ids and exact scores).
_RECORDED_HITS = 5


@dataclass(frozen=True)
class ContinuousMixSpec:
    """Shape of one continuous-ingest mix run (all ratios per epoch)."""

    epochs: int = 6
    mutations_per_epoch: int = 10
    searches_per_epoch: int = 8
    delete_ratio: float = 0.2
    update_ratio: float = 0.2
    feedback_per_epoch: int = 1
    compact_every: int = 3
    search_workers: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.epochs, "epochs")
        ensure_positive(self.mutations_per_epoch, "mutations_per_epoch")
        ensure_positive(self.search_workers, "search_workers")
        if self.searches_per_epoch < 0:
            raise ValueError(
                f"searches_per_epoch must be non-negative, got "
                f"{self.searches_per_epoch}"
            )
        if self.feedback_per_epoch < 0:
            raise ValueError(
                f"feedback_per_epoch must be non-negative, got "
                f"{self.feedback_per_epoch}"
            )
        if self.compact_every < 0:
            raise ValueError(
                f"compact_every must be non-negative, got {self.compact_every}"
            )
        for name, value in (
            ("delete_ratio", self.delete_ratio),
            ("update_ratio", self.update_ratio),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delete_ratio + self.update_ratio > 1.0:
            raise ValueError(
                "delete_ratio + update_ratio must not exceed 1 (the rest "
                "of the mutation slots are ingests)"
            )


@dataclass
class ContinuousMixResult:
    """Outcome of one mix run: canonical op log + final state digest."""

    spec: ContinuousMixSpec
    records: List[Dict[str, object]]
    state_digest: str
    wall_seconds: float
    counts: Dict[str, int] = field(default_factory=dict)
    #: True when ``stop_lsn`` ended the run before the schedule did.
    stopped_early: bool = False

    def canonical_lines(self) -> List[str]:
        """Canonical op log as JSON lines, final line the state digest."""
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.records
        ]
        lines.append(
            json.dumps(
                {"state_digest": self.state_digest},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        return lines

    def canonical_log(self) -> str:
        """The canonical op log as one string (trailing newline)."""
        return "\n".join(self.canonical_lines()) + "\n"

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical op log."""
        return hashlib.sha256(self.canonical_log().encode("utf-8")).hexdigest()

    def write_log(self, path: PathLike) -> Path:
        """Write the canonical op log to a file and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.canonical_log(), encoding="utf-8")
        return path


def _mix_text(seed: int, epoch: int, slot: int, salt: int) -> str:
    words = [
        _VOCAB[_mix(seed, salt, epoch, slot, position) % len(_VOCAB)]
        for position in range(5 + _mix(seed, salt, epoch, slot) % 5)
    ]
    return " ".join(words)


def _mix_query(seed: int, epoch: int, slot: int) -> str:
    return " ".join(
        _VOCAB[_mix(seed, 23, epoch, slot, position) % len(_VOCAB)]
        for position in range(2)
    )


class _MixRunner:
    """One mix execution over a live service (monolithic or sharded)."""

    def __init__(
        self,
        service,
        spec: ContinuousMixSpec,
        stop_lsn: Optional[int],
        pause: float = 0.0,
    ):
        self._service = service
        self._spec = spec
        self._stop_lsn = stop_lsn
        self._pause = pause
        self._records: List[Dict[str, object]] = []
        self._counts: Dict[str, int] = {
            "ingest-doc": 0,
            "ingest-shot": 0,
            "del-doc": 0,
            "del-shot": 0,
            "upd": 0,
            "search": 0,
            "feedback": 0,
            "compact": 0,
            "reclaimed": 0,
        }
        # Only ids the mix itself created are mutation victims, so the
        # mix composes with any pre-indexed corpus without touching it.
        self._live_docs: List[str] = []
        self._live_shots: List[str] = []
        self._session_id: Optional[str] = None
        self._stopped = False
        shot_ids = service.engine.visual_index.shot_ids()
        self._feature_dim = (
            len(service.engine.visual_index.features_of(shot_ids[0]))
            if shot_ids
            else 16
        )

    # -- durable-prefix budget -----------------------------------------------------

    def _budget_exhausted(self) -> bool:
        if self._stop_lsn is None:
            return False
        durability = self._service.engine.durability
        if durability is None:
            return False
        if durability.wal.last_lsn >= self._stop_lsn:
            self._stopped = True
        return self._stopped

    # -- phases --------------------------------------------------------------------

    def _apply_mutation(self, epoch: int, slot: int) -> None:
        seed = self._spec.seed
        roll = _mix(seed, 11, epoch, slot) % 1000
        delete_bound = int(self._spec.delete_ratio * 1000)
        update_bound = delete_bound + int(self._spec.update_ratio * 1000)
        can_delete = bool(self._live_docs or self._live_shots)
        if roll < delete_bound and can_delete:
            both = bool(self._live_docs) and bool(self._live_shots)
            # High bits: _mix's low bit is visibly biased for some salts.
            kind_roll = (_mix(seed, 29, epoch, slot) >> 8) % 2
            if self._live_docs and (not both or kind_roll == 0):
                victim = self._live_docs.pop(
                    _mix(seed, 31, epoch, slot) % len(self._live_docs)
                )
                self._service.delete_document(victim)
                self._record(epoch, "del-doc", victim)
            else:
                victim = self._live_shots.pop(
                    _mix(seed, 31, epoch, slot) % len(self._live_shots)
                )
                self._service.delete_shot(victim)
                self._record(epoch, "del-shot", victim)
        elif roll < update_bound and self._live_docs:
            victim = self._live_docs[
                _mix(seed, 37, epoch, slot) % len(self._live_docs)
            ]
            self._service.update_document(
                victim, _mix_text(seed, epoch, slot, 41)
            )
            self._record(epoch, "upd", victim)
        elif (_mix(seed, 17, epoch, slot) >> 8) % 2 == 0:
            new_id = f"mix-doc-{seed}-{epoch:04d}-{slot:04d}"
            self._service.index_documents(
                {new_id: _mix_text(seed, epoch, slot, 43)}
            )
            self._live_docs.append(new_id)
            self._record(epoch, "ingest-doc", new_id)
        else:
            new_id = f"mix-shot-{seed}-{epoch:04d}-{slot:04d}"
            features = [
                (_mix(seed, 47, epoch, slot, dim) % 1000) / 1000.0
                for dim in range(self._feature_dim)
            ]
            concepts = {
                _CONCEPTS[_mix(seed, 53, epoch, slot, c) % len(_CONCEPTS)]: (
                    (_mix(seed, 59, epoch, slot, c) % 900) + 100
                )
                / 1000.0
                for c in range(2)
            }
            self._service.index_shot(new_id, features, concepts)
            self._live_shots.append(new_id)
            self._record(epoch, "ingest-shot", new_id)

    def _run_searches(self, epoch: int) -> None:
        spec = self._spec
        if not spec.searches_per_epoch:
            return
        queries = [
            _mix_query(spec.seed, epoch, slot)
            for slot in range(spec.searches_per_epoch)
        ]
        hits: List[Optional[List[List[object]]]] = [None] * len(queries)
        engine = self._service.engine

        def run_one(index: int) -> None:
            results = engine.search_text(queries[index], limit=_RECORDED_HITS)
            hits[index] = [
                [item.shot_id, item.score] for item in results.items
            ]

        if spec.search_workers > 1 and len(queries) > 1:
            with ThreadPoolExecutor(max_workers=spec.search_workers) as pool:
                list(pool.map(run_one, range(len(queries))))
        else:
            for index in range(len(queries)):
                run_one(index)
        for query, query_hits in zip(queries, hits):
            self._counts["search"] += 1
            self._records.append(
                {"e": epoch, "op": "search", "q": query, "hits": query_hits}
            )

    def _submit_feedback(self, epoch: int, slot: int) -> None:
        if not self._live_shots:
            return
        if self._session_id is None:
            info = self._service.open_session(f"mix-user-{self._spec.seed}")
            self._session_id = info.session_id
        shot_id = sorted(self._live_shots)[
            _mix(self._spec.seed, 61, epoch, slot) % len(self._live_shots)
        ]
        self._service.submit_feedback(
            FeedbackBatch(
                user_id=f"mix-user-{self._spec.seed}",
                session_id=self._session_id,
                events=(
                    InteractionEvent(
                        kind=EventKind.PLAY_CLICK,
                        timestamp=float(epoch),
                        shot_id=shot_id,
                    ),
                ),
            )
        )
        self._record(epoch, "feedback", shot_id)

    def _compact(self, epoch: int) -> None:
        stats = self._service.compact()
        self._counts["compact"] += 1
        self._counts["reclaimed"] += stats.reclaimed
        self._records.append(
            {"e": epoch, "op": "compact", "reclaimed": stats.reclaimed}
        )

    def _record(self, epoch: int, op: str, target: str) -> None:
        self._counts[op] += 1
        self._records.append({"e": epoch, "op": op, "id": target})

    # -- driver --------------------------------------------------------------------

    def run(self) -> ContinuousMixResult:
        from repro.durability import engine_state_digest

        spec = self._spec
        started = time.perf_counter()
        for epoch in range(spec.epochs):
            for slot in range(spec.mutations_per_epoch):
                if self._budget_exhausted():
                    break
                self._apply_mutation(epoch, slot)
                if self._pause > 0.0:
                    time.sleep(self._pause)
            if self._stopped:
                break
            self._run_searches(epoch)
            for slot in range(spec.feedback_per_epoch):
                if self._budget_exhausted():
                    break
                self._submit_feedback(epoch, slot)
            if self._stopped:
                break
            if spec.compact_every and (epoch + 1) % spec.compact_every == 0:
                self._compact(epoch)
        wall = time.perf_counter() - started
        return ContinuousMixResult(
            spec=spec,
            records=self._records,
            state_digest=engine_state_digest(self._service.engine),
            wall_seconds=wall,
            counts=dict(self._counts),
            stopped_early=self._stopped,
        )


def run_continuous_mix(
    service,
    spec: ContinuousMixSpec,
    stop_lsn: Optional[int] = None,
    pause: float = 0.0,
) -> ContinuousMixResult:
    """Run the continuous-ingest mix against a live service.

    ``stop_lsn`` (durable services only) stops applying durable ops once
    the service's WAL reaches that LSN — the clean-prefix arm of the
    SIGKILL oracle.  ``pause`` sleeps that many seconds after each
    mutation, stretching the crash window for an external kill.  Returns
    the canonical result; two runs with the same ``(seed, spec)`` produce
    byte-identical logs regardless of ``search_workers``.
    """
    if stop_lsn is not None:
        if stop_lsn < 0:
            raise ValueError(f"stop_lsn must be non-negative, got {stop_lsn}")
        if service.engine.durability is None:
            raise ValueError(
                "stop_lsn requires a durable service: the budget is "
                "measured against its WAL"
            )
    return _MixRunner(service, spec, stop_lsn, pause=pause).run()
