"""Adaptation policies: named parameterisations of the adaptive model.

A policy bundles every knob of the adaptive retrieval model — whether
profile evidence is used, whether implicit evidence is used, how they are
weighted, which ostensive discount applies, how many expansion terms are
injected — so that experiments can compare configurations by name
("baseline" vs "implicit" vs "profile" vs "combined") instead of threading
a dozen keyword arguments around.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.core.ostensive import DISCOUNT_PROFILES
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class AdaptationPolicy:
    """Configuration of the adaptive retrieval model.

    Attributes
    ----------
    name:
        Human-readable policy name used in experiment output.
    use_profile / use_implicit / use_explicit:
        Which evidence sources are active.
    profile_weight:
        Interpolation weight of profile evidence in re-ranking.
    implicit_weight:
        Interpolation weight of implicit-feedback evidence in re-ranking.
    expansion_terms:
        How many key terms extracted from positively-judged shots are added
        to the query on each iteration (0 disables implicit expansion).
    ostensive_profile / ostensive_base / ostensive_horizon:
        The ostensive discount applied to implicit evidence across query
        iterations ("uniform" reproduces static accumulation; ``base``
        parameterises the exponential profile, ``horizon`` the linear one).
    visual_propagation:
        Weight with which implicit evidence spreads to visually similar
        shots (0 disables propagation).
    demote_seen:
        Penalty applied to shots the user has already inspected.
    """

    name: str
    use_profile: bool = False
    use_implicit: bool = False
    use_explicit: bool = False
    profile_weight: float = 0.2
    implicit_weight: float = 0.35
    expansion_terms: int = 10
    ostensive_profile: str = "exponential"
    ostensive_base: float = 0.7
    ostensive_horizon: int = 6
    visual_propagation: float = 0.2
    demote_seen: float = 0.0

    def __post_init__(self) -> None:
        ensure_in_range(self.profile_weight, 0.0, 1.0, "profile_weight")
        ensure_in_range(self.implicit_weight, 0.0, 1.0, "implicit_weight")
        ensure_in_range(self.visual_propagation, 0.0, 1.0, "visual_propagation")
        ensure_in_range(self.demote_seen, 0.0, 1.0, "demote_seen")
        ensure_in_range(self.ostensive_base, 0.0, 1.0, "ostensive_base")
        ensure_positive(self.ostensive_horizon, "ostensive_horizon")
        if self.ostensive_profile not in DISCOUNT_PROFILES:
            raise ValueError(
                f"unknown ostensive profile {self.ostensive_profile!r}; "
                f"expected one of {DISCOUNT_PROFILES}"
            )
        if self.expansion_terms < 0:
            raise ValueError("expansion_terms must be non-negative")

    def with_overrides(self, **overrides: object) -> "AdaptationPolicy":
        """A copy of this policy with some fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Dictionary view for experiment reports."""
        return {
            "name": self.name,
            "use_profile": self.use_profile,
            "use_implicit": self.use_implicit,
            "use_explicit": self.use_explicit,
            "profile_weight": self.profile_weight,
            "implicit_weight": self.implicit_weight,
            "expansion_terms": self.expansion_terms,
            "ostensive_profile": self.ostensive_profile,
            "ostensive_base": self.ostensive_base,
            "ostensive_horizon": self.ostensive_horizon,
            "visual_propagation": self.visual_propagation,
            "demote_seen": self.demote_seen,
        }


def baseline_policy() -> AdaptationPolicy:
    """No adaptation at all: the plain retrieval engine."""
    return AdaptationPolicy(name="baseline", use_profile=False, use_implicit=False)


def profile_only_policy() -> AdaptationPolicy:
    """Static-profile personalisation only."""
    return AdaptationPolicy(name="profile_only", use_profile=True, use_implicit=False)


def implicit_only_policy() -> AdaptationPolicy:
    """Implicit-feedback adaptation only."""
    return AdaptationPolicy(name="implicit_only", use_profile=False, use_implicit=True)


def explicit_policy() -> AdaptationPolicy:
    """Classic explicit relevance feedback (Rocchio-style), no implicit evidence."""
    return AdaptationPolicy(
        name="explicit", use_profile=False, use_implicit=False, use_explicit=True
    )


def combined_policy() -> AdaptationPolicy:
    """The paper's proposal: static profile plus implicit feedback."""
    return AdaptationPolicy(
        name="combined", use_profile=True, use_implicit=True, use_explicit=False
    )


def full_policy() -> AdaptationPolicy:
    """Everything switched on (profile + implicit + explicit)."""
    return AdaptationPolicy(
        name="full", use_profile=True, use_implicit=True, use_explicit=True
    )


def standard_policies() -> Tuple[AdaptationPolicy, ...]:
    """The policy sweep used by the profile-combination experiment (E4)."""
    return (
        baseline_policy(),
        profile_only_policy(),
        implicit_only_policy(),
        combined_policy(),
    )
