"""Re-ranking utilities: interpolating extra evidence into a result list.

Both personalisation (static profiles) and implicit feedback ultimately act
by *re-ranking*: producing a score map over shots and folding it into the
engine's original ranking.  The helpers here perform that fold and the
story-level aggregation used by the news recommender.

These are the **reference** implementations of the adaptation fold: the
adaptive session's serving path runs the fused dense equivalent in
:func:`repro.core.adaptation_kernel.rerank_and_demote`, and the
equivalence tests pin that kernel bit-identical to the
``rerank_with_scores`` → ``demote_seen_shots`` composition below.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.collection.documents import Collection
from repro.index.fusion import interpolate
from repro.retrieval.results import ResultList


def rerank_with_scores(
    results: ResultList,
    evidence_scores: Mapping[str, float],
    weight: float,
    collection: Optional[Collection] = None,
    limit: Optional[int] = None,
) -> ResultList:
    """Interpolate evidence scores into a result list and re-sort.

    ``weight`` is the interpolation weight on the evidence (0 keeps the
    original ranking, 1 ranks purely by the evidence).  Only shots already
    in the result list are retained unless the evidence introduces new ones
    and ``limit`` allows them.
    """
    original_scores = results.scores()
    combined = interpolate(original_scores, dict(evidence_scores), weight)
    effective_limit = limit if limit is not None else len(results)
    return ResultList.from_scores(
        query_text=results.query_text,
        scores=combined,
        collection=collection,
        limit=max(effective_limit, len(results)),
        topic_id=results.topic_id,
    )


def story_scores_from_shots(
    shot_scores: Mapping[str, float],
    collection: Collection,
    aggregation: str = "max",
) -> Dict[str, float]:
    """Aggregate shot-level scores to story-level scores.

    ``aggregation`` is ``"max"`` (a story is as interesting as its best shot),
    ``"sum"`` or ``"mean"``.
    """
    if aggregation not in ("max", "sum", "mean"):
        raise ValueError(f"unknown aggregation {aggregation!r}")
    grouped: Dict[str, list] = {}
    for shot_id, score in shot_scores.items():
        if not collection.has_shot(shot_id):
            continue
        story_id = collection.shot(shot_id).story_id
        grouped.setdefault(story_id, []).append(score)
    aggregated: Dict[str, float] = {}
    for story_id, values in grouped.items():
        if aggregation == "max":
            aggregated[story_id] = max(values)
        elif aggregation == "sum":
            aggregated[story_id] = sum(values)
        else:
            aggregated[story_id] = sum(values) / len(values)
    return aggregated


def demote_seen_shots(
    results: ResultList,
    seen_shot_ids,
    penalty: float = 0.5,
    collection: Optional[Collection] = None,
) -> ResultList:
    """Demote shots the user has already seen in this session.

    Interactive systems avoid re-presenting material the user has just
    inspected; the penalty multiplies the (min-max normalised) score of seen
    shots by ``1 - penalty``.
    """
    if not 0.0 <= penalty <= 1.0:
        raise ValueError(f"penalty must be in [0, 1], got {penalty}")
    seen = set(seen_shot_ids)
    scores = results.scores()
    if not scores:
        return results
    low = min(scores.values())
    high = max(scores.values())
    span = (high - low) or 1.0
    adjusted = {}
    for shot_id, score in scores.items():
        normalised = (score - low) / span
        if shot_id in seen:
            normalised *= 1.0 - penalty
        adjusted[shot_id] = normalised
    return ResultList.from_scores(
        query_text=results.query_text,
        scores=adjusted,
        collection=collection,
        limit=len(results),
        topic_id=results.topic_id,
    )
