"""Multi-process scatter executor suite: equivalence, faults, lifecycle.

The process executor's contract mirrors the sharding contract one level up:
for any scorer, any shard count and any query, rankings produced with
``executor="process"`` must be **bit-identical** (ids, scores, ranks) to
both the thread executor and the monolithic engine — including after
interleaved writes (generation refresh) and after worker processes are
killed outright (rebuild-on-death).  The suite also pins the executor's
``ScatterGather``-compatible lifecycle guarantees: item-ordered gathers,
first-error propagation, idempotent close that is safe against concurrent
maps, and the inline fallback paths (single item, closed executor, shm
unavailable).

All tests carry the ``multiproc`` marker (``pytest -m multiproc``).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.index.inverted_index import InvertedIndex
from repro.multiproc import (
    ProcessScatterGather,
    StaleShardStateError,
    export_shard_state,
    score_shard_task,
    shared_memory_available,
    unpack_shard_scores,
)
from repro.multiproc import state as multiproc_state
from repro.retrieval import Query, VideoRetrievalEngine
from repro.retrieval.engine import EngineConfig
from repro.service import RetrievalService, SearchRequest, ServiceConfig
from repro.sharding import ShardedEngine
from repro.utils.concurrency import ScatterGather
from repro.workload import ServiceLoadDriver, WorkloadSpec

pytestmark = pytest.mark.multiproc

_SRC_PATH = str(Path(__file__).resolve().parent.parent / "src")

SCORERS = ("bm25", "tfidf", "lm")
SHARD_COUNTS = (1, 2, 4)


def _config(scorer: str) -> EngineConfig:
    # Result caches off so every search is a genuine scatter evaluation.
    return EngineConfig(scorer=scorer, result_cache_size=0)


def _assert_identical_rankings(expected_engine, actual_engine, queries) -> None:
    for query in queries:
        expected = expected_engine.search(query)
        actual = actual_engine.search(query)
        assert expected.shot_ids() == actual.shot_ids(), query
        assert [item.score for item in expected.items] == [
            item.score for item in actual.items
        ], query
        assert [item.rank for item in expected.items] == [
            item.rank for item in actual.items
        ], query


# -- module-level tasks (must be picklable by reference) --------------------------


def _square(value: int) -> int:
    return value * value


def _slow_square(value: int) -> int:
    time.sleep(0.05)
    return value * value


def _fail_on_three(value: int) -> int:
    if value == 3:
        raise ValueError(f"task rejected {value}")
    return value * value




# -- differential matrix ----------------------------------------------------------


class TestProcessExecutorEquivalence:
    @pytest.mark.parametrize("scorer", SCORERS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_bit_identical_rankings(
        self, sharding_corpus, make_random_queries, scorer, num_shards
    ):
        config = _config(scorer)
        queries = make_random_queries(sharding_corpus, seed=520 + num_shards, count=8)
        mono = VideoRetrievalEngine(sharding_corpus.collection, config=config)
        thread = ShardedEngine(
            sharding_corpus.collection, config=config, num_shards=num_shards
        )
        process = ShardedEngine(
            sharding_corpus.collection,
            config=config,
            num_shards=num_shards,
            executor="process",
        )
        try:
            _assert_identical_rankings(mono, process, queries)
            _assert_identical_rankings(thread, process, queries)
        finally:
            process.close()
            thread.close()
            mono.close()

    def test_generation_refresh_after_interleaved_writes(
        self, sharding_corpus, make_random_queries, make_random_documents
    ):
        config = _config("bm25")
        mono = VideoRetrievalEngine(sharding_corpus.collection, config=config)
        process = ShardedEngine(
            sharding_corpus.collection, config=config, num_shards=4, executor="process"
        )
        try:
            for round_index in range(3):
                queries = make_random_queries(
                    sharding_corpus, seed=700 + round_index, count=4
                )
                _assert_identical_rankings(mono, process, queries)
                documents = make_random_documents(
                    sharding_corpus, seed=800 + round_index, count=5, prefix="mp"
                )
                mono.index_documents(documents)
                process.index_documents(documents)
            queries = make_random_queries(sharding_corpus, seed=790, count=6)
            _assert_identical_rankings(mono, process, queries)
        finally:
            process.close()
            mono.close()

    def test_inline_payload_fallback_matches_shared_memory(
        self, sharding_corpus, make_random_queries
    ):
        """With shm disabled the payload travels inline — same rankings."""
        config = _config("tfidf")
        queries = make_random_queries(sharding_corpus, seed=910, count=5)
        mono = VideoRetrievalEngine(sharding_corpus.collection, config=config)
        process = ShardedEngine(
            sharding_corpus.collection, config=config, num_shards=3, executor="process"
        )
        try:
            assert shared_memory_available()
            # Swap the executor for a no-shm twin on the live scorer.
            scorer = process.text_scorer
            scorer.executor.close()
            scorer._executor = ProcessScatterGather(3, use_shared_memory=False)
            assert not scorer.executor.uses_shared_memory
            _assert_identical_rankings(mono, process, queries)
        finally:
            process.close()
            process.text_scorer.executor.close()
            mono.close()

    def test_service_rankings_and_loadtest_digest_match_thread(self, sharding_corpus):
        spec = WorkloadSpec(users=4, queries_per_user=2, feedback_per_query=1, seed=31)
        digests = {}
        for executor in ("thread", "process"):
            config = ServiceConfig(num_shards=4, executor=executor)
            driver = ServiceLoadDriver(
                lambda config=config: RetrievalService.from_corpus(
                    sharding_corpus, config=config
                ),
                max_workers=2,
            )
            digests[executor] = driver.run(spec).digest()
        assert digests["process"] == digests["thread"]

    def test_search_after_engine_close_runs_inline(self, sharding_corpus):
        config = _config("bm25")
        mono = VideoRetrievalEngine(sharding_corpus.collection, config=config)
        process = ShardedEngine(
            sharding_corpus.collection, config=config, num_shards=2, executor="process"
        )
        try:
            query = Query(text="government election report")
            before = process.search(query)
            process.close()
            after = process.search(query)
            expected = mono.search(query)
            assert before.shot_ids() == after.shot_ids() == expected.shot_ids()
            assert [item.score for item in after.items] == [
                item.score for item in expected.items
            ]
        finally:
            process.close()
            mono.close()


# -- worker-death fault injection -------------------------------------------------


class TestWorkerDeath:
    def test_killed_worker_is_rebuilt_and_results_stay_correct(
        self, sharding_corpus, make_random_queries
    ):
        config = _config("bm25")
        queries = make_random_queries(sharding_corpus, seed=640, count=4)
        mono = VideoRetrievalEngine(sharding_corpus.collection, config=config)
        process = ShardedEngine(
            sharding_corpus.collection, config=config, num_shards=4, executor="process"
        )
        try:
            executor = process.text_scorer.executor
            _assert_identical_rankings(mono, process, queries[:2])
            victims = executor.worker_processes[:2]
            for victim in victims:
                os.kill(victim.pid, signal.SIGKILL)
            for victim in victims:
                victim.join(timeout=5.0)
            # The very next scatter detects the dead pipes, respawns the
            # slots, replays all published state and still merges correctly.
            _assert_identical_rankings(mono, process, queries)
            assert len(executor.worker_processes) == 4
            assert all(worker.is_alive() for worker in executor.worker_processes)
        finally:
            process.close()
            mono.close()

    def test_all_workers_killed_then_write_then_search(
        self, sharding_corpus, make_random_documents
    ):
        config = _config("lm")
        mono = VideoRetrievalEngine(sharding_corpus.collection, config=config)
        process = ShardedEngine(
            sharding_corpus.collection, config=config, num_shards=3, executor="process"
        )
        try:
            query = Query(text="weather storm warning")
            assert process.search(query).shot_ids() == mono.search(query).shot_ids()
            for victim in process.text_scorer.executor.worker_processes:
                os.kill(victim.pid, signal.SIGKILL)
            documents = make_random_documents(
                sharding_corpus, seed=101, count=4, prefix="crash"
            )
            mono.index_documents(documents)
            process.index_documents(documents)
            expected = mono.search(query)
            actual = process.search(query)
            assert expected.shot_ids() == actual.shot_ids()
            assert [item.score for item in expected.items] == [
                item.score for item in actual.items
            ]
        finally:
            process.close()
            mono.close()

    def test_executor_survives_repeated_external_kills(self):
        executor = ProcessScatterGather(2)
        try:
            assert executor.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            for _ in range(2):
                for victim in executor.worker_processes:
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(timeout=5.0)
                assert executor.map(_square, [5, 6, 7]) == [25, 36, 49]
            assert all(worker.is_alive() for worker in executor.worker_processes)
        finally:
            executor.close()


# -- executor lifecycle -----------------------------------------------------------


class TestProcessScatterGather:
    def test_results_in_item_order(self):
        executor = ProcessScatterGather(3)
        try:
            assert executor.map(_square, list(range(10))) == [
                value * value for value in range(10)
            ]
        finally:
            executor.close()

    def test_first_exception_propagates(self):
        executor = ProcessScatterGather(2)
        try:
            with pytest.raises(ValueError, match="task rejected 3"):
                executor.map(_fail_on_three, [1, 2, 3, 4])
            # The executor stays healthy after a task error.
            assert executor.map(_square, [5, 6]) == [25, 36]
        finally:
            executor.close()

    def test_single_item_runs_inline(self):
        executor = ProcessScatterGather(4)
        try:
            assert executor.map(_square, [7]) == [49]
        finally:
            executor.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessScatterGather(0)
        with pytest.raises(ValueError):
            ProcessScatterGather(2, start_method="no-such-method")

    def test_close_is_idempotent_and_map_runs_inline_after(self):
        executor = ProcessScatterGather(2)
        executor.close()
        executor.close()
        assert executor.closed
        assert executor.worker_processes == []
        assert executor.map(_square, [2, 3, 4]) == [4, 9, 16]

    def test_close_racing_concurrent_maps_is_safe(self):
        executor = ProcessScatterGather(2)
        errors: List[BaseException] = []
        results: List[List[int]] = []

        def mapper() -> None:
            try:
                for _ in range(5):
                    results.append(executor.map(_slow_square, [1, 2, 3]))
            except BaseException as error:  # pragma: no cover - the failure mode
                errors.append(error)

        threads = [threading.Thread(target=mapper) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.08)
        executor.close()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(batch == [1, 4, 9] for batch in results)
        assert len(results) == 15

    def test_abandoned_executor_exits_silently(self):
        """Dropping an executor without close() must not spew at shutdown.

        Without the finalizer net, interpreter exit GC's the parent's
        SharedMemory objects while scorer views still hold exported
        pointers (BufferError from __del__) and the resource tracker
        warns about blocks nobody unlinked.
        """
        import subprocess

        script = (
            "from repro.collection import CollectionConfig, generate_corpus\n"
            "from repro.retrieval import Query\n"
            "from repro.retrieval.engine import EngineConfig\n"
            "from repro.sharding import ShardedEngine\n"
            "corpus = generate_corpus(seed=3, config=CollectionConfig.small())\n"
            "engine = ShardedEngine(corpus.collection,"
            " config=EngineConfig(result_cache_size=0),"
            " num_shards=4, executor='process')\n"
            "engine.search(Query(text='alpha beta'))\n"
            "print('done')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": _SRC_PATH},
        )
        assert completed.returncode == 0, completed.stderr
        assert "done" in completed.stdout
        for noise in ("BufferError", "leaked shared_memory", "Traceback"):
            assert noise not in completed.stderr, completed.stderr

    def test_publish_skips_unchanged_generations(self):
        executor = ProcessScatterGather(2)
        built = []
        index = InvertedIndex()
        index.add_document("doc-1", "alpha beta alpha")

        def builder(use_shm: bool):
            built.append(use_shm)
            return export_shard_state(
                f"{executor.uid}/t0",
                0,
                index,
                f"{executor.uid}/g",
                "bm25",
                ServiceConfig(),
                use_shared_memory=use_shm,
            )

        try:
            assert executor.publish(f"{executor.uid}/t0", index.generation, builder)
            assert not executor.publish(
                f"{executor.uid}/t0", index.generation, builder
            )
            assert len(built) == 1
            index.add_document("doc-2", "beta gamma")
            assert executor.publish(f"{executor.uid}/t0", index.generation, builder)
            assert len(built) == 2
        finally:
            executor.close()


# -- export / attach layer --------------------------------------------------------


class TestShardStateExport:
    def _small_index(self) -> InvertedIndex:
        index = InvertedIndex()
        index.add_document("doc-a", "alpha beta alpha gamma")
        index.add_document("doc-b", "beta delta")
        index.add_document("doc-c", "gamma gamma epsilon alpha")
        return index

    @pytest.mark.parametrize("use_shm", (True, False))
    def test_attached_view_scores_bit_identically(self, use_shm):
        from repro.index.scoring import Bm25Scorer
        from repro.multiproc.state import load_state, drop_state

        index = self._small_index()
        descriptor, shm = export_shard_state(
            "t/shard", 0, index, "t/global", "bm25", ServiceConfig(),
            use_shared_memory=use_shm,
        )
        try:
            from repro.multiproc.state import export_global_stats

            class _Stats:  # quacks like GlobalTextStats over one shard
                shard_indexes = (index,)
                generation = index.generation
                document_count = index.document_count
                total_terms = index.total_terms

            load_state(export_global_stats("t/global", _Stats()))
            load_state(descriptor)
            expected = Bm25Scorer(index).score(["alpha", "gamma", "missing"])
            packed = score_shard_task(
                ("t/shard", index.generation, {"alpha": 1.0, "gamma": 1.0, "missing": 1.0})
            )
            actual = unpack_shard_scores(index.dense_document_ids(), packed)
            assert actual == expected
            assert list(actual) == list(expected)  # entry order too
        finally:
            drop_state("t/shard")
            drop_state("t/global")
            if shm is not None:
                from repro.multiproc.state import release_shared_block

                release_shared_block(shm)

    def test_stale_generation_is_rejected(self):
        from repro.multiproc.state import (
            drop_state,
            export_global_stats,
            load_state,
        )

        index = self._small_index()

        class _Stats:
            shard_indexes = (index,)
            generation = index.generation
            document_count = index.document_count
            total_terms = index.total_terms

        descriptor, shm = export_shard_state(
            "t2/shard", 0, index, "t2/global", "bm25", ServiceConfig(),
            use_shared_memory=False,
        )
        try:
            load_state(export_global_stats("t2/global", _Stats()))
            load_state(descriptor)
            with pytest.raises(StaleShardStateError):
                score_shard_task(("t2/shard", index.generation + 5, {"alpha": 1.0}))
            with pytest.raises(StaleShardStateError):
                score_shard_task(("t2/never-published", index.generation, {"a": 1.0}))
        finally:
            drop_state("t2/shard")
            drop_state("t2/global")


# -- the ScatterGather close-race satellite ---------------------------------------


class TestScatterGatherCloseRace:
    def test_close_is_idempotent(self):
        gather = ScatterGather(4)
        assert gather.map(lambda value: value + 1, [1, 2, 3]) == [2, 3, 4]
        gather.close()
        gather.close()
        assert gather.closed
        assert gather.map(lambda value: value + 1, [1, 2, 3]) == [2, 3, 4]

    def test_close_racing_maps_never_hands_out_a_dead_pool(self):
        """Many maps racing many closes: no 'cannot schedule new futures'."""
        for _ in range(20):
            gather = ScatterGather(4)
            errors: List[BaseException] = []
            barrier = threading.Barrier(4)

            def mapper() -> None:
                try:
                    barrier.wait()
                    for _ in range(10):
                        assert gather.map(lambda value: value * 2, [1, 2, 3]) == [
                            2,
                            4,
                            6,
                        ]
                except BaseException as error:
                    errors.append(error)

            def closer() -> None:
                barrier.wait()
                gather.close()

            threads = [threading.Thread(target=mapper) for _ in range(3)]
            threads.append(threading.Thread(target=closer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors

    def test_concurrent_closes_race_cleanly(self):
        gather = ScatterGather(4)
        gather.map(lambda value: value, [1, 2])  # materialise the pool
        barrier = threading.Barrier(4)

        def closer() -> None:
            barrier.wait()
            gather.close()

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gather.closed
