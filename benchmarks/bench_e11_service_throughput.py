"""E11 — RetrievalService batch-search throughput baseline.

The ROADMAP's north star is serving heavy multi-user traffic, so this
benchmark records the first scaling numbers of the service facade: how many
queries per second flow through ``RetrievalService.search_batch`` compared
to issuing the same requests sequentially through ``search``, for a fleet
of concurrent sessions issuing (a) one shared hot query and (b) distinct
per-user queries.  The batch path amortises engine evaluations across
sessions whose adapted queries coincide, and is verified here to return
rankings identical to the sequential path — future scaling PRs (sharding,
async, remote transports) should move these numbers without breaking that
equality.
"""

from __future__ import annotations

import time

from _common import print_table

from repro.service import RetrievalService, SearchRequest

USERS = 24


def _requests(service, shared_query: bool):
    topics = service.topics.topics()
    requests = []
    for index in range(USERS):
        topic = topics[0] if shared_query else topics[index % len(topics)]
        requests.append(
            SearchRequest(
                user_id=f"user{index:02d}",
                query=" ".join(topic.query_terms[:2]),
                topic_id=topic.topic_id,
            )
        )
    return requests


def _fresh_service(bench_corpus) -> RetrievalService:
    return RetrievalService.from_corpus(bench_corpus)


def _timed(callable_, requests):
    start = time.perf_counter()
    responses = callable_(requests)
    elapsed = time.perf_counter() - start
    return responses, elapsed


def run_experiment(bench_corpus):
    rows = []
    for label, shared in (("shared hot query", True), ("distinct queries", False)):
        # Fresh services per arm so session state never leaks between runs.
        sequential_service = _fresh_service(bench_corpus)
        batch_service = _fresh_service(bench_corpus)
        requests = _requests(sequential_service, shared_query=shared)

        sequential, seq_seconds = _timed(
            lambda reqs: [sequential_service.search(r) for r in reqs], requests
        )
        batched, batch_seconds = _timed(batch_service.search_batch, requests)

        identical = [r.shot_ids() for r in sequential] == [r.shot_ids() for r in batched]
        assert identical, "batch search must match sequential search exactly"

        rows.append(
            {
                "workload": label,
                "sessions": USERS,
                "sequential_qps": USERS / seq_seconds if seq_seconds else 0.0,
                "batch_qps": USERS / batch_seconds if batch_seconds else 0.0,
                "speedup_x": (seq_seconds / batch_seconds) if batch_seconds else 0.0,
                "identical": identical,
            }
        )
    return rows


def test_e11_service_throughput(benchmark, bench_corpus):
    rows = benchmark.pedantic(run_experiment, args=(bench_corpus,), rounds=1, iterations=1)
    print_table(
        "E11: RetrievalService batch vs sequential search throughput",
        rows,
        columns=["workload", "sessions", "sequential_qps", "batch_qps",
                 "speedup_x", "identical"],
    )
    shared = rows[0]
    assert shared["identical"]
    # The shared-query fleet must benefit from amortisation at least somewhat;
    # distinct queries get no sharing and only need to stay comparable.
    assert shared["batch_qps"] > 0 and shared["sequential_qps"] > 0
