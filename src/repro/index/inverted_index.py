"""In-memory inverted index over shot transcripts.

The index is the text-retrieval substrate every experiment sits on.  Since
the scoring-kernel rework it stores its data in a compact, array-backed
layout designed for the access pattern of the scoring loop:

* document ids are **interned** to dense integer indexes (``doc_index_of`` /
  ``doc_id_at``), so score accumulation can run over flat arrays instead of
  string-keyed dictionaries;
* postings are stored as parallel ``array('i')`` columns per term
  (``postings_arrays``) — one column of document indexes, one of term
  frequencies — instead of lists of :class:`Posting` objects;
* document lengths live in one flat ``array('i')``
  (``document_lengths_array``); and
* collection statistics (collection frequency per term, total terms) are
  maintained incrementally on :meth:`add_document`, so they are O(1) reads.

Derived per-document normalisation tables used by the scorers (BM25 length
denominators, TF-IDF cosine norms) are computed lazily and cached; the
:attr:`generation` counter ticks on every mutation so scorers can invalidate
their own per-term caches (IDF, collection probabilities) cheaply.

The corpus is **mutable**: :meth:`delete_document` tombstones a dense slot
(``None`` id, zero length, empty vector) and eagerly scrubs the document out
of every postings column while correcting the collection statistics
incrementally, so scorers need no tombstone mask — every integer statistic
(document frequency, collection frequency, total terms, live count) matches
an index rebuilt from scratch over the surviving documents, which keeps
rankings bit-identical to such a rebuild.  :meth:`update_document` is
delete + re-add (the document moves to a fresh slot at the end of the dense
space, exactly where a WAL replay would put it).  :meth:`adopt_compacted`
swaps in a freshly re-interned state in place, so long-lived references to
the index object (sharded scorer views, stats views) survive compaction.

The original object API — ``postings()`` returning :class:`Posting` lists,
``document_vector()``, ``iter_postings()`` — is preserved as thin views over
the dense layout, so existing callers and persisted snapshots keep working.
Scoring functions live in :mod:`repro.index.scoring` and
:mod:`repro.index.language_model`; persistence in :mod:`repro.index.storage`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.collection.documents import Collection
from repro.index.tokenizer import Tokenizer


@dataclass(frozen=True)
class Posting:
    """One entry in a postings list: a document and a term frequency."""

    document_id: str
    term_frequency: int


class InvertedIndex:
    """A positional-free inverted index with collection statistics."""

    def __init__(self, tokenizer: Optional[Tokenizer] = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        # Dense document interning: index -> id and id -> index.  Deleted
        # documents leave a ``None`` tombstone in the id table (and are
        # popped from ``_doc_index``), so live count == len(_doc_index).
        self._doc_ids: List[Optional[str]] = []
        self._doc_index: Dict[str, int] = {}
        self._doc_lengths = array("i")
        # Per-document term-frequency vectors, indexed by document index.
        self._doc_vectors: List[Dict[str, int]] = []
        # Postings columns: term -> (document indexes, term frequencies).
        self._postings_columns: Dict[str, Tuple[array, array]] = {}
        # Incrementally-maintained collection statistics.
        self._collection_frequencies: Dict[str, int] = {}
        self._total_terms = 0
        # Mutation counter; derived caches check it before serving.
        self._generation = 0
        self._bm25_norms_cache: Dict[Tuple[float, float], array] = {}
        self._tfidf_norms_cache: Optional[array] = None

    # -- construction -----------------------------------------------------------

    @property
    def tokenizer(self) -> Tokenizer:
        """The tokenizer used at both index and query time."""
        return self._tokenizer

    def add_document(self, document_id: str, text: str) -> None:
        """Index one document; re-adding an id raises ``ValueError``."""
        self.add_document_frequencies(
            document_id, self._tokenizer.term_frequencies(text)
        )

    def add_document_frequencies(
        self, document_id: str, frequencies: Mapping[str, int]
    ) -> None:
        """Index one document from an already-tokenised term-frequency map.

        This is the fast path used when loading persisted snapshots: terms
        are assumed to be normalised already, so no tokenisation runs.
        """
        if document_id in self._doc_index:
            raise ValueError(f"document {document_id!r} already indexed")
        frequencies = dict(frequencies)
        doc_index = len(self._doc_ids)
        self._doc_ids.append(document_id)
        self._doc_index[document_id] = doc_index
        length = sum(frequencies.values())
        self._doc_lengths.append(length)
        self._doc_vectors.append(frequencies)
        self._total_terms += length
        collection_frequencies = self._collection_frequencies
        postings_columns = self._postings_columns
        for term, frequency in frequencies.items():
            columns = postings_columns.get(term)
            if columns is None:
                postings_columns[term] = (array("i", (doc_index,)), array("i", (frequency,)))
            else:
                columns[0].append(doc_index)
                columns[1].append(frequency)
            collection_frequencies[term] = (
                collection_frequencies.get(term, 0) + frequency
            )
        self._generation += 1
        self._bm25_norms_cache.clear()
        self._tfidf_norms_cache = None

    def add_documents(self, documents: Mapping[str, str]) -> None:
        """Index a mapping of ``document_id -> text`` atomically.

        Every id is validated against the index before any document is
        applied, so a duplicate anywhere in the batch raises ``ValueError``
        with the index (and its statistics) untouched — all-or-nothing.
        """
        for document_id in documents:
            if document_id in self._doc_index:
                raise ValueError(f"document {document_id!r} already indexed")
        for document_id, text in documents.items():
            self.add_document(document_id, text)

    # -- mutation ---------------------------------------------------------------

    def delete_document(self, document_id: str) -> None:
        """Remove one document; an unknown id raises ``KeyError``.

        The dense slot is tombstoned (``None`` id, zero length, empty
        vector) and the document is scrubbed out of every postings column
        it appears in, with collection statistics corrected incrementally.
        Postings doc columns are ascending in dense index (appends only ever
        extend them, deletions preserve order), so each scrub is one bisect.
        """
        doc_index = self._doc_index.pop(document_id, None)
        if doc_index is None:
            raise KeyError(f"document {document_id!r} not indexed")
        postings_columns = self._postings_columns
        collection_frequencies = self._collection_frequencies
        for term, frequency in self._doc_vectors[doc_index].items():
            docs, freqs = postings_columns[term]
            position = bisect_left(docs, doc_index)
            del docs[position]
            del freqs[position]
            if not docs:
                del postings_columns[term]
            remaining = collection_frequencies[term] - frequency
            if remaining:
                collection_frequencies[term] = remaining
            else:
                del collection_frequencies[term]
        self._total_terms -= self._doc_lengths[doc_index]
        self._doc_ids[doc_index] = None
        self._doc_lengths[doc_index] = 0
        self._doc_vectors[doc_index] = {}
        self._generation += 1
        self._bm25_norms_cache.clear()
        self._tfidf_norms_cache = None

    def update_document(self, document_id: str, text: str) -> None:
        """Replace one document's text; an unknown id raises ``KeyError``."""
        self.update_document_frequencies(
            document_id, self._tokenizer.term_frequencies(text)
        )

    def update_document_frequencies(
        self, document_id: str, frequencies: Mapping[str, int]
    ) -> None:
        """Replace one document from a term-frequency map.

        Implemented as delete + re-add: the document moves to a fresh dense
        slot at the end of the interned space — the same slot a from-scratch
        WAL replay of the update would produce.
        """
        if document_id not in self._doc_index:
            raise KeyError(f"document {document_id!r} not indexed")
        self.delete_document(document_id)
        self.add_document_frequencies(document_id, frequencies)

    # -- compaction --------------------------------------------------------------

    @property
    def tombstone_count(self) -> int:
        """Number of tombstoned (deleted, not yet compacted) dense slots."""
        return len(self._doc_ids) - len(self._doc_index)

    def live_items(self) -> Iterable[Tuple[str, Mapping[str, int]]]:
        """Yield ``(document_id, vector view)`` for live docs in slot order.

        The vectors are the index's own dicts (read-only); slot order is the
        canonical replay order — re-adding these pairs to a fresh index
        reproduces this index's rankings bit-identically.
        """
        doc_vectors = self._doc_vectors
        for doc_index, document_id in enumerate(self._doc_ids):
            if document_id is not None:
                yield document_id, doc_vectors[doc_index]

    def compacted_copy(self) -> "InvertedIndex":
        """A fresh index holding only the live documents, re-interned densely."""
        fresh = InvertedIndex(tokenizer=self._tokenizer)
        for document_id, vector in self.live_items():
            fresh.add_document_frequencies(document_id, vector)
        return fresh

    def adopt_compacted(self, fresh: "InvertedIndex") -> int:
        """Swap ``fresh``'s dense state into **this** object, in place.

        Long-lived references to the index (sharded scorer stats views,
        engine fields, shared-memory exporters) keep working because the
        object identity is preserved; only the internals move.  The
        generation strictly increases so every derived cache re-validates.
        Returns the number of dense slots reclaimed.
        """
        reclaimed = len(self._doc_ids) - len(fresh._doc_ids)
        self._doc_ids = fresh._doc_ids
        self._doc_index = fresh._doc_index
        self._doc_lengths = fresh._doc_lengths
        self._doc_vectors = fresh._doc_vectors
        self._postings_columns = fresh._postings_columns
        self._collection_frequencies = fresh._collection_frequencies
        self._total_terms = fresh._total_terms
        self._generation += 1
        self._bm25_norms_cache.clear()
        self._tfidf_norms_cache = None
        return reclaimed

    def compact(self) -> int:
        """Reclaim tombstoned slots by re-interning live docs in slot order.

        A no-op (state and generation untouched) when there is nothing to
        reclaim.  Returns the number of slots reclaimed.
        """
        if self.tombstone_count == 0:
            return 0
        return self.adopt_compacted(self.compacted_copy())

    @classmethod
    def from_collection(
        cls, collection: Collection, tokenizer: Optional[Tokenizer] = None
    ) -> "InvertedIndex":
        """Build an index over every shot transcript in a collection."""
        index = cls(tokenizer=tokenizer)
        for shot in collection.iter_shots():
            index.add_document(shot.shot_id, shot.transcript)
        return index

    # -- statistics -------------------------------------------------------------

    @property
    def document_count(self) -> int:
        """Number of **live** indexed documents (tombstones excluded)."""
        return len(self._doc_index)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct index terms."""
        return len(self._postings_columns)

    @property
    def total_terms(self) -> int:
        """Total number of term occurrences in the collection."""
        return self._total_terms

    @property
    def average_document_length(self) -> float:
        """Mean **live** document length in terms."""
        if not self._doc_index:
            return 0.0
        return self._total_terms / len(self._doc_index)

    @property
    def generation(self) -> int:
        """Mutation counter; changes on every add, delete, update or compact.

        Scorers key their derived statistics caches (IDF tables, collection
        probabilities) on this value so stale entries are never served.
        """
        return self._generation

    def document_length(self, document_id: str) -> int:
        """Length (term count) of one document."""
        return self._doc_lengths[self._doc_index[document_id]]

    def has_document(self, document_id: str) -> bool:
        """True if the document is indexed."""
        return document_id in self._doc_index

    def document_ids(self) -> List[str]:
        """All **live** document ids, in dense-slot (insertion/replay) order."""
        return [document_id for document_id in self._doc_ids if document_id is not None]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing the term."""
        columns = self._postings_columns.get(term)
        return len(columns[0]) if columns is not None else 0

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of the term across the collection (O(1))."""
        return self._collection_frequencies.get(term, 0)

    def postings(self, term: str) -> List[Posting]:
        """The postings list for a term (empty if unseen).

        A materialised object view over the dense columns; scoring code
        should prefer :meth:`postings_arrays`.
        """
        columns = self._postings_columns.get(term)
        if columns is None:
            return []
        doc_ids = self._doc_ids
        return [
            Posting(document_id=doc_ids[doc], term_frequency=freq)
            for doc, freq in zip(columns[0], columns[1])
        ]

    def terms(self) -> List[str]:
        """All index terms."""
        return list(self._postings_columns)

    def document_vector(self, document_id: str) -> Dict[str, int]:
        """Term-frequency vector of one document (a copy)."""
        doc_index = self._doc_index.get(document_id)
        if doc_index is None:
            return {}
        return dict(self._doc_vectors[doc_index])

    def document_vector_view(self, document_id: str) -> Mapping[str, int]:
        """Term-frequency vector of one document **without copying**.

        The returned mapping is the index's own structure: treat it as
        read-only.  Used on hot paths (query expansion, centroids) where the
        defensive copy of :meth:`document_vector` dominates.
        """
        doc_index = self._doc_index.get(document_id)
        if doc_index is None:
            return {}
        return self._doc_vectors[doc_index]

    def term_frequency(self, term: str, document_id: str) -> int:
        """Frequency of ``term`` in ``document_id`` (0 if absent)."""
        doc_index = self._doc_index.get(document_id)
        if doc_index is None:
            return 0
        return self._doc_vectors[doc_index].get(term, 0)

    # -- dense kernel views ------------------------------------------------------

    def doc_index_of(self, document_id: str) -> int:
        """Dense integer index of a document id (raises ``KeyError`` if absent)."""
        return self._doc_index[document_id]

    def doc_id_at(self, doc_index: int) -> str:
        """Document id at a dense index."""
        return self._doc_ids[doc_index]

    def doc_index_get(self, document_id: str, default: Optional[int] = None):
        """Dense integer index of a document id, or ``default`` if absent.

        The non-raising companion of :meth:`doc_index_of`, used by kernels
        that intern externally-supplied ids (e.g. feedback on shots that
        were never indexed) in a single lookup.
        """
        return self._doc_index.get(document_id, default)

    def dense_document_ids(self) -> List[Optional[str]]:
        """The id table in dense-index order — the index's own list, read-only.

        Tombstoned slots hold ``None``; kernels never observe them because
        deleted documents are scrubbed out of every postings column.
        """
        return self._doc_ids

    def postings_arrays(self, term: str) -> Tuple[array, array]:
        """Postings columns for a term: ``(doc_indexes, term_frequencies)``.

        Both are the index's own ``array('i')`` columns (read-only); empty
        arrays are returned for unseen terms.
        """
        columns = self._postings_columns.get(term)
        if columns is None:
            return _EMPTY_INT_ARRAY, _EMPTY_INT_ARRAY
        return columns

    @property
    def document_lengths_array(self) -> array:
        """Document lengths in dense-index order (read-only ``array('i')``)."""
        return self._doc_lengths

    def bm25_norms(self, k1: float, b: float) -> array:
        """Per-document BM25 length-normalisation denominators.

        ``k1 * (1 - b + b * length / average_length)`` for every document in
        dense-index order, cached per ``(k1, b)`` and invalidated whenever a
        document is added (the average length moves).
        """
        key = (k1, b)
        cached = self._bm25_norms_cache.get(key)
        if cached is not None:
            return cached
        average_length = max(1.0, self.average_document_length)
        # Evaluated with the same expression the scorer historically used per
        # posting, so precomputed scores stay bit-identical.
        norms = array(
            "d",
            (
                k1 * (1.0 - b + b * length / average_length)
                for length in self._doc_lengths
            ),
        )
        self._bm25_norms_cache[key] = norms
        return norms

    def tfidf_norms(self) -> array:
        """Per-document cosine length norms ``sqrt(max(1, length))``."""
        cached = self._tfidf_norms_cache
        if cached is not None:
            return cached
        from math import sqrt

        norms = array(
            "d", (sqrt(max(1.0, float(length))) for length in self._doc_lengths)
        )
        self._tfidf_norms_cache = norms
        return norms

    # -- export -----------------------------------------------------------------

    def iter_postings(self) -> Iterable[Tuple[str, Posting]]:
        """Iterate ``(term, posting)`` pairs, mainly for persistence."""
        doc_ids = self._doc_ids
        for term, (docs, freqs) in self._postings_columns.items():
            for doc, freq in zip(docs, freqs):
                yield term, Posting(document_id=doc_ids[doc], term_frequency=freq)

    def statistics(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "documents": float(self.document_count),
            "vocabulary": float(self.vocabulary_size),
            "total_terms": float(self.total_terms),
            "average_document_length": self.average_document_length,
        }

    def __contains__(self, term: str) -> bool:
        return term in self._postings_columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvertedIndex(documents={self.document_count}, "
            f"vocabulary={self.vocabulary_size})"
        )


_EMPTY_INT_ARRAY = array("i")
