"""E10 — Retrieval substrate sanity: text ranking functions and multimodal fusion.

Every adaptive experiment sits on the multimodal retrieval engine, so this
bench reproduces the substrate-level comparison TRECVID-era systems report:
ad-hoc search quality (MAP / P@10) for TF-IDF, BM25 and Dirichlet language-
model scoring over the ASR transcripts, plus text-only vs. visual-only vs.
fused runs.  Queries are the topic statements themselves (no simulation),
which makes this the cleanest, least noisy table in the harness.
"""

from __future__ import annotations

from _common import print_table

from repro.analysis import analyse_collection
from repro.evaluation import Run, evaluate_run
from repro.index import weighted_fusion
from repro.retrieval import EngineConfig, Query, VideoRetrievalEngine

RESULT_DEPTH = 100


def _run_for_scorer(corpus, scorer: str) -> Run:
    engine = VideoRetrievalEngine(
        corpus.collection,
        config=EngineConfig(scorer=scorer, visual_weight=0.0, concept_weight=0.0),
    )
    run = Run(name=scorer)
    for topic in corpus.topics:
        results = engine.search_text(" ".join(topic.query_terms), limit=RESULT_DEPTH)
        run.add_topic(topic.topic_id, results.shot_ids())
    return run


def _modality_runs(corpus):
    """Text-only, visual-only (example-based) and fused runs."""
    engine = VideoRetrievalEngine(corpus.collection)
    text_run = Run(name="text_only")
    visual_run = Run(name="visual_only")
    fused_run = Run(name="text+visual_fused")
    for topic in corpus.topics:
        text_scores = engine.text_scores(Query.from_text(" ".join(topic.query_terms)))
        # Visual query-by-example: the first relevant shot acts as the example
        # (the standard TRECVID "example clip provided with the topic").
        relevant = sorted(corpus.qrels.relevant_shots(topic.topic_id))
        example_query = Query(example_shot_ids=relevant[:1])
        visual_scores = engine.visual_scores(example_query)
        text_run.add_topic(
            topic.topic_id,
            [doc for doc, _ in sorted(text_scores.items(), key=lambda x: (-x[1], x[0]))][:RESULT_DEPTH],
        )
        visual_run.add_topic(
            topic.topic_id,
            [doc for doc, _ in sorted(visual_scores.items(), key=lambda x: (-x[1], x[0]))][:RESULT_DEPTH],
        )
        if text_scores and visual_scores:
            fused = weighted_fusion([text_scores, visual_scores], [1.0, 0.4])
        else:
            fused = text_scores or visual_scores
        fused_run.add_topic(
            topic.topic_id,
            [doc for doc, _ in sorted(fused.items(), key=lambda x: (-x[1], x[0]))][:RESULT_DEPTH],
        )
    return text_run, visual_run, fused_run


def run_experiment(bench_corpus):
    analyse_collection(bench_corpus.collection)
    scorer_rows = []
    for scorer in ("tfidf", "bm25", "lm"):
        run = _run_for_scorer(bench_corpus, scorer)
        evaluation = evaluate_run(run, bench_corpus.qrels)
        scorer_rows.append(
            {
                "ranking_function": scorer,
                "map": evaluation.map,
                "precision@10": evaluation.aggregate["precision@10"],
                "recall@20": evaluation.aggregate["recall@20"],
            }
        )
    modality_rows = []
    for run in _modality_runs(bench_corpus):
        evaluation = evaluate_run(run, bench_corpus.qrels)
        modality_rows.append(
            {
                "modality": run.name,
                "map": evaluation.map,
                "precision@10": evaluation.aggregate["precision@10"],
            }
        )
    return scorer_rows, modality_rows


def test_e10_retrieval_substrate(benchmark, bench_corpus):
    scorer_rows, modality_rows = benchmark.pedantic(
        run_experiment, args=(bench_corpus,), rounds=1, iterations=1
    )
    print_table("E10a: text ranking functions (topic statements as queries)", scorer_rows)
    print_table("E10b: modality comparison", modality_rows)
    by_scorer = {row["ranking_function"]: row["map"] for row in scorer_rows}
    by_modality = {row["modality"]: row["map"] for row in modality_rows}
    # Expected shapes: with full topic statements as queries all three ranking
    # functions are strong and close to each other (the discriminative topic
    # vocabulary makes the task easy for any reasonable scorer); fusion is at
    # least as good as the best single modality; visual-only (one example
    # keyframe) clearly trails text.
    assert all(value > 0.6 for value in by_scorer.values())
    assert max(by_scorer.values()) - min(by_scorer.values()) < 0.15 * max(by_scorer.values())
    assert by_modality["text+visual_fused"] >= 0.95 * max(
        by_modality["text_only"], by_modality["visual_only"]
    )
    assert by_modality["text_only"] > by_modality["visual_only"]
