"""TREC run files and per-topic evaluation against qrels.

A *run* is a named set of per-topic rankings, serialisable in the standard
six-column TREC format (``topic Q0 doc rank score run_name``).  Runs are the
interchange unit between the retrieval/simulation layers and the evaluation
harness, and persisting them makes every experiment's raw output
re-scoreable without re-running the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.collection.qrels import Qrels
from repro.evaluation.metrics import evaluate_ranking, mean_metric

PathLike = Union[str, Path]


@dataclass
class Run:
    """A named retrieval run: one ranking per topic."""

    name: str
    rankings: Dict[str, List[str]] = field(default_factory=dict)

    def add_topic(self, topic_id: str, ranking: Sequence[str]) -> None:
        """Set the ranking for a topic (replacing any previous one)."""
        self.rankings[topic_id] = list(ranking)

    def topics(self) -> List[str]:
        """Topic ids present in the run."""
        return sorted(self.rankings)

    def ranking_for(self, topic_id: str) -> List[str]:
        """The ranking for a topic (empty if absent)."""
        return list(self.rankings.get(topic_id, []))

    def __len__(self) -> int:
        return len(self.rankings)

    # -- persistence ---------------------------------------------------------------

    def to_trec_lines(self) -> List[str]:
        """Render in the standard TREC run format."""
        lines: List[str] = []
        for topic_id in self.topics():
            ranking = self.rankings[topic_id]
            for rank, doc_id in enumerate(ranking, start=1):
                score = len(ranking) - rank + 1
                lines.append(f"{topic_id} Q0 {doc_id} {rank} {score} {self.name}")
        return lines

    def save(self, path: PathLike) -> None:
        """Write the run to a TREC-format file."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.to_trec_lines()) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike, name: str = "") -> "Run":
        """Read a run from a TREC-format file."""
        rankings: Dict[str, List[tuple]] = {}
        run_name = name
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 6:
                raise ValueError(f"malformed run line: {line!r}")
            topic_id, _q0, doc_id, rank, _score, line_name = parts
            run_name = run_name or line_name
            rankings.setdefault(topic_id, []).append((int(rank), doc_id))
        run = cls(name=run_name or "run")
        for topic_id, entries in rankings.items():
            entries.sort(key=lambda item: item[0])
            run.rankings[topic_id] = [doc_id for _rank, doc_id in entries]
        return run


@dataclass
class RunEvaluation:
    """Per-topic and aggregate metrics for one run against one qrels set."""

    run_name: str
    per_topic: Dict[str, Dict[str, float]]
    aggregate: Dict[str, float]

    def metric(self, name: str) -> float:
        """An aggregate metric by name."""
        return self.aggregate[name]

    @property
    def map(self) -> float:
        """Mean average precision."""
        return self.aggregate["average_precision"]


def evaluate_run(
    run: Run, qrels: Qrels, cutoffs: Sequence[int] = (5, 10, 20)
) -> RunEvaluation:
    """Evaluate a run against qrels.

    Topics are taken from the qrels (the judged topic set), so a run that
    skipped a judged topic scores zero on it — the same convention as
    trec_eval with ``-c``.
    """
    per_topic: Dict[str, Dict[str, float]] = {}
    for topic_id in qrels.topics():
        ranking = run.ranking_for(topic_id)
        judgements = qrels.judgements_for(topic_id)
        per_topic[topic_id] = evaluate_ranking(ranking, judgements, cutoffs=cutoffs)
    metric_names = set()
    for metrics in per_topic.values():
        metric_names.update(metrics)
    aggregate = {
        name: mean_metric(metrics.get(name, 0.0) for metrics in per_topic.values())
        for name in sorted(metric_names)
    }
    return RunEvaluation(run_name=run.name, per_topic=per_topic, aggregate=aggregate)


def compare_runs(
    evaluations: Sequence[RunEvaluation], metric: str = "average_precision"
) -> List[Dict[str, float]]:
    """Tabulate several run evaluations on one metric, best first."""
    rows = [
        {"run": evaluation.run_name, metric: evaluation.aggregate.get(metric, 0.0)}
        for evaluation in evaluations
    ]
    rows.sort(key=lambda row: -row[metric])
    return rows
