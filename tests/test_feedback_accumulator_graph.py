"""Tests for the evidence accumulator and the community implicit graph."""

from __future__ import annotations

import pytest

from repro.feedback import (
    EvidenceAccumulator,
    EventKind,
    ImplicitGraph,
    InteractionEvent,
    heuristic_scheme,
    uniform_scheme,
)


def _event(kind: EventKind, shot_id="s1", duration=None):
    return InteractionEvent(kind=kind, timestamp=0.0, shot_id=shot_id, duration=duration)


class TestEvidenceAccumulator:
    def test_static_accumulation_adds_up(self):
        accumulator = EvidenceAccumulator(scheme=uniform_scheme(), decay=1.0)
        accumulator.observe_batch([_event(EventKind.PLAY_CLICK)])
        accumulator.observe_batch([_event(EventKind.PLAY_CLICK)])
        assert accumulator.evidence_for("s1") == pytest.approx(2.0)
        assert accumulator.event_count == 2

    def test_ostensive_decay_discounts_older_batches(self):
        accumulator = EvidenceAccumulator(scheme=uniform_scheme(), decay=0.5)
        accumulator.observe_batch([_event(EventKind.PLAY_CLICK, shot_id="old")])
        accumulator.observe_batch([_event(EventKind.PLAY_CLICK, shot_id="new")])
        assert accumulator.evidence_for("old") == pytest.approx(0.5)
        assert accumulator.evidence_for("new") == pytest.approx(1.0)

    def test_zero_decay_rejected(self):
        with pytest.raises(ValueError):
            EvidenceAccumulator(decay=0.0)

    def test_negative_evidence_from_skip(self):
        accumulator = EvidenceAccumulator(scheme=uniform_scheme())
        accumulator.observe(_event(EventKind.SKIP_RESULT))
        assert accumulator.evidence_for("s1") < 0
        assert "s1" in accumulator.negative_evidence()
        assert "s1" not in accumulator.positive_evidence()

    def test_top_shots_sorted(self):
        accumulator = EvidenceAccumulator(scheme=uniform_scheme())
        accumulator.observe_batch(
            [
                _event(EventKind.PLAY_CLICK, shot_id="a"),
                _event(EventKind.PLAY_CLICK, shot_id="b"),
                _event(EventKind.ADD_TO_PLAYLIST, shot_id="b"),
            ]
        )
        top = accumulator.top_shots(2)
        assert top[0][0] == "b"

    def test_empty_batch_is_noop(self):
        accumulator = EvidenceAccumulator(decay=0.5)
        accumulator.observe_batch([_event(EventKind.PLAY_CLICK)])
        before = accumulator.evidence()
        accumulator.observe_batch([])
        assert accumulator.evidence() == before

    def test_reset(self):
        accumulator = EvidenceAccumulator()
        accumulator.observe(_event(EventKind.PLAY_CLICK))
        accumulator.reset()
        assert len(accumulator) == 0
        assert accumulator.event_count == 0

    def test_play_progress_uses_shot_durations(self):
        accumulator = EvidenceAccumulator(
            scheme=heuristic_scheme(), shot_durations={"s1": 20.0}
        )
        accumulator.observe(_event(EventKind.PLAY_PROGRESS, duration=20.0))
        full = accumulator.evidence_for("s1")
        accumulator2 = EvidenceAccumulator(
            scheme=heuristic_scheme(), shot_durations={"s1": 20.0}
        )
        accumulator2.observe(_event(EventKind.PLAY_PROGRESS, duration=2.0))
        assert full > accumulator2.evidence_for("s1")


class TestImplicitGraph:
    def test_add_session_creates_query_and_shot_edges(self):
        graph = ImplicitGraph()
        graph.add_session(["football goal"], {"s1": 1.0, "s2": 0.5})
        assert graph.session_count == 1
        assert graph.has_query("football goal")
        assert graph.node_count >= 3
        assert graph.edge_count >= 3

    def test_query_normalisation_matches_equivalent_queries(self):
        graph = ImplicitGraph()
        graph.add_session(["Football GOAL"], {"s1": 1.0})
        assert graph.has_query("goal football")

    def test_negative_evidence_creates_no_edges(self):
        graph = ImplicitGraph()
        graph.add_session(["query terms"], {"s1": -1.0})
        assert graph.edge_count == 0
        assert graph.session_count == 1

    def test_recommend_from_query(self):
        graph = ImplicitGraph()
        graph.add_session(["football goal"], {"s1": 2.0, "s2": 1.0})
        graph.add_session(["football goal"], {"s2": 2.0, "s3": 1.5})
        recommendations = graph.recommend(query_text="football goal", limit=5)
        recommended_ids = [shot_id for shot_id, _ in recommendations]
        assert set(recommended_ids) <= {"s1", "s2", "s3"}
        assert len(recommended_ids) >= 2

    def test_recommend_from_session_evidence_excludes_seeds(self):
        graph = ImplicitGraph()
        graph.add_session(["q one"], {"s1": 1.0, "s2": 1.0})
        recommendations = graph.recommend(session_shot_evidence={"s1": 1.0}, limit=5)
        recommended_ids = [shot_id for shot_id, _ in recommendations]
        assert "s1" not in recommended_ids
        assert "s2" in recommended_ids

    def test_recommend_unknown_query_no_session_returns_empty(self):
        graph = ImplicitGraph()
        graph.add_session(["known query"], {"s1": 1.0})
        assert graph.recommend(query_text="completely different") == []

    def test_exclusions_respected(self):
        graph = ImplicitGraph()
        graph.add_session(["q"], {"s1": 1.0, "s2": 1.0, "s3": 1.0})
        recommendations = graph.recommend(query_text="q", exclude_shot_ids=["s2"])
        assert "s2" not in [shot_id for shot_id, _ in recommendations]

    def test_recommendation_scores_map(self):
        graph = ImplicitGraph()
        graph.add_session(["q"], {"s1": 1.0, "s2": 2.0})
        scores = graph.recommendation_scores(query_text="q")
        assert set(scores) <= {"s1", "s2"}
        assert all(value > 0 for value in scores.values())

    def test_parameter_validation(self):
        graph = ImplicitGraph()
        graph.add_session(["q"], {"s1": 1.0})
        with pytest.raises(ValueError):
            graph.recommend(query_text="q", limit=0)
        with pytest.raises(ValueError):
            graph.recommend(query_text="q", damping=1.5)
        with pytest.raises(ValueError):
            graph.add_session(["q"], {"s1": 1.0}, co_occurrence_weight=2.0)

    def test_more_sessions_strengthen_popular_shots(self):
        graph = ImplicitGraph()
        for _ in range(5):
            graph.add_session(["popular query"], {"hub": 1.0, "rare": 0.2})
        scores = graph.recommendation_scores(query_text="popular query")
        assert scores["hub"] > scores["rare"]
