"""Tests for the interface capability models and interaction logging."""

from __future__ import annotations

import pytest

from repro.feedback import EventKind, InteractionEvent
from repro.interfaces import (
    ActionCost,
    DesktopInterface,
    InteractionLogger,
    ItvInterface,
    SessionLog,
)
from repro.interfaces.base import InterfaceModel


class TestActionCost:
    def test_validation(self):
        with pytest.raises(ValueError):
            ActionCost(time_seconds=-1.0, effort=0.0)
        with pytest.raises(ValueError):
            ActionCost(time_seconds=1.0, effort=1.5)


class TestInterfaceModels:
    def test_desktop_supports_rich_actions(self):
        desktop = DesktopInterface()
        assert desktop.supports(EventKind.PLAY_CLICK)
        assert desktop.supports(EventKind.HIGHLIGHT_METADATA)
        assert desktop.supports(EventKind.ADD_TO_PLAYLIST)
        assert desktop.query_entry_supported

    def test_itv_lacks_fine_grained_actions(self):
        itv = ItvInterface()
        assert not itv.supports(EventKind.PLAY_CLICK)
        assert not itv.supports(EventKind.HIGHLIGHT_METADATA)
        assert itv.supports(EventKind.REMOTE_SELECT)
        assert itv.supports(EventKind.REMOTE_RATE_UP)
        assert not itv.query_entry_supported

    def test_itv_query_entry_costly(self):
        desktop = DesktopInterface()
        itv = ItvInterface()
        assert (
            itv.cost_of(EventKind.QUERY_SUBMITTED).effort
            > desktop.cost_of(EventKind.QUERY_SUBMITTED).effort
        )

    def test_itv_explicit_feedback_cheaper_than_desktop(self):
        desktop = DesktopInterface()
        itv = ItvInterface()
        assert (
            itv.cost_of(EventKind.REMOTE_RATE_UP).effort
            < desktop.cost_of(EventKind.MARK_RELEVANT).effort
        )

    def test_desktop_has_more_implicit_actions_than_itv(self):
        assert len(DesktopInterface().implicit_action_kinds()) > len(
            ItvInterface().implicit_action_kinds()
        )

    def test_itv_shows_fewer_results(self):
        assert ItvInterface().results_per_page < DesktopInterface().results_per_page

    def test_unsupported_action_cost_raises(self):
        with pytest.raises(KeyError):
            ItvInterface().cost_of(EventKind.ADD_TO_PLAYLIST)

    def test_capability_summary(self):
        summary = DesktopInterface().capability_summary()
        assert summary["interface"] == "desktop"
        assert "play_click" in summary["implicit_actions"]

    def test_missing_cost_definition_rejected(self):
        with pytest.raises(ValueError):
            InterfaceModel(
                results_per_page=5,
                supported_actions=frozenset({EventKind.PLAY_CLICK}),
                action_costs={},
            )


class TestInteractionLogging:
    def _sample_log(self) -> SessionLog:
        events = [
            InteractionEvent(kind=EventKind.SESSION_STARTED, timestamp=0.0,
                             user_id="u1", session_id="sess1"),
            InteractionEvent(kind=EventKind.QUERY_SUBMITTED, timestamp=2.0,
                             user_id="u1", session_id="sess1", query_text="goal"),
            InteractionEvent(kind=EventKind.PLAY_CLICK, timestamp=5.0, user_id="u1",
                             session_id="sess1", shot_id="s1", rank=1),
            InteractionEvent(kind=EventKind.PLAY_PROGRESS, timestamp=20.0, user_id="u1",
                             session_id="sess1", shot_id="s1", duration=15.0),
        ]
        return SessionLog(
            session_id="sess1", user_id="u1", interface="desktop",
            topic_id="T1", task="search", metadata={"policy": "baseline"},
            events=events,
        )

    def test_round_trip(self, tmp_path):
        log = self._sample_log()
        logger = InteractionLogger()
        path = tmp_path / "sess1.jsonl"
        count = logger.write_session(log, path)
        assert count == 5  # header + 4 events
        restored = logger.read_session(path)
        assert restored.session_id == "sess1"
        assert restored.topic_id == "T1"
        assert restored.metadata == {"policy": "baseline"}
        assert restored.event_count == 4
        assert restored.events[2].kind is EventKind.PLAY_CLICK
        assert restored.events[3].duration == 15.0

    def test_duration_and_stream(self):
        log = self._sample_log()
        assert log.duration_seconds() == pytest.approx(20.0)
        assert log.event_stream().queries() == ["goal"]

    def test_write_and_read_directory(self, tmp_path):
        logger = InteractionLogger()
        logs = [self._sample_log()]
        logs[0].session_id = "a-session"
        paths = logger.write_sessions(logs, tmp_path / "logs")
        assert len(paths) == 1
        restored = logger.read_sessions(tmp_path / "logs")
        assert len(restored) == 1
        assert restored[0].session_id == "a-session"

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "play_click", "timestamp": 0.0}\n')
        with pytest.raises(ValueError):
            InteractionLogger().read_session(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            InteractionLogger().read_session(path)
