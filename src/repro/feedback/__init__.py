"""Interaction events, implicit indicators, weighting schemes and feedback models."""

from repro.feedback.accumulator import EvidenceAccumulator
from repro.feedback.dwell import DwellObservation, DwellTimeClassifier, DwellTimeModel
from repro.feedback.events import (
    EXPLICIT_EVENT_KINDS,
    IMPLICIT_EVENT_KINDS,
    NEGATIVE_EVENT_KINDS,
    EventKind,
    EventStream,
    InteractionEvent,
)
from repro.feedback.explicit import ExplicitFeedbackStore, ExplicitJudgement
from repro.feedback.graph import GraphEdge, ImplicitGraph
from repro.feedback.indicators import (
    INDICATOR_NAMES,
    IndicatorExtractor,
    IndicatorObservation,
    indicator_counts,
)
from repro.feedback.weighting import (
    NEGATIVE_INDICATORS,
    IndicatorWeightLearner,
    WeightingScheme,
    binary_click_scheme,
    default_schemes,
    dwell_only_scheme,
    explicit_only_scheme,
    heuristic_scheme,
    uniform_scheme,
)

__all__ = [
    "EvidenceAccumulator",
    "DwellObservation",
    "DwellTimeClassifier",
    "DwellTimeModel",
    "EXPLICIT_EVENT_KINDS",
    "IMPLICIT_EVENT_KINDS",
    "NEGATIVE_EVENT_KINDS",
    "EventKind",
    "EventStream",
    "InteractionEvent",
    "ExplicitFeedbackStore",
    "ExplicitJudgement",
    "GraphEdge",
    "ImplicitGraph",
    "INDICATOR_NAMES",
    "IndicatorExtractor",
    "IndicatorObservation",
    "indicator_counts",
    "NEGATIVE_INDICATORS",
    "IndicatorWeightLearner",
    "WeightingScheme",
    "binary_click_scheme",
    "default_schemes",
    "dwell_only_scheme",
    "explicit_only_scheme",
    "heuristic_scheme",
    "uniform_scheme",
]
