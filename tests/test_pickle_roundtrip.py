"""Pickle round-trip regression tests for everything the process boundary ships.

The multi-process scatter executor pickles configs, routers, query weights
and shard-state descriptors across a ``multiprocessing.Pipe``.  Anything
that silently stops round-tripping (an added lock field, a lambda default,
an unhashable cache) breaks process workers at runtime with an opaque pipe
error — these tests fail loudly at the type level instead.  Each value is
round-tripped at the highest protocol *and* protocol 2 (what a conservative
spawn-context pipe may negotiate), and equality is checked structurally.
"""

from __future__ import annotations

import pickle

import pytest

from repro.multiproc.state import (
    GlobalStatsDescriptor,
    ShardStateDescriptor,
    export_global_stats,
    export_shard_state,
)
from repro.index.inverted_index import InvertedIndex
from repro.retrieval import Query
from repro.retrieval.engine import EngineConfig
from repro.service import ServiceConfig
from repro.sharding import ShardRouter

PROTOCOLS = (2, pickle.HIGHEST_PROTOCOL)


def _roundtrip(value, protocol):
    return pickle.loads(pickle.dumps(value, protocol=protocol))


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPickleRoundTrip:
    def test_engine_config(self, protocol):
        config = EngineConfig(
            scorer="lm", text_weight=0.7, result_cache_size=64, lm_mu=1500.0
        )
        clone = _roundtrip(config, protocol)
        assert clone == config
        assert clone.scorer == "lm"
        assert clone.lm_mu == 1500.0

    def test_service_config(self, protocol):
        config = ServiceConfig(
            scorer="tfidf", num_shards=4, executor="process", process_workers=2
        )
        clone = _roundtrip(config, protocol)
        assert clone == config
        assert clone.executor == "process"
        assert clone.process_workers == 2

    def test_shard_router(self, protocol):
        router = ShardRouter(num_shards=5)
        clone = _roundtrip(router, protocol)
        assert clone == router
        assert hash(clone) == hash(router)
        # The clone must route identically, not just compare equal.
        for shot_id in ("shot-001", "d3/s4/shot-17", "x"):
            assert clone.shard_of(shot_id) == router.shard_of(shot_id)

    def test_shard_router_inequality(self, protocol):
        assert ShardRouter(num_shards=2) != ShardRouter(num_shards=3)
        assert ShardRouter(num_shards=2) != object()
        clone = _roundtrip(ShardRouter(num_shards=2), protocol)
        assert clone != ShardRouter(num_shards=3)

    def test_query_terms_values(self, protocol):
        # Both admitted QueryTerms shapes: a term sequence and a weight map.
        sequence = ["alpha", "beta", "alpha"]
        weights = {"alpha": 0.5, "beta": 1.25}
        assert _roundtrip(sequence, protocol) == sequence
        clone = _roundtrip(weights, protocol)
        assert clone == weights
        assert list(clone) == list(weights)  # iteration order survives

    def test_query(self, protocol):
        query = Query(
            text="election results",
            term_weights={"election": 2.0},
            example_shot_ids=["d1/s1/shot-3"],
            concept_weights={"crowd": 0.8},
            topic_id="t-7",
            user_id="u-2",
        )
        clone = _roundtrip(query, protocol)
        assert clone == query

    def test_state_descriptors(self, protocol):
        index = InvertedIndex()
        index.add_document("doc-a", "alpha beta alpha")
        index.add_document("doc-b", "beta gamma")

        class _Stats:
            shard_indexes = (index,)
            generation = index.generation
            document_count = index.document_count
            total_terms = index.total_terms

        stats_descriptor = export_global_stats("p/global", _Stats())
        shard_descriptor, shm = export_shard_state(
            "p/shard", 0, index, "p/global", "bm25", ServiceConfig(),
            use_shared_memory=False,
        )
        assert shm is None
        stats_clone = _roundtrip(stats_descriptor, protocol)
        shard_clone = _roundtrip(shard_descriptor, protocol)
        assert isinstance(stats_clone, GlobalStatsDescriptor)
        assert isinstance(shard_clone, ShardStateDescriptor)
        assert stats_clone == stats_descriptor
        assert shard_clone == shard_descriptor
        assert shard_clone.payload == shard_descriptor.payload
        assert list(shard_clone.term_offsets) == list(shard_descriptor.term_offsets)


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestTombstonedIndexPickle:
    def test_inverted_index_with_tombstones(self, protocol):
        index = InvertedIndex()
        index.add_document("doc-a", "alpha beta alpha")
        index.add_document("doc-b", "beta gamma")
        index.add_document("doc-c", "gamma delta")
        index.delete_document("doc-b")
        index.update_document("doc-c", "epsilon beta")
        clone = _roundtrip(index, protocol)
        assert clone.document_count == index.document_count
        assert clone.tombstone_count == index.tombstone_count
        assert clone.total_terms == index.total_terms
        assert clone.dense_document_ids() == index.dense_document_ids()
        assert sorted(clone.document_ids()) == ["doc-a", "doc-c"]
        assert clone.document_vector("doc-c") == {"epsilon": 1, "beta": 1}
        # The clone is fully mutable: compaction reclaims the same holes.
        assert clone.compact() == 2
        assert clone.tombstone_count == 0
        assert clone.document_count == 2

    def test_visual_index_with_tombstones(self, protocol):
        from repro.index.visual import VisualIndex

        index = VisualIndex()
        index.add_shot("shot-a", [1.0, 0.0], {"crowd": 0.5})
        index.add_shot("shot-b", [0.0, 1.0], {"flag": 0.5})
        index.delete_shot("shot-a")
        clone = _roundtrip(index, protocol)
        assert clone.shot_ids() == ["shot-b"]
        assert clone.tombstone_count == 1
        assert clone.compact() == 1
        assert clone.features_of("shot-b") == (0.0, 1.0)
