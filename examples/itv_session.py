#!/usr/bin/env python
"""An interactive-TV session walk-through: limited interaction, cheap ratings.

The paper singles out the television as a challenging interaction
environment: "It will be more complex to enter query terms ... Hence, users
will possibly avoid to enter key words. On the other hand, the selection
keys provide a method to give explicit relevance feedback."

This example runs the *same* simulated user on the desktop interface and on
the iTV interface for the same topic, prints the interaction logs side by
side, and shows how the system compensates on iTV by recommending material
from the little feedback it does get.

Run with:  python examples/itv_session.py
"""

from __future__ import annotations

from collections import Counter

from repro import CollectionConfig, RetrievalService, generate_corpus
from repro.evaluation import make_interface
from repro.profiles import UserProfile
from repro.simulation import SessionSimulator, diligent_user


def run_on(interface_name, corpus, service, topic, profile):
    simulator = SessionSimulator(
        collection=corpus.collection,
        qrels=corpus.qrels,
        interface=make_interface(interface_name),
        seed=77,
    )
    info = service.open_session("viewer", policy="combined", profile=profile,
                                topic_id=topic.topic_id)
    outcome = simulator.run(service.adaptive_session(info.session_id), topic,
                            diligent_user("viewer"))
    return info, outcome


def describe(outcome, interface_name):
    counts = Counter(event.kind.value for event in outcome.session_log.events)
    implicit = sum(1 for event in outcome.session_log.events if event.is_implicit())
    explicit = sum(1 for event in outcome.session_log.events if event.is_explicit())
    print(f"\n--- {interface_name} session ---")
    print(f"queries issued: {len(outcome.queries_issued)}  "
          f"({', '.join(repr(q) for q in outcome.queries_issued)})")
    print(f"events: {outcome.event_count} total, {implicit} implicit, {explicit} explicit")
    print(f"session time: {outcome.total_time_seconds / 60:.1f} simulated minutes")
    print(f"relevant shots found by the viewer: {len(outcome.relevant_shots_found)}")
    print("action mix:")
    for kind, count in counts.most_common():
        print(f"  {kind:<22} {count}")


def main() -> None:
    corpus = generate_corpus(
        seed=31, config=CollectionConfig(days=12, stories_per_day=8, topic_count=10)
    )
    service = RetrievalService.from_corpus(corpus)

    topic = corpus.topics.topics()[2]
    profile = UserProfile.single_interest("viewer", topic.category, 0.9)
    print(f"search task: {topic.description}")
    print(f"viewer profile: interested in {topic.category}")

    desktop_session, desktop_outcome = run_on("desktop", corpus, service, topic, profile)
    itv_session, itv_outcome = run_on("itv", corpus, service, topic, profile)

    describe(desktop_outcome, "desktop")
    describe(itv_outcome, "iTV (remote control)")

    ratio = desktop_outcome.implicit_event_count / max(1, itv_outcome.implicit_event_count)
    print(f"\nthe desktop session produced {ratio:.1f}x more implicit feedback events "
          f"than the iTV session, while the iTV session relied on "
          f"{itv_outcome.explicit_event_count} cheap remote-control ratings.")

    # On iTV, querying is painful — so instead of asking the viewer to type,
    # the system recommends further material from the evidence it has.
    recommendations = service.recommend("viewer", session_id=itv_session.session_id,
                                        limit=5)
    print("\nbecause querying on iTV is costly, the system recommends follow-up "
          "shots from the viewer's implicit feedback instead:")
    for hit in recommendations:
        marker = "*" if corpus.qrels.is_relevant(topic.topic_id, hit.shot_id) else " "
        print(f"  {marker} {hit.shot_id}  [{hit.category}] {hit.headline}")
    print("(* = actually relevant to the viewer's task)")


if __name__ == "__main__":
    main()
