"""Shard state export for process workers: descriptors, shm blocks, views.

The process executor cannot ship live :class:`~repro.index.inverted_index.
InvertedIndex` objects to workers — they are mutable, lock-coupled and big.
Instead, :func:`export_shard_state` freezes one shard's dense read state
(document lengths, postings columns, id table, term offsets) into a
:class:`ShardStateDescriptor`: a small picklable record whose heavy integer
columns live in a ``multiprocessing.shared_memory`` block that workers
attach **zero-copy** (``memoryview.cast('i')`` slices over the mapped
buffer).  Where shared memory is unavailable the same columns travel inline
as ``bytes`` in the descriptor — a copy per worker, but semantically
identical.

Global collection statistics travel separately
(:func:`export_global_stats`): they are small, but move on **every** write
to any shard, while a shard's payload moves only when that shard itself is
written.  The split is what makes generation-checked refresh cheap — after
a write, workers re-attach only the shards whose generation moved, plus the
lightweight global record.

Worker processes keep everything they have attached in the module-level
:data:`STATE` registry, keyed by the executor-qualified export key.
:class:`AttachedShardState` bundles an :class:`AttachedShardIndex` (which
quacks like the :class:`~repro.sharding.global_stats.GlobalStatsView` a
per-shard scorer is built over: shard-local postings, **global**
statistics) with a registry-resolved scorer, so scorer term caches persist
across queries within a generation exactly as they do on the thread path.
:func:`score_shard_task` is the scatter task: it scores with the worker's
persistent scorer and returns the partial score map *packed* as two byte
strings (dense indexes + float64 scores, in the worker dict's iteration
order), so the parent rebuilds each ``{doc_id: score}`` partial with its
own id table instead of unpickling string-keyed dicts — preserving both the
values and the dict order the thread path produces.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from math import sqrt
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised indirectly; absence is the fallback path
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

_INT_SIZE = array("i").itemsize
_EMPTY_COLUMN = memoryview(b"").cast("i")


def shared_memory_available() -> bool:
    """True if ``multiprocessing.shared_memory`` can be used here."""
    return _shared_memory is not None


def _attach_unregistered(name: str):
    """Attach to an existing shared-memory block without tracker side effects.

    ``SharedMemory(name=...)`` registers the *attachment* with the resource
    tracker on Python < 3.13 (bpo-38119), which double-books blocks whose
    lifecycle the exporting process owns.  Suppresses registration for the
    duration of the attach; callers must be effectively single-threaded
    (worker processes attach from their request loop, which is).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - no tracker, nothing to suppress
        return _shared_memory.SharedMemory(name=name)
    original_register = resource_tracker.register

    def _skip_shared_memory(rname, rtype):
        if rtype != "shared_memory":  # pragma: no cover - defensive
            original_register(rname, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class StaleShardStateError(RuntimeError):
    """A worker was asked to score a shard state it does not hold (or holds
    at the wrong generation).  The executor treats this as a bug — publish
    always precedes map on the same FIFO pipe — so it propagates."""


@dataclass(frozen=True)
class GlobalStatsDescriptor:
    """Picklable snapshot of :class:`~repro.sharding.global_stats.GlobalTextStats`.

    Carries the full global document-frequency / collection-frequency maps:
    per-term lookups in workers must see collection-wide values for idf and
    smoothing to stay bit-identical to the monolithic engine.
    """

    key: str
    generation: int
    document_count: int
    total_terms: int
    document_frequencies: Dict[str, int]
    collection_frequencies: Dict[str, int]

    @property
    def average_document_length(self) -> float:
        """Global mean document length (0.0 for an empty collection)."""
        if not self.document_count:
            return 0.0
        return self.total_terms / self.document_count

    def document_frequency(self, term: str) -> int:
        """Global document frequency of a term."""
        return self.document_frequencies.get(term, 0)

    def collection_frequency(self, term: str) -> int:
        """Global collection frequency of a term."""
        return self.collection_frequencies.get(term, 0)


@dataclass(frozen=True)
class ShardStateDescriptor:
    """Picklable, shm-mappable freeze of one shard's dense read state.

    The integer payload is laid out as three consecutive ``int32`` runs —
    ``lengths[document_count] | posting_docs[posting_count] |
    posting_freqs[posting_count]`` — either in the shared-memory block named
    ``shm_name`` or inline in ``payload``.  ``term_offsets`` maps each term
    to its ``(offset, count)`` slice of the postings runs.  ``generation``
    is the **shard's own** clock (the payload changes only when the shard
    is written); global statistics arrive via the ``global_key`` record.
    """

    key: str
    shard_id: int
    generation: int
    global_key: str
    scorer_name: str
    scorer_config: object
    document_ids: Tuple[str, ...]
    term_offsets: Dict[str, Tuple[int, int]]
    posting_count: int
    shm_name: Optional[str] = None
    payload: Optional[bytes] = field(default=None, repr=False)

    @property
    def document_count(self) -> int:
        return len(self.document_ids)

    @property
    def payload_size(self) -> int:
        """Payload size in bytes (lengths run + two postings runs)."""
        return (self.document_count + 2 * self.posting_count) * _INT_SIZE


# -- parent-side export ----------------------------------------------------------


def export_global_stats(key: str, stats) -> GlobalStatsDescriptor:
    """Freeze a :class:`GlobalTextStats` into a picklable descriptor.

    Sums per-term document/collection frequencies across all shards in one
    pass (cheaper and equivalent to priming the stats object's per-term
    caches term by term).
    """
    document_frequencies: Dict[str, int] = {}
    collection_frequencies: Dict[str, int] = {}
    for shard in stats.shard_indexes:
        for term in shard.terms():
            document_frequencies[term] = document_frequencies.get(
                term, 0
            ) + shard.document_frequency(term)
            collection_frequencies[term] = collection_frequencies.get(
                term, 0
            ) + shard.collection_frequency(term)
    return GlobalStatsDescriptor(
        key=key,
        generation=stats.generation,
        document_count=stats.document_count,
        total_terms=stats.total_terms,
        document_frequencies=document_frequencies,
        collection_frequencies=collection_frequencies,
    )


def export_shard_state(
    key: str,
    shard_id: int,
    shard_index,
    global_key: str,
    scorer_name: str,
    scorer_config,
    use_shared_memory: bool = True,
):
    """Freeze one shard into ``(descriptor, shm_block_or_None)``.

    The caller owns the returned shared-memory block's lifecycle: it must
    keep it referenced while any worker may attach and ``close()`` +
    ``unlink()`` it when the export is superseded or the executor shuts
    down.  With ``use_shared_memory=False`` (or where shm is unavailable)
    the payload is embedded in the descriptor instead.
    """
    document_ids = tuple(shard_index.dense_document_ids())
    lengths = shard_index.document_lengths_array
    term_offsets: Dict[str, Tuple[int, int]] = {}
    posting_docs = array("i")
    posting_freqs = array("i")
    offset = 0
    for term in shard_index.terms():
        docs, freqs = shard_index.postings_arrays(term)
        count = len(docs)
        term_offsets[term] = (offset, count)
        posting_docs.extend(docs)
        posting_freqs.extend(freqs)
        offset += count
    payload = lengths.tobytes() + posting_docs.tobytes() + posting_freqs.tobytes()

    shm = None
    shm_name = None
    inline_payload: Optional[bytes] = payload
    if use_shared_memory and shared_memory_available():
        shm = _shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        shm_name = shm.name
        inline_payload = None

    descriptor = ShardStateDescriptor(
        key=key,
        shard_id=shard_id,
        generation=shard_index.generation,
        global_key=global_key,
        scorer_name=scorer_name,
        scorer_config=scorer_config,
        document_ids=document_ids,
        term_offsets=term_offsets,
        posting_count=len(posting_docs),
        shm_name=shm_name,
        payload=inline_payload,
    )
    return descriptor, shm


def release_shared_block(shm) -> None:
    """Close and unlink an exported block, tolerating repeats and races.

    Unlinking only removes the *name*: existing mappings (the parent's
    attached view, workers still on an older generation) stay valid until
    they are unmapped, which is exactly the hand-over-hand lifecycle the
    executor needs.
    """
    if shm is None:
        return
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


# -- worker-side attach ----------------------------------------------------------

#: Per-process registry of attached exports, keyed by export key.  In worker
#: processes it is populated by ``load`` messages; the parent process loads
#: the same descriptors so inline execution (single-item maps, post-close
#: fallback) runs against identical state.
STATE: Dict[str, object] = {}


@dataclass
class LoadFailure:
    """Sentinel stored when attaching a descriptor failed; scoring against
    it re-raises the original error so the failure surfaces at the caller."""

    key: str
    error: BaseException


class AttachedShardIndex:
    """A worker-side :class:`GlobalStatsView` twin over exported columns.

    Implements the index read API the text scorers use.  Postings columns,
    document lengths and the dense id table are zero-copy ``memoryview``
    slices of the attached block (or of the inline payload); statistics
    (``document_count``, ``document_frequency``, ``average_document_length``,
    ``generation``, ...) resolve **dynamically** through :data:`STATE` to the
    current global record, so republishing the lightweight global descriptor
    after a write on *any* shard invalidates every generation-keyed scorer
    cache in every worker without re-shipping unchanged shard payloads.
    """

    def __init__(self, descriptor: ShardStateDescriptor, buffer=None) -> None:
        self._descriptor = descriptor
        self._shm = None
        if buffer is not None:
            # The creating process views the export's own mapping directly —
            # no second attachment, no resource-tracker interaction.
            pass
        elif descriptor.shm_name is not None:
            if not shared_memory_available():  # pragma: no cover - defensive
                raise RuntimeError(
                    "descriptor references shared memory but the platform "
                    "has no multiprocessing.shared_memory support"
                )
            # Python < 3.13 registers *attachments* with the resource
            # tracker (bpo-38119).  The parent owns every block's lifecycle
            # (it unlinks on supersede/close), so an attachment-side
            # registration is wrong either way it lands: a worker-private
            # tracker would warn about "leaks" the parent already cleaned
            # up, and a tracker shared with the parent would see the name
            # unregistered twice.  Workers are single-threaded when they
            # attach, so briefly suppressing registration is race-free.
            self._shm = _attach_unregistered(descriptor.shm_name)
            buffer = self._shm.buf
        else:
            buffer = memoryview(descriptor.payload or b"")
        columns = memoryview(buffer)[: descriptor.payload_size].cast("i")
        documents = descriptor.document_count
        postings = descriptor.posting_count
        self._lengths = columns[:documents]
        self._posting_docs = columns[documents : documents + postings]
        self._posting_freqs = columns[documents + postings :]
        self._doc_ids: List[str] = list(descriptor.document_ids)
        self._doc_index: Dict[str, int] = {
            doc_id: index for index, doc_id in enumerate(self._doc_ids)
        }
        self._term_offsets = descriptor.term_offsets
        self._bm25_norms_cache: Dict[Tuple[float, float], Tuple[int, array]] = {}
        self._tfidf_norms_cache: Optional[array] = None

    # -- global statistics (dynamic, via the registry) ----------------------------

    @property
    def _global(self) -> GlobalStatsDescriptor:
        record = STATE.get(self._descriptor.global_key)
        if record is None:
            raise StaleShardStateError(
                f"global statistics {self._descriptor.global_key!r} not loaded"
            )
        if isinstance(record, LoadFailure):
            raise record.error
        return record

    @property
    def generation(self) -> int:
        """Combined clock of all shards — moves on a write to *any* shard,
        which is what invalidates scorer idf/column caches in workers."""
        return self._global.generation

    @property
    def document_count(self) -> int:
        return self._global.document_count

    @property
    def total_terms(self) -> int:
        return self._global.total_terms

    @property
    def average_document_length(self) -> float:
        return self._global.average_document_length

    def document_frequency(self, term: str) -> int:
        return self._global.document_frequency(term)

    def collection_frequency(self, term: str) -> int:
        return self._global.collection_frequency(term)

    # -- shard-local payload -----------------------------------------------------

    @property
    def shard_generation(self) -> int:
        """The exported shard's own clock (payload freshness)."""
        return self._descriptor.generation

    def postings_arrays(self, term: str):
        """Zero-copy postings columns ``(doc_indexes, term_frequencies)``."""
        entry = self._term_offsets.get(term)
        if entry is None:
            return _EMPTY_COLUMN, _EMPTY_COLUMN
        offset, count = entry
        return (
            self._posting_docs[offset : offset + count],
            self._posting_freqs[offset : offset + count],
        )

    def dense_document_ids(self) -> List[str]:
        return self._doc_ids

    @property
    def document_lengths_array(self):
        return self._lengths

    def doc_index_of(self, document_id: str) -> int:
        return self._doc_index[document_id]

    def doc_index_get(self, document_id: str, default: Optional[int] = None):
        return self._doc_index.get(document_id, default)

    def doc_id_at(self, doc_index: int) -> str:
        return self._doc_ids[doc_index]

    def has_document(self, document_id: str) -> bool:
        return document_id in self._doc_index

    def document_length(self, document_id: str) -> int:
        return self._lengths[self._doc_index[document_id]]

    def terms(self) -> List[str]:
        return list(self._term_offsets)

    def __contains__(self, term: str) -> bool:
        return term in self._term_offsets

    # -- derived normalisation tables --------------------------------------------

    def tfidf_norms(self) -> array:
        """``sqrt(max(1, length))`` per document — the monolithic expression
        over shard-local lengths, so values are bit-identical."""
        cached = self._tfidf_norms_cache
        if cached is None:
            cached = array(
                "d", (sqrt(max(1.0, float(length))) for length in self._lengths)
            )
            self._tfidf_norms_cache = cached
        return cached

    def bm25_norms(self, k1: float, b: float) -> array:
        """BM25 denominators under the **global** average document length.

        Same expression (and ``max(1.0, ...)`` floor) as
        :meth:`GlobalStatsView.bm25_norms`, keyed on the combined generation
        so a write anywhere invalidates the table.
        """
        key = (k1, b)
        generation = self.generation
        cached = self._bm25_norms_cache.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        average_length = max(1.0, self.average_document_length)
        norms = array(
            "d",
            (
                k1 * (1.0 - b + b * length / average_length)
                for length in self._lengths
            ),
        )
        self._bm25_norms_cache[key] = (generation, norms)
        return norms

    def close(self) -> None:
        """Release the column views and (if any) the shm mapping."""
        self._lengths = self._posting_docs = self._posting_freqs = None
        self._bm25_norms_cache.clear()
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - exported views still alive
                pass
            self._shm = None


class AttachedShardState:
    """One worker's live handle on a shard: attached view + persistent scorer.

    The scorer is resolved through the service registry by name, so custom
    registered scorers work in workers too (under the default ``fork`` start
    method any parent-process registration is inherited; under ``spawn``
    only import-time registrations are visible).  It persists across queries
    so its generation-keyed term caches behave exactly as on the thread
    path.
    """

    def __init__(self, descriptor: ShardStateDescriptor, buffer=None) -> None:
        self.descriptor = descriptor
        self.index = AttachedShardIndex(descriptor, buffer=buffer)
        self.doc_index = self.index._doc_index
        from repro.service.registry import create_scorer

        self.scorer = create_scorer(
            descriptor.scorer_name, self.index, descriptor.scorer_config
        )

    @property
    def generation(self) -> int:
        """Combined generation this state currently resolves to."""
        return self.index.generation

    def close(self) -> None:
        self.scorer = None
        self.index.close()


def load_state(descriptor, buffer=None) -> None:
    """Attach a descriptor into this process's :data:`STATE` registry.

    Replaces (and releases) any previous attachment under the same key —
    the generation-checked refresh path.  Safe to call with either
    descriptor type.  ``buffer`` lets the creating process hand in its own
    mapping of the payload instead of re-attaching by name.
    """
    if isinstance(descriptor, GlobalStatsDescriptor):
        record: object = descriptor
    else:
        record = AttachedShardState(descriptor, buffer=buffer)
    previous = STATE.get(descriptor.key)
    STATE[descriptor.key] = record
    if previous is not None and hasattr(previous, "close"):
        previous.close()


def record_load_failure(key: str, error: BaseException) -> None:
    """Remember that attaching ``key`` failed, so scoring reports it."""
    previous = STATE.get(key)
    STATE[key] = LoadFailure(key, error)
    if previous is not None and hasattr(previous, "close"):
        previous.close()


def drop_state(key: str) -> None:
    """Detach and forget one registry entry (no-op if absent)."""
    record = STATE.pop(key, None)
    if record is not None and hasattr(record, "close"):
        record.close()


# -- the scatter task ------------------------------------------------------------


def score_shard_task(item) -> Tuple[bytes, bytes]:
    """Score one shard in whatever process runs this.

    ``item`` is ``(key, expected_generation, query_weights)``.  The result
    is the partial score map packed as ``(int32 dense_indexes, float64
    scores)`` byte strings in the score dict's iteration order: the parent
    rebuilds ``{doc_id: score}`` from its own id table, so both the float
    values and the dict order match the thread path bit for bit.
    """
    key, expected_generation, query_weights = item
    record = STATE.get(key)
    if record is None:
        raise StaleShardStateError(f"shard state {key!r} not loaded in this process")
    if isinstance(record, LoadFailure):
        raise record.error
    generation = record.generation
    if generation != expected_generation:
        raise StaleShardStateError(
            f"shard state {key!r} is at generation {generation}, "
            f"query expected {expected_generation}"
        )
    scores = record.scorer.score(query_weights)
    doc_index = record.doc_index
    packed_indexes = array("i", map(doc_index.__getitem__, scores))
    packed_scores = array("d", scores.values())
    return packed_indexes.tobytes(), packed_scores.tobytes()


def unpack_shard_scores(document_ids, packed: Tuple[bytes, bytes]) -> Dict[str, float]:
    """Rebuild one shard's ``{doc_id: score}`` partial from a packed result.

    ``document_ids`` is the parent's dense id table for the same shard; the
    packed indexes were produced against an identical table in the worker,
    so insertion order — and therefore merged-dict order downstream — is
    preserved.
    """
    indexes = memoryview(packed[0]).cast("i")
    values = memoryview(packed[1]).cast("d")
    return {
        document_ids[index]: value for index, value in zip(indexes, values)
    }
