"""Simulated user populations.

The paper notes that "a large quantity of different users interacting with
the system is necessary to draw generalisable conclusions".  The population
generator produces that quantity: a reproducible set of simulated users with
varied behavioural parameters and, optionally, static profiles whose
declared interests are aligned (or deliberately misaligned) with the search
topics they will be given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.topics import Topic, TopicSet
from repro.profiles.profile import Demographics, UserProfile
from repro.simulation.user import SimulatedUser, standard_personas
from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_positive


@dataclass
class PopulationMember:
    """One member of a simulated user population."""

    user: SimulatedUser
    profile: UserProfile


def _perturb(value: float, rng: RandomSource, spread: float, low: float, high: float) -> float:
    return min(high, max(low, value + rng.gauss(0.0, spread)))


def generate_population(
    size: int,
    seed: int = 77,
    personas: Sequence[SimulatedUser] = (),
    topics: Optional[TopicSet] = None,
    profile_alignment: float = 0.8,
) -> List[PopulationMember]:
    """Generate ``size`` simulated users with individual parameter jitter.

    Each user is based on one of the personas (cycled), with behavioural
    parameters perturbed so no two users are identical.  When ``topics`` is
    given, each user also receives a static profile interested in a couple
    of categories; with probability ``profile_alignment`` the user's primary
    interest matches the category of the topics they will later search
    (aligned profile), otherwise it is a different category (misaligned),
    which is what the profile-combination experiment varies.
    """
    ensure_positive(size, "size")
    base_personas = list(personas) if personas else list(standard_personas())
    rng = RandomSource(seed).spawn("population")
    members: List[PopulationMember] = []
    categories: List[str] = topics.categories() if topics is not None else []
    for index in range(size):
        persona = base_personas[index % len(base_personas)]
        user_rng = rng.spawn("user", index)
        user = persona.with_overrides(
            user_id=f"user{index + 1:03d}",
            surrogate_error_rate=_perturb(
                persona.surrogate_error_rate, user_rng, 0.05, 0.0, 0.6
            ),
            post_play_error_rate=_perturb(
                persona.post_play_error_rate, user_rng, 0.02, 0.0, 0.4
            ),
            play_propensity=_perturb(persona.play_propensity, user_rng, 0.08, 0.2, 1.0),
            metadata_propensity=_perturb(
                persona.metadata_propensity, user_rng, 0.08, 0.0, 1.0
            ),
            explicit_propensity=_perturb(
                persona.explicit_propensity, user_rng, 0.08, 0.0, 1.0
            ),
        )
        profile = UserProfile(user_id=user.user_id, demographics=Demographics())
        if categories:
            primary_rng = user_rng.spawn("profile")
            aligned = primary_rng.boolean(profile_alignment)
            primary = primary_rng.choice(categories)
            profile.set_category_interest(primary, primary_rng.uniform(0.7, 1.0))
            secondary = primary_rng.choice(categories)
            if secondary != primary:
                profile.set_category_interest(secondary, primary_rng.uniform(0.2, 0.5))
            profile.demographics.expertise = (
                "expert" if primary_rng.boolean(0.25) else "novice"
            )
            # Record alignment for experiment stratification.
            profile_alignment_flag = aligned
            members.append(PopulationMember(user=user, profile=profile))
            members[-1].profile.term_interests["__aligned__"] = (
                1.0 if profile_alignment_flag else 0.0
            )
            continue
        members.append(PopulationMember(user=user, profile=profile))
    return members


def assign_topics(
    members: Sequence[PopulationMember],
    topics: TopicSet,
    topics_per_user: int = 2,
    seed: int = 78,
    prefer_profile_category: bool = True,
) -> Dict[str, List[Topic]]:
    """Assign each user the topics they will search.

    With ``prefer_profile_category`` the assignment favours topics whose
    category matches the user's primary declared interest (the aligned
    condition of the profile experiments); otherwise topics are assigned
    uniformly at random.
    """
    ensure_positive(topics_per_user, "topics_per_user")
    rng = RandomSource(seed).spawn("topic-assignment")
    all_topics = topics.topics()
    assignment: Dict[str, List[Topic]] = {}
    for member in members:
        user_rng = rng.spawn(member.user.user_id)
        preferred = member.profile.top_categories(1)
        chosen: List[Topic] = []
        if prefer_profile_category and preferred:
            matching = topics.by_category(preferred[0])
            if matching:
                chosen.extend(
                    user_rng.sample(matching, min(len(matching), topics_per_user))
                )
        while len(chosen) < topics_per_user:
            candidate = user_rng.choice(all_topics)
            if candidate not in chosen:
                chosen.append(candidate)
        assignment[member.user.user_id] = chosen[:topics_per_user]
    return assignment
