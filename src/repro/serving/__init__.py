"""Async serving edge: deadlines, admission control, per-tenant quotas.

The deployment boundary over :class:`~repro.service.RetrievalService`:
:class:`ServingFrontend` admits requests through a bounded queue with
typed backpressure, enforces per-tenant token-bucket rate limits and
fair-share isolation, bounds every request with a cooperative-cancellation
deadline, and accounts it all in a structured metrics registry
(p50/p95/p99 latency sketches, queue wait, shard fan-out, cache hits).

Completed requests are bit-identical to the direct facade path — the
edge schedules and bounds work, it never changes what a request computes.
"""

from repro.serving.config import ServingConfig, TenantQuota
from repro.serving.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    DrainingError,
    QueueFullError,
    QuotaExceededError,
)
from repro.serving.frontend import ServingFrontend
from repro.serving.metrics import LatencyTrack, MetricsRegistry, P2Quantile
from repro.serving.quotas import TenantQuotaManager, TokenBucket

__all__ = [
    "ServingConfig",
    "TenantQuota",
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "DrainingError",
    "QueueFullError",
    "QuotaExceededError",
    "ServingFrontend",
    "LatencyTrack",
    "MetricsRegistry",
    "P2Quantile",
    "TenantQuotaManager",
    "TokenBucket",
]
