"""Tests for collection/corpus persistence."""

from __future__ import annotations

import pytest

from repro.collection import (
    load_collection,
    load_corpus,
    load_topics,
    save_collection,
    save_corpus,
    save_topics,
)
from repro.index import InvertedIndex
from repro.retrieval import VideoRetrievalEngine


class TestCollectionSnapshot:
    def test_round_trip_structure(self, tmp_path, small_corpus):
        path = tmp_path / "collection.json"
        save_collection(small_corpus.collection, path)
        loaded = load_collection(path)
        assert loaded.video_count == small_corpus.collection.video_count
        assert loaded.story_count == small_corpus.collection.story_count
        assert loaded.shot_count == small_corpus.collection.shot_count
        assert loaded.shot_ids() == small_corpus.collection.shot_ids()

    def test_round_trip_preserves_shot_content(self, tmp_path, small_corpus):
        path = tmp_path / "collection.json"
        save_collection(small_corpus.collection, path)
        loaded = load_collection(path)
        original = small_corpus.collection.shots()[5]
        restored = loaded.shot(original.shot_id)
        assert restored.transcript == original.transcript
        assert restored.category == original.category
        assert restored.concepts == original.concepts
        assert restored.topic_relevance == original.topic_relevance
        assert restored.keyframe.latent_signal == pytest.approx(
            original.keyframe.latent_signal
        )
        assert restored.duration == pytest.approx(original.duration)

    def test_round_trip_preserves_retrieval_behaviour(self, tmp_path, small_corpus):
        path = tmp_path / "collection.json"
        save_collection(small_corpus.collection, path)
        loaded = load_collection(path)
        topic = small_corpus.topics.topics()[0]
        query = " ".join(topic.query_terms)
        original_ranking = VideoRetrievalEngine(small_corpus.collection).search_text(
            query
        ).shot_ids()
        restored_ranking = VideoRetrievalEngine(loaded).search_text(query).shot_ids()
        assert original_ranking == restored_ranking

    def test_wrong_kind_rejected(self, tmp_path, small_corpus):
        path = tmp_path / "topics.json"
        save_topics(small_corpus.topics, path)
        with pytest.raises(ValueError):
            load_collection(path)


class TestTopicSnapshot:
    def test_round_trip(self, tmp_path, small_corpus):
        path = tmp_path / "topics.json"
        save_topics(small_corpus.topics, path)
        loaded = load_topics(path)
        assert loaded.topic_ids() == small_corpus.topics.topic_ids()
        first = small_corpus.topics.topics()[0]
        assert loaded.topic(first.topic_id).query_terms == first.query_terms
        assert loaded.topic(first.topic_id).category == first.category


class TestCorpusSnapshot:
    def test_round_trip(self, tmp_path, small_corpus):
        directory = save_corpus(small_corpus, tmp_path / "corpus")
        stored = load_corpus(directory)
        assert stored.seed == small_corpus.seed
        assert stored.collection.shot_count == small_corpus.collection.shot_count
        assert stored.topics.topic_ids() == small_corpus.topics.topic_ids()
        assert list(stored.qrels.items()) == list(small_corpus.qrels.items())

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path / "empty")

    def test_index_built_from_stored_corpus_matches(self, tmp_path, small_corpus):
        directory = save_corpus(small_corpus, tmp_path / "corpus")
        stored = load_corpus(directory)
        original_index = InvertedIndex.from_collection(small_corpus.collection)
        restored_index = InvertedIndex.from_collection(stored.collection)
        assert restored_index.document_count == original_index.document_count
        assert restored_index.total_terms == original_index.total_terms


class TestTombstonedIndexSnapshot:
    """Satellite: index snapshots round-trip mutable-corpus state.

    A snapshot stores live items in dense slot order — loading it is
    equivalent to a compacted rebuild, so digests and rankings agree with
    the live (hole-y) source.
    """

    def test_inverted_round_trip_skips_tombstones(self, tmp_path):
        from repro.index.storage import load_inverted_index, save_inverted_index

        index = InvertedIndex()
        index.add_document("doc-a", "alpha beta alpha")
        index.add_document("doc-b", "beta gamma")
        index.add_document("doc-c", "gamma delta")
        index.delete_document("doc-b")
        index.update_document("doc-a", "epsilon beta")
        path = tmp_path / "inverted.json"
        save_inverted_index(index, path)
        loaded = load_inverted_index(path)
        compacted = index.compacted_copy()
        assert loaded.dense_document_ids() == compacted.dense_document_ids()
        assert loaded.tombstone_count == 0
        assert loaded.document_count == index.document_count
        assert loaded.total_terms == index.total_terms
        assert loaded.average_document_length == index.average_document_length
        for term in index.terms():
            assert loaded.collection_frequency(term) == index.collection_frequency(term)
            assert loaded.document_frequency(term) == index.document_frequency(term)

    def test_visual_round_trip_skips_tombstones(self, tmp_path):
        from repro.index.storage import load_visual_index, save_visual_index
        from repro.index.visual import VisualIndex

        index = VisualIndex()
        index.add_shot("shot-a", [1.0, 0.0], {"crowd": 0.4})
        index.add_shot("shot-b", [0.0, 1.0], {"flag": 0.6})
        index.add_shot("shot-c", [0.5, 0.5], {})
        index.delete_shot("shot-b")
        path = tmp_path / "visual.json"
        save_visual_index(index, path)
        loaded = load_visual_index(path)
        assert loaded.shot_ids() == ["shot-a", "shot-c"]
        assert loaded.tombstone_count == 0
        assert loaded.features_of("shot-c") == (0.5, 0.5)
        assert loaded.concept_scores_of("shot-a") == {"crowd": 0.4}

    def test_round_trip_digest_matches_compacted_engine(
        self, tmp_path, small_corpus
    ):
        # The recovery-facing contract: rebuilding an engine from saved
        # snapshots of a mutated live engine digests identically to the
        # live engine (the digest skips holes) and to its compacted self.
        from repro.durability import engine_state_digest
        from repro.index.storage import (
            load_inverted_index,
            load_visual_index,
            save_inverted_index,
            save_visual_index,
        )

        engine = VideoRetrievalEngine(small_corpus.collection)
        engine.index_document("mut-a", "ceasefire summit")
        engine.index_document("mut-b", "verdict launch")
        engine.delete_document("mut-a")
        engine.update_document("mut-b", "blackout harvest")
        live = engine_state_digest(engine)
        save_inverted_index(engine.inverted_index, tmp_path / "inv.json")
        save_visual_index(engine.visual_index, tmp_path / "vis.json")
        restored = VideoRetrievalEngine(
            small_corpus.collection,
            inverted_index=load_inverted_index(tmp_path / "inv.json"),
            visual_index=load_visual_index(tmp_path / "vis.json"),
        )
        assert engine_state_digest(restored) == live
        engine.compact()
        assert engine_state_digest(engine) == live
